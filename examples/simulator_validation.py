#!/usr/bin/env python3
"""Look inside the substrate: exact engine vs fast cost models.

The library simulates MPI collectives on two tiers (DESIGN.md §5.1):

* the **exact engine** executes per-rank programs event by event and
  moves real verification payloads — here we broadcast actual segment
  tokens and an allreduce set union, and check the semantics,
* the **fast evaluators** compute the same dependency recurrences
  vectorised — here we compare their times against the engine across
  algorithms and show where the (documented) approximation sits.
"""

import numpy as np

from repro.collectives.registry import make_algorithm
from repro.machine import Topology, tiny_testbed
from repro.machine.model import NoiseModel
from repro.utils.units import format_bytes, format_time

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))


def payload_demo() -> None:
    print("== payload-level verification on the exact engine ==")
    topo = Topology(4, 2)
    algo = make_algorithm("bcast", "binomial", segsize=1024)
    result = algo.run_exact(QUIET, topo, 4096)  # raises if data is wrong
    print(f"binomial bcast of 4KiB over {topo.size} ranks: "
          f"{result.num_messages} messages, "
          f"{format_bytes(result.total_bytes)} moved, "
          f"makespan {format_time(result.makespan)}")
    print(f"rank 5 ended up holding segments: {result.outputs[5]}")

    algo = make_algorithm("allreduce", "rabenseifner")
    result = algo.run_exact(QUIET, topo, 4096)
    print(f"rabenseifner allreduce: rank 0 reduced blocks over ranks "
          f"{sorted(next(iter(result.outputs[0].values())))}")


def tier_comparison() -> None:
    print("\n== two-tier agreement ==")
    cases = [
        ("bcast", "binomial", {"segsize": 4096}),
        ("bcast", "pipeline", {"segsize": 4096}),
        ("bcast", "chain", {"segsize": 4096, "chains": 2}),
        ("allreduce", "ring", {}),
        ("allreduce", "recursive_doubling", {}),
        ("alltoall", "bruck", {}),
    ]
    print(f"{'algorithm':32} {'shape':>6} {'fast':>10} {'engine':>10} {'ratio':>6}")
    for shape in ((8, 1), (4, 4)):
        topo = Topology(*shape)
        for kind, name, kw in cases:
            algo = make_algorithm(kind, name, **kw)
            fast = algo.base_time(QUIET, topo, 65536)
            exact = algo.run_exact(QUIET, topo, 65536, verify=False).makespan
            print(f"{kind + '/' + name:32} {shape[0]}x{shape[1]:<4} "
                  f"{format_time(fast):>10} {format_time(exact):>10} "
                  f"{exact / fast:6.2f}")
    print("(ratio 1.00 = exact agreement; contended shapes are a "
          "documented approximation)")


def noise_demo() -> None:
    print("\n== measurement noise / repeatability ==")
    topo = Topology(4, 2)
    algo = make_algorithm("bcast", "binomial", segsize=None)
    times = [
        algo.run_exact(tiny_testbed, topo, 65536, rng=seed, verify=False).makespan
        for seed in range(10)
    ]
    times = np.asarray(times)
    print(f"10 noisy engine runs: median {format_time(float(np.median(times)))}, "
          f"spread {100 * times.std() / times.mean():.1f}% "
          f"(machine noise sigma = {tiny_testbed.noise.sigma:.0%})")


if __name__ == "__main__":
    payload_demo()
    tier_comparison()
    noise_demo()
