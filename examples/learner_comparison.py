#!/usr/bin/env python3
"""Model-error view of the three learners (plus rejected baselines).

The paper evaluates selection quality (speed-up over the default), but
while building models one monitors plain regression error. This example
fits every learner on one algorithm configuration's runtimes and
reports MAE / RMSE / MAPE under 5-fold cross-validation — reproducing
the qualitative §III-C ranking: GAM/XGBoost/KNN usable out of the box,
random forests behind them, linear regression hopeless.
"""

import numpy as np

from repro.bench import BenchmarkSpec, DatasetRunner, GridSpec
from repro.core.features import instance_features
from repro.machine import jupiter
from repro.ml import (
    GAMRegressor,
    GradientBoostingRegressor,
    KNNRegressor,
    RandomForestRegressor,
    RidgeRegressor,
    mape,
    rmse,
)
from repro.ml.validation import cross_val_score
from repro.mpilib import get_library

LEARNERS = {
    "GAM additive": lambda: GAMRegressor(),
    "GAM + te(m,p)": lambda: GAMRegressor(interactions=((0, 3),)),
    "XGBoost (tweedie)": lambda: GradientBoostingRegressor(n_rounds=100),
    "KNN (k=5, scaled)": lambda: KNNRegressor(),
    "RandomForest": lambda: RandomForestRegressor(n_trees=50, rng=0),
    "Ridge (linear)": lambda: RidgeRegressor(),
    "Ridge (log target)": lambda: RidgeRegressor(log_target=True),
}


def main() -> None:
    library = get_library("Open MPI")
    runner = DatasetRunner(jupiter, library, BenchmarkSpec(max_nreps=25), seed=3)
    print("benchmarking Open MPI allreduce on Jupiter ...")
    dataset = runner.run(
        "allreduce",
        GridSpec(
            nodes=(4, 8, 12, 16, 20, 24, 28, 32),
            ppns=(1, 4, 8, 16),
            msizes=(1, 64, 1024, 16384, 262144, 1 << 20, 4 << 20),
        ),
        name="jupiter-allreduce",
    )

    # Pick the configuration with the widest dynamic range: the ring.
    cid = next(
        i for i, c in enumerate(dataset.configs) if c.name == "ring"
    )
    mask = dataset.rows_of_config(cid)
    X = instance_features(
        dataset.nodes[mask], dataset.ppn[mask], dataset.msize[mask]
    )
    y = dataset.time[mask]
    print(f"modelling {mask.sum()} runtimes of "
          f"'{dataset.configs[cid].label}' "
          f"({y.min() * 1e6:.1f}us .. {y.max() * 1e3:.2f}ms)\n")

    print(f"{'learner':20} {'MAPE':>8} {'RMSE':>12}")
    print("-" * 42)
    for name, factory in LEARNERS.items():
        mape_scores = cross_val_score(factory, X, y, mape, n_splits=5, rng=0)
        rmse_scores = cross_val_score(factory, X, y, rmse, n_splits=5, rng=0)
        print(f"{name:20} {np.mean(mape_scores):8.1%} "
              f"{np.mean(rmse_scores) * 1e6:10.1f}us")
    print("\n(MAPE is the metric that matters for argmin selection: "
          "runtimes span 4 orders of magnitude.)")


if __name__ == "__main__":
    main()
