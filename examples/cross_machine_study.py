#!/usr/bin/env python3
"""Why hard-coded defaults fail: the same collective on three machines.

The paper's core premise (§I-II): the best algorithm depends on the
machine, so thresholds frozen into an MPI library lose somewhere. This
example evaluates the full Open MPI broadcast tuning space on all three
simulated testbeds at the same instance and shows (a) the winner is a
different algorithm on each machine, and (b) how far Open MPI's own
default is from it.
"""

from repro.collectives.registry import algorithm_from_config
from repro.machine import Topology, get_machine
from repro.mpilib import get_library
from repro.utils.units import format_bytes, format_time

MACHINES = ("Hydra", "Jupiter", "SuperMUC-NG")
SHAPES = {"Hydra": (16, 16), "Jupiter": (16, 8), "SuperMUC-NG": (16, 24)}
MSIZES = (256, 65536, 4 << 20)


def main() -> None:
    library = get_library("Open MPI")
    space = library.config_space("bcast")
    algos = [
        algorithm_from_config(c) for c in space.configs if c.algid != 8
    ]

    for m in MSIZES:
        print(f"== MPI_Bcast of {format_bytes(m)} ==")
        for machine_name in MACHINES:
            machine = get_machine(machine_name)
            topo = Topology(*SHAPES[machine_name])
            times = {
                a.config: a.base_time(machine, topo, m)
                for a in algos
                if a.supported(topo, m)
            }
            best_cfg = min(times, key=times.get)
            default_cfg = library.default_config(machine, topo, "bcast", m)
            t_best = times[best_cfg]
            t_default = times.get(default_cfg)
            gap = t_default / t_best if t_default else float("nan")
            print(f"  {machine_name:12} ({topo}): "
                  f"best {best_cfg.label:38} {format_time(t_best):>10}   "
                  f"default {default_cfg.label:32} {gap:5.2f}x slower")
        print()

    print("The winning algorithm differs across machines at the same "
          "instance —\nwhich is exactly why the paper replaces the "
          "hard-coded logic with per-machine learned models.")


if __name__ == "__main__":
    main()
