#!/usr/bin/env python3
"""Quickstart: tune a collective and ask for the best algorithm.

Runs in well under a minute on a laptop. The flow is the paper's
Figure 1 pipeline end to end:

1. pick a machine model and an MPI library (simulated),
2. benchmark the library's broadcast tuning space on a small grid,
3. fit one regression model per algorithm configuration,
4. query the selector for an allocation it has never seen,
5. write an Open MPI dynamic-rules file that forces the choice.
"""

from repro.bench import BenchmarkSpec, GridSpec
from repro.core.tuner import AutoTuner
from repro.machine import tiny_testbed
from repro.mpilib import get_library
from repro.utils.units import format_bytes, format_time


def main() -> None:
    tuner = AutoTuner(
        machine=tiny_testbed,
        library=get_library("Open MPI"),
        collective="bcast",
        learner="GAM",
        bench_spec=BenchmarkSpec(max_nreps=20, max_seconds=0.5),
        seed=0,
    )

    print("== benchmark step (ReproMPI-style, time-budgeted) ==")
    dataset = tuner.benchmark(
        GridSpec(
            nodes=(2, 4, 8),
            ppns=(1, 2, 4),
            msizes=(1, 256, 4096, 65536, 1 << 20),
        ),
        exclude_algids=(8,),  # the broadcast broken in Open MPI 4.0.2
    )
    print(f"measured {len(dataset)} samples "
          f"({dataset.num_algorithms} algorithms)")

    print("\n== tuning step: one regression model per configuration ==")
    selector = tuner.train()
    print(f"trained {selector.num_models} runtime models")

    print("\n== prediction for an unseen allocation (3 nodes x 3 ppn) ==")
    for msize in (16, 4096, 1 << 20):
        ranked = selector.ranked(3, 3, msize)
        best, t_best = ranked[0]
        print(f"  {format_bytes(msize):>7}: {best.label:40s} "
              f"predicted {format_time(t_best)}")
        runner_up, t_ru = ranked[1]
        print(f"           runner-up: {runner_up.label:34s} "
              f"predicted {format_time(t_ru)}")

    print("\n== emit a rules file Open MPI could load ==")
    text = tuner.write_rules("quickstart_rules.conf", nodes=3, ppn=3)
    print(text)
    print("wrote quickstart_rules.conf")


if __name__ == "__main__":
    main()
