#!/usr/bin/env python3
"""Peek inside the trained runtime models, and race offline vs online.

Two extensions around the paper's pipeline:

1. **Which features drive a configuration's runtime model?**
   Permutation importance and partial dependence on the model of one
   broadcast configuration — message size should dominate, with the
   process count shaping the rest (the paper's §IV-B remark that
   message size "turned out to be the most important factor").
2. **What does online tuning cost?** The STAR-MPI baseline (related
   work, §VI) explores inside the application; the offline selector
   does not. We count the wasted time over a realistic call sequence.
"""

import numpy as np

from repro.bench import BenchmarkSpec, DatasetRunner, GridSpec
from repro.core.features import FEATURE_NAMES, instance_features
from repro.core.online import OnlineSelector
from repro.machine import Topology, hydra
from repro.ml import (
    GradientBoostingRegressor,
    mape,
    partial_dependence,
    permutation_importance,
)
from repro.mpilib import get_library
from repro.utils.units import format_bytes, format_time


def feature_importance_demo(dataset) -> None:
    print("== what drives a configuration's runtime? ==")
    cid = next(
        i for i, c in enumerate(dataset.configs)
        if c.label == "3:pipeline(segsize=16KiB)"
    )
    mask = dataset.rows_of_config(cid)
    X = instance_features(
        dataset.nodes[mask], dataset.ppn[mask], dataset.msize[mask]
    )
    y = dataset.time[mask]
    model = GradientBoostingRegressor(n_rounds=100).fit(X, y)
    importance = permutation_importance(model, X, y, mape, rng=0)
    print(f"model: {dataset.configs[cid].label} "
          f"({mask.sum()} samples, MAPE {mape(y, model.predict(X)):.1%})")
    for name, imp in sorted(
        zip(FEATURE_NAMES, importance), key=lambda kv: -kv[1]
    ):
        bar = "#" * int(min(imp * 50, 40))
        print(f"  {name:12s} {imp:8.3f}  {bar}")

    grid, means = partial_dependence(model, X, feature=0, num_points=8)
    print("\npartial dependence on log2(msize):")
    for g, t in zip(grid, means):
        print(f"  {format_bytes(int(2 ** g)):>8}: {format_time(float(t))}")


def online_cost_demo() -> None:
    print("\n== cost of tuning *inside* the application (STAR-MPI) ==")
    library = get_library("Open MPI")
    topo, msize, calls = Topology(13, 16), 65536, 300
    for policy in ("star", "epsilon", "ucb"):
        tuner = OnlineSelector(
            hydra, library, "bcast", policy=policy,
            exclude_algids=(8,), rng=1,
        )
        result = tuner.run(topo, msize, calls)
        print(f"  {policy:8s}: total {format_time(result.total_time)}, "
              f"regret {format_time(result.regret)} "
              f"({100 * result.regret / result.total_time:.1f}% wasted), "
              f"converged={result.converged_to_best}, "
              f"final={result.final_config.label}")
    print("  (the offline selector pays none of this at run time)")


def main() -> None:
    runner = DatasetRunner(
        hydra, get_library("Open MPI"), BenchmarkSpec(max_nreps=20), seed=5
    )
    dataset = runner.run(
        "bcast",
        GridSpec(
            nodes=(4, 8, 16, 24, 32), ppns=(1, 8, 16, 32),
            msizes=(1, 256, 4096, 65536, 524288, 4 << 20),
        ),
        name="diag", exclude_algids=(8,),
    )
    feature_importance_demo(dataset)
    online_cost_demo()


if __name__ == "__main__":
    main()
