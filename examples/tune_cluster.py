#!/usr/bin/env python3
"""Tune MPI_Bcast for the Hydra cluster — the paper's §II scenario.

The motivating failure mode of tools like mpitune (paper §II): a tuning
run made at 32x32 processes says nothing about a job started on 34x32.
This example benchmarks the realistic node counts a scientist would
(powers of two), trains the three paper learners, and then answers for
the *odd* allocation 34 x 32 that none of them ever measured — plus
prints how each learner's pick compares to the others.

Takes a few minutes (it benchmarks ~60 broadcast configurations).
"""

import time

from repro.bench import BenchmarkSpec, DatasetRunner, GridSpec
from repro.core import AlgorithmSelector, render_ompi_rules, selection_table
from repro.machine import hydra
from repro.ml import PAPER_LEARNERS
from repro.mpilib import get_library
from repro.utils.units import format_bytes

TRAIN_NODES = (4, 8, 16, 24, 32)
PPNS = (1, 8, 16, 32)
MSIZES = (1, 256, 4096, 65536, 524288, 4 << 20)
TARGET_NODES, TARGET_PPN = 34, 32  # the allocation mpitune cannot answer


def main() -> None:
    library = get_library("Open MPI")
    runner = DatasetRunner(
        hydra, library, BenchmarkSpec(max_nreps=25, max_seconds=0.5), seed=7
    )

    print(f"benchmarking Open MPI bcast on Hydra, nodes={TRAIN_NODES} ...")
    t0 = time.time()
    dataset = runner.run(
        "bcast",
        GridSpec(nodes=TRAIN_NODES, ppns=PPNS, msizes=MSIZES),
        name="hydra-bcast",
        exclude_algids=(8,),
    )
    print(f"  {len(dataset)} samples in {time.time() - t0:.1f}s "
          f"of wall time (simulated campaign)")

    selectors = {}
    for name, factory in PAPER_LEARNERS.items():
        t0 = time.time()
        selectors[name] = AlgorithmSelector(factory).fit(dataset)
        print(f"  trained {name:8s} ({selectors[name].num_models} models, "
              f"{time.time() - t0:.1f}s)")

    print(f"\npredictions for the unseen allocation "
          f"{TARGET_NODES} x {TARGET_PPN}:")
    header = f"{'msize':>8} | " + " | ".join(f"{n:^28}" for n in selectors)
    print(header)
    print("-" * len(header))
    for m in MSIZES:
        cells = []
        for name, sel in selectors.items():
            cfg = sel.select(TARGET_NODES, TARGET_PPN, m)
            cells.append(f"{cfg.label:^28}")
        print(f"{format_bytes(m):>8} | " + " | ".join(cells))

    print("\nOpen MPI dynamic-rules file (GAM selector):")
    table = selection_table(selectors["GAM"], TARGET_NODES, TARGET_PPN)
    text = render_ompi_rules("bcast", TARGET_NODES, TARGET_PPN, table)
    with open("hydra_bcast_rules.conf", "w") as fh:
        fh.write(text)
    print(text)
    print("wrote hydra_bcast_rules.conf — load with\n"
          "  mpirun --mca coll_tuned_use_dynamic_rules 1 "
          "--mca coll_tuned_dynamic_rules_filename hydra_bcast_rules.conf ...")


if __name__ == "__main__":
    main()
