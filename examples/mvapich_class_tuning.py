#!/usr/bin/env python3
"""Tuning MVAPICH's size-class knob with the learned models.

MVAPICH selects algorithms per *message-size class* (small / medium /
large), not per instance — the paper's §IV-B caveat. The learned
runtime models still apply: per class, pick the configuration that
minimises the predicted runtime over the class's message range, then
install it through the library's MV2-style knob.
"""

from repro.bench import BenchmarkSpec, DatasetRunner, GridSpec
from repro.core import AlgorithmSelector
from repro.core.class_tuner import CLASS_PROBES, apply_class_tuning
from repro.machine import Topology, hydra
from repro.mpilib import get_library
from repro.utils.units import format_bytes

TARGET_NODES, TARGET_PPN = 13, 16  # an allocation we never benchmark


def main() -> None:
    library = get_library("MVAPICH")
    runner = DatasetRunner(hydra, library, BenchmarkSpec(max_nreps=20), seed=11)
    print("benchmarking MVAPICH allreduce on Hydra ...")
    dataset = runner.run(
        "allreduce",
        GridSpec(
            nodes=(4, 8, 16, 24, 32), ppns=(1, 8, 16, 32),
            msizes=(16, 1024, 4096, 16384, 131072, 1 << 20, 4 << 20),
        ),
        name="mvapich-allreduce",
    )
    print(f"  {len(dataset)} samples over {len(dataset.configs)} configurations")

    from repro.ml import PAPER_LEARNERS

    selector = AlgorithmSelector(PAPER_LEARNERS["GAM"]).fit(dataset)

    print(f"\nfactory class table vs tuned, allocation "
          f"{TARGET_NODES} x {TARGET_PPN}:")
    factory = {
        cls: library.class_algorithm("allreduce", cls)
        for cls in CLASS_PROBES
    }
    choices = apply_class_tuning(
        library, "allreduce", selector, TARGET_NODES, TARGET_PPN
    )
    for cls in CLASS_PROBES:
        probes = ", ".join(format_bytes(m) for m in CLASS_PROBES[cls])
        print(f"  {cls.value:6s} ({probes})")
        print(f"     factory: {factory[cls].label}")
        print(f"     tuned:   {choices[cls].label}")

    print("\nthe library's default now serves the tuned table:")
    topo = Topology(TARGET_NODES, TARGET_PPN)
    for m in (64, 65536, 4 << 20):
        cfg = library.default_config(hydra, topo, "allreduce", m)
        print(f"  default({format_bytes(m):>6}) -> {cfg.label}")


if __name__ == "__main__":
    main()
