"""Clock-synchronisation error model."""

import numpy as np

from repro.bench.clock_sync import ClockSync, SyncMethod
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed


class TestErrorScales:
    def test_method_ordering(self):
        topo = Topology(4, 2)
        scales = {
            m: ClockSync(m).error_scale(tiny_testbed, topo) for m in SyncMethod
        }
        assert (
            scales[SyncMethod.HIERARCHICAL]
            < scales[SyncMethod.HCA]
            < scales[SyncMethod.BARRIER]
        )

    def test_barrier_error_grows_with_size(self):
        sync = ClockSync(SyncMethod.BARRIER)
        small = sync.error_scale(tiny_testbed, Topology(2, 1))
        large = sync.error_scale(tiny_testbed, Topology(8, 4))
        assert large > small

    def test_hierarchical_error_size_independent(self):
        sync = ClockSync(SyncMethod.HIERARCHICAL)
        small = sync.error_scale(tiny_testbed, Topology(2, 1))
        large = sync.error_scale(tiny_testbed, Topology(8, 4))
        assert small == large


class TestSampling:
    def test_errors_nonnegative(self):
        sync = ClockSync()
        errors = sync.sample_errors(
            tiny_testbed, Topology(4, 2), 1000, np.random.default_rng(0)
        )
        assert (errors >= 0).all()
        assert errors.shape == (1000,)

    def test_deterministic_per_seed(self):
        sync = ClockSync()
        a = sync.sample_errors(tiny_testbed, Topology(4, 2), 10, 7)
        b = sync.sample_errors(tiny_testbed, Topology(4, 2), 10, 7)
        np.testing.assert_array_equal(a, b)

    def test_magnitude_below_latency(self):
        # Hierarchical sync error must be a small fraction of alpha.
        errors = ClockSync().sample_errors(
            tiny_testbed, Topology(4, 2), 10000, np.random.default_rng(1)
        )
        assert errors.mean() < tiny_testbed.alpha_inter
