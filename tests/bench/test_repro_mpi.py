"""Time-budgeted measurement semantics (the ReproMPI stand-in)."""

import numpy as np
import pytest

from repro.bench.repro_mpi import BenchmarkSpec, ReproMPIBenchmark, Summary
from repro.collectives.registry import make_algorithm
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed


@pytest.fixture
def algo():
    return make_algorithm("bcast", "binomial", segsize=None)


@pytest.fixture
def topo():
    return Topology(4, 2)


class TestSpecValidation:
    def test_bad_nreps(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(max_nreps=0)

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(max_seconds=0.0)

    def test_bad_min_valid_nreps(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(min_valid_nreps=0)
        with pytest.raises(ValueError):
            BenchmarkSpec(max_nreps=10, min_valid_nreps=11)

    def test_min_valid_nreps_at_cap_is_fine(self):
        spec = BenchmarkSpec(max_nreps=10, min_valid_nreps=10)
        assert spec.min_valid_nreps == 10


class TestBudget:
    def test_nreps_cap(self, algo, topo):
        bench = ReproMPIBenchmark(
            tiny_testbed, BenchmarkSpec(max_nreps=17, max_seconds=100.0)
        )
        m = bench.measure(algo, topo, 1024, rng=0)
        assert m.nreps == 17
        assert len(m.observations) == 17

    def test_time_budget_cuts_series(self, algo, topo):
        # A 2 MiB broadcast takes ~hundreds of us; a 1 ms budget only
        # fits a handful of reps.
        bench = ReproMPIBenchmark(
            tiny_testbed, BenchmarkSpec(max_nreps=500, max_seconds=1e-3)
        )
        m = bench.measure(algo, topo, 2 << 20, rng=0)
        assert 1 <= m.nreps < 50
        assert m.spent <= 1e-3 + m.observations.max()

    def test_at_least_one_observation(self, algo, topo):
        bench = ReproMPIBenchmark(
            tiny_testbed, BenchmarkSpec(max_nreps=500, max_seconds=1e-12)
        )
        m = bench.measure(algo, topo, 1 << 20, rng=0)
        assert m.nreps == 1


class TestTruncation:
    """``truncated`` must compare against the *spec's* cap, not 500."""

    def test_small_cap_reached_is_not_truncated(self, algo, topo):
        bench = ReproMPIBenchmark(
            tiny_testbed, BenchmarkSpec(max_nreps=17, max_seconds=100.0)
        )
        m = bench.measure(algo, topo, 1024, rng=0)
        assert m.nreps == 17  # fewer than 500 but NOT truncated
        assert not m.truncated
        assert m.max_nreps == 17

    def test_budget_cut_is_truncated(self, algo, topo):
        bench = ReproMPIBenchmark(
            tiny_testbed, BenchmarkSpec(max_nreps=500, max_seconds=1e-3)
        )
        m = bench.measure(algo, topo, 2 << 20, rng=0)
        assert m.nreps < 500
        assert m.truncated

    def test_ok_and_valid_nreps_on_clean_measurement(self, algo, topo):
        bench = ReproMPIBenchmark(tiny_testbed, BenchmarkSpec(max_nreps=20))
        m = bench.measure(algo, topo, 1024, rng=0)
        assert m.ok
        assert m.valid_nreps == m.nreps

    def test_total_campaign_time_predictable(self, algo, topo):
        # The paper's requirement: an upper bound on benchmark time.
        budget = 5e-3
        bench = ReproMPIBenchmark(
            tiny_testbed, BenchmarkSpec(max_nreps=500, max_seconds=budget)
        )
        for m_bytes in (1, 1024, 1 << 20):
            m = bench.measure(algo, topo, m_bytes, rng=1)
            assert m.spent <= budget + m.observations.max()


class TestStatistics:
    def test_summary_choices(self, algo, topo):
        base = {}
        for summary in Summary:
            bench = ReproMPIBenchmark(
                tiny_testbed,
                BenchmarkSpec(max_nreps=50, summary=summary),
            )
            base[summary] = bench.measure(algo, topo, 4096, rng=3).time
        assert base[Summary.MIN] <= base[Summary.MEDIAN]
        assert base[Summary.MIN] <= base[Summary.MEAN]

    def test_observations_near_base(self, algo, topo):
        bench = ReproMPIBenchmark(tiny_testbed, BenchmarkSpec(max_nreps=100))
        m = bench.measure(algo, topo, 65536, rng=4)
        base = algo.base_time(tiny_testbed, topo, 65536)
        assert m.time == pytest.approx(base, rel=0.25)
        assert (m.observations > 0).all()

    def test_determinism(self, algo, topo):
        bench = ReproMPIBenchmark(tiny_testbed, BenchmarkSpec(max_nreps=20))
        a = bench.measure(algo, topo, 1024, rng=np.random.default_rng(5))
        b = bench.measure(algo, topo, 1024, rng=np.random.default_rng(5))
        assert a.time == b.time
        np.testing.assert_array_equal(a.observations, b.observations)


class TestExactMode:
    def test_engine_backed_measurement(self, algo, topo):
        bench = ReproMPIBenchmark(
            tiny_testbed, BenchmarkSpec(max_nreps=5, exact=True)
        )
        m = bench.measure(algo, topo, 4096, rng=0)
        fast = algo.base_time(tiny_testbed, topo, 4096)
        assert m.time == pytest.approx(fast, rel=0.5)
