"""Fault-injection harness: determinism, robust summaries, retry/backoff."""

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.checkpoint import CampaignJournal
from repro.bench.faults import (
    ChunkCrash,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
)
from repro.bench.repro_mpi import Summary, mad_outlier_mask
from repro.obs import get_telemetry


class TestFaultSpec:
    def test_defaults_resolve_to_rate(self):
        spec = FaultSpec(rate=0.25)
        for fault in ("straggler", "jitter", "obs_fail",
                      "chunk_crash", "journal_corrupt"):
            assert spec.p(fault) == 0.25

    def test_explicit_prob_overrides_rate(self):
        spec = FaultSpec(rate=0.25, chunk_crash_prob=0.0)
        assert spec.p("chunk_crash") == 0.0
        assert spec.p("straggler") == 0.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -0.1},
            {"rate": 1.5},
            {"obs_fail_prob": 2.0},
            {"straggler_shape": 0.0},
            {"straggler_scale": -1.0},
            {"jitter_frac": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_uniform_helper(self):
        spec = FaultSpec.uniform(0.05, seed=9)
        assert spec.rate == 0.05 and spec.seed == 9


class TestInjectorDeterminism:
    def test_same_key_bit_identical(self):
        injector = FaultInjector(FaultSpec.uniform(0.8, seed=3))
        series = np.linspace(1.0, 2.0, 30)
        out1, rep1 = injector.perturb(series.copy(), "d1", "algX", 4, 2, 1024, 0)
        out2, rep2 = injector.perturb(series.copy(), "d1", "algX", 4, 2, 1024, 0)
        assert np.array_equal(out1, out2, equal_nan=True)
        assert rep1 == rep2

    def test_different_attempt_different_draw(self):
        injector = FaultInjector(FaultSpec(rate=1.0, seed=3))
        series = np.linspace(1.0, 2.0, 30)
        out0, _ = injector.perturb(series.copy(), "d1", "algX", 4, 2, 1024, 0)
        out1, _ = injector.perturb(series.copy(), "d1", "algX", 4, 2, 1024, 1)
        assert not np.array_equal(out0, out1, equal_nan=True)

    def test_clean_path_returns_same_object(self):
        """No fault fired -> the input array itself (no copy, no drift)."""
        injector = FaultInjector(FaultSpec(rate=0.0))
        series = np.ones(10)
        out, report = injector.perturb(series, "k", 0)
        assert out is series
        assert not report.any

    def test_independent_of_other_sites(self):
        """A site's faults do not depend on which other sites were drawn."""
        injector = FaultInjector(FaultSpec.uniform(0.5, seed=11))
        series = np.linspace(1.0, 2.0, 20)
        before, _ = injector.perturb(series.copy(), "site-A", 7)
        injector.perturb(series.copy(), "site-B", 8)  # interleave another site
        after, _ = injector.perturb(series.copy(), "site-A", 7)
        assert np.array_equal(before, after, equal_nan=True)

    def test_chunk_crash_deterministic(self):
        injector = FaultInjector(FaultSpec.uniform(0.5, seed=5))
        decisions = [injector.chunk_crashes((4, 2), a) for a in range(8)]
        assert decisions == [injector.chunk_crashes((4, 2), a) for a in range(8)]
        # Not constant across attempts at p=0.5 (vanishing chance of a tie).
        assert len(set(decisions)) == 2


# -- robust summaries ---------------------------------------------------

#: positive, well-scaled "timing" values (seconds-ish magnitudes)
_timings = st.floats(min_value=1e-6, max_value=1e-2,
                     allow_nan=False, allow_infinity=False)


class TestRobustSummaries:
    @given(st.lists(_timings, min_size=10, max_size=50), st.integers(0, 1000))
    def test_mad_median_bounded_by_clean_range(self, values, seed):
        """A single unbounded spike cannot drag MAD_MEDIAN out of the
        clean series' range — while it sends the plain MEAN beyond it."""
        clean = np.array(values)
        spike = float(clean.max()) * 1e4
        spiked = np.append(clean, spike)
        robust = Summary.MAD_MEDIAN.apply(spiked)
        assert clean.min() <= robust <= clean.max()
        # the non-robust statistic is visibly poisoned by the same spike
        assert Summary.MEAN.apply(spiked) > clean.max()

    @given(st.lists(_timings, min_size=25, max_size=60))
    def test_winsorized_mean_bounded_by_clean_range(self, values):
        clean = np.array(values)
        spike = float(clean.max()) * 1e4
        spiked = np.append(clean, spike)
        robust = Summary.WINSORIZED_MEAN.apply(spiked)
        assert robust <= clean.max() * (1 + 1e-6)
        assert robust >= clean.min() * (1 - 1e-6)

    @given(st.lists(_timings, min_size=5, max_size=40))
    def test_robust_summaries_finite_on_clean_series(self, values):
        series = np.array(values)
        for summary in (Summary.MAD_MEDIAN, Summary.WINSORIZED_MEAN):
            assert np.isfinite(summary.apply(series))

    def test_constant_series_rejects_nothing(self):
        series = np.full(20, 3.5e-5)
        assert not mad_outlier_mask(series).any()
        assert Summary.MAD_MEDIAN.apply(series) == pytest.approx(3.5e-5)

    def test_spike_is_rejected_from_constant_series(self):
        series = np.full(20, 1e-4)
        series[7] = 1.0
        mask = mad_outlier_mask(series)
        assert mask[7] and mask.sum() == 1

    def test_empty_series_is_nan(self):
        for summary in Summary:
            assert np.isnan(summary.apply(np.empty(0)))

    def test_robust_flag(self):
        assert Summary.MAD_MEDIAN.robust
        assert Summary.WINSORIZED_MEAN.robust
        assert not Summary.MEDIAN.robust


# -- retry policy -------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.01, backoff_factor=2.0)
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(2) == pytest.approx(0.04)

    def test_wait_uses_injected_sleep(self):
        waits: list[float] = []
        policy = RetryPolicy(backoff_s=0.5, sleep=waits.append)
        policy.wait(0)
        policy.wait(1)
        assert waits == [0.5, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_chunk_crash_is_not_a_keyboard_interrupt(self):
        assert not issubclass(ChunkCrash, KeyboardInterrupt)


# -- journal corruption -------------------------------------------------

class TestJournalCorruption:
    def test_torn_journal_detected_not_trusted(self, tmp_path):
        path = tmp_path / "c.journal.json"
        journal = CampaignJournal(path, "fp")
        journal.record((4, 2), ([0, 1], [64, 64], [1e-5, 2e-5]))
        assert json.loads(path.read_text())  # healthy before the tear

        injector = FaultInjector(FaultSpec(rate=0.0, journal_corrupt_prob=1.0))
        assert injector.corrupts_journal((4, 2))
        injector.tear_journal(path, (4, 2))
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())  # genuinely torn

        fresh = CampaignJournal(path, "fp")
        with get_telemetry().capture() as sink:
            assert fresh.load() == 0  # corrupt -> start fresh, no crash
        names = [e.name for e in sink.events]
        assert "checkpoint_corrupt" in names

    def test_tear_decision_keyed_by_pair_not_order(self):
        injector = FaultInjector(FaultSpec(rate=0.0, journal_corrupt_prob=0.5,
                                           seed=2))
        decisions = {pair: injector.corrupts_journal(pair)
                     for pair in [(n, p) for n in (2, 4, 8) for p in (1, 2)]}
        # replay in reverse order: identical decisions
        for pair in reversed(list(decisions)):
            assert injector.corrupts_journal(pair) == decisions[pair]
