"""Campaign checkpoint/resume: bit-identical recovery from interrupts."""

import json

import numpy as np
import pytest

from repro.bench.checkpoint import CampaignJournal, campaign_fingerprint
from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import DatasetRunner, GridSpec
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library
from repro.obs import get_telemetry

GRID = GridSpec(nodes=(2, 4), ppns=(1, 2), msizes=(16, 1024, 65536))


def _runner(seed=11):
    return DatasetRunner(
        tiny_testbed, get_library("Open MPI"),
        BenchmarkSpec(max_nreps=5), seed=seed,
    )


def _assert_identical(a, b):
    for attr in ("config_id", "nodes", "ppn", "msize", "time"):
        np.testing.assert_array_equal(getattr(a, attr), getattr(b, attr))


class _Interrupt(Exception):
    pass


def _interrupted_run(stem, *, at=0.5, n_jobs=None, seed=11):
    """Run the campaign, injecting an interrupt at ``at`` progress."""

    def maybe_boom(done, total):
        if done >= total * at:
            raise _Interrupt

    with pytest.raises(_Interrupt):
        _runner(seed).run(
            "bcast", GRID, name="ck", checkpoint=stem,
            progress=maybe_boom, n_jobs=n_jobs,
        )


class TestJournal:
    FP = campaign_fingerprint("a", 1, (2, 4))

    def test_roundtrip_exact_floats(self, tmp_path):
        path = tmp_path / "j.json"
        rows = ([0, 1], [16, 16], [1.2345678901234567e-05, 7.1e-300])
        journal = CampaignJournal(path, self.FP)
        journal.record((2, 1), rows)

        fresh = CampaignJournal(path, self.FP)
        assert fresh.load() == 1
        cid, msize, time = fresh.get((2, 1))
        assert cid == rows[0] and msize == rows[1]
        # bit-identical float recovery (json round-trips IEEE doubles)
        assert all(a == b for a, b in zip(time, rows[2], strict=True))

    def test_missing_file_is_fresh(self, tmp_path):
        journal = CampaignJournal(tmp_path / "nope.json", self.FP)
        assert journal.load() == 0

    def test_fingerprint_mismatch_ignored_with_event(self, tmp_path):
        path = tmp_path / "j.json"
        CampaignJournal(path, self.FP).record((2, 1), ([0], [16], [1.0]))
        with get_telemetry().capture() as sink:
            stale = CampaignJournal(path, campaign_fingerprint("other"))
            assert stale.load() == 0
        assert [e.name for e in sink.of_kind("event")] == ["checkpoint_stale"]

    def test_corrupt_file_ignored_with_event(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text('{"version": 1, "chunks": {"2,1"')  # torn write
        with get_telemetry().capture() as sink:
            journal = CampaignJournal(path, self.FP)
            assert journal.load() == 0
        assert [e.name for e in sink.of_kind("event")] == ["checkpoint_corrupt"]

    def test_atomic_rewrite_leaves_no_droppings(self, tmp_path):
        path = tmp_path / "j.json"
        journal = CampaignJournal(path, self.FP)
        for i in range(5):
            journal.record((2, i), ([i], [16], [float(i)]))
        leftovers = [p for p in tmp_path.iterdir() if p.name != "j.json"]
        assert leftovers == []
        assert len(json.loads(path.read_text())["chunks"]) == 5

    def test_discard(self, tmp_path):
        path = tmp_path / "j.json"
        journal = CampaignJournal(path, self.FP)
        journal.record((2, 1), ([0], [16], [1.0]))
        journal.discard()
        assert not path.exists()
        assert journal.completed_pairs() == set()

    def test_journal_path_next_to_dataset(self, tmp_path):
        stem = tmp_path / "d1-ci-s0"
        assert CampaignJournal.journal_path(stem).name == "d1-ci-s0.journal.json"

    def test_fingerprint_stable_and_sensitive(self):
        assert campaign_fingerprint(1, "x") == campaign_fingerprint(1, "x")
        assert campaign_fingerprint(1, "x") != campaign_fingerprint(2, "x")


class TestResumeDeterminism:
    """Acceptance bar: interrupted+resumed == uninterrupted, any REPRO_JOBS."""

    @pytest.fixture(scope="class")
    def reference(self):
        return _runner().run("bcast", GRID, name="ck")

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_interrupted_then_resumed_bit_identical(
        self, tmp_path, reference, n_jobs
    ):
        stem = tmp_path / "ds"
        _interrupted_run(stem, n_jobs=n_jobs)
        journal = CampaignJournal.journal_path(stem)
        assert journal.exists(), "interrupt must leave a journal behind"
        resumed = _runner().run(
            "bcast", GRID, name="ck", checkpoint=stem,
            resume=True, n_jobs=n_jobs,
        )
        _assert_identical(reference, resumed)

    def test_cross_jobs_resume(self, tmp_path, reference):
        # interrupted serially, resumed with 4 workers: still identical
        stem = tmp_path / "ds"
        _interrupted_run(stem, n_jobs=1)
        resumed = _runner().run(
            "bcast", GRID, name="ck", checkpoint=stem, resume=True, n_jobs=4
        )
        _assert_identical(reference, resumed)

    def test_journal_removed_after_completion(self, tmp_path, reference):
        stem = tmp_path / "ds"
        _interrupted_run(stem)
        _runner().run("bcast", GRID, name="ck", checkpoint=stem, resume=True)
        assert not CampaignJournal.journal_path(stem).exists()

    def test_checkpointed_uninterrupted_matches_plain(self, tmp_path, reference):
        # journalling itself must not perturb the dataset
        checked = _runner().run("bcast", GRID, name="ck", checkpoint=tmp_path / "ds")
        _assert_identical(reference, checked)

    def test_resume_with_wrong_seed_remeasures(self, tmp_path):
        # a journal from seed 11 must not leak into a seed-12 campaign
        stem = tmp_path / "ds"
        _interrupted_run(stem, seed=11)
        with get_telemetry().capture() as sink:
            resumed = _runner(seed=12).run(
                "bcast", GRID, name="ck", checkpoint=stem, resume=True
            )
        assert any(e.name == "checkpoint_stale" for e in sink.of_kind("event"))
        fresh = _runner(seed=12).run("bcast", GRID, name="ck")
        _assert_identical(fresh, resumed)

    def test_resume_emits_campaign_resume_event(self, tmp_path):
        stem = tmp_path / "ds"
        _interrupted_run(stem)
        with get_telemetry().capture() as sink:
            _runner().run(
                "bcast", GRID, name="ck", checkpoint=stem, resume=True
            )
        events = [e for e in sink.of_kind("event")
                  if e.name == "campaign_resume"]
        assert events and events[0].fields["chunks_resumed"] >= 1

    def test_progress_reaches_total_on_resume(self, tmp_path):
        stem = tmp_path / "ds"
        _interrupted_run(stem)
        calls = []
        _runner().run(
            "bcast", GRID, name="ck", checkpoint=stem, resume=True,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls[-1][0] == calls[-1][1]


class TestCampaignTelemetry:
    def test_campaign_and_chunk_spans(self):
        with get_telemetry().capture() as sink:
            _runner().run("bcast", GRID, name="obs")
        spans = sink.of_kind("span")
        names = {e.name for e in spans}
        assert "campaign/obs" in names
        assert "campaign/obs/n=2/ppn=1" in names
        campaign = [e for e in spans if e.name == "campaign/obs"][0]
        assert campaign.fields["samples"] > 0
        assert campaign.fields["samples_per_s"] > 0
        assert 0 < campaign.fields["utilization"] <= 1.0
        chunk = [e for e in spans if e.name == "campaign/obs/n=2/ppn=1"][0]
        assert chunk.fields["samples"] > 0
