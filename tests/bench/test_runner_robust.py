"""Campaign-level robustness: retry, quarantine, deadline, corruption."""

import numpy as np
import pytest

from repro.bench.faults import FaultSpec, RetryPolicy
from repro.bench.repro_mpi import BenchmarkSpec, Summary
from repro.bench.runner import DatasetRunner, GridSpec
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library
from repro.obs import get_telemetry

GRID = GridSpec((2, 4), (1, 2), (1, 1024, 65536))
NO_SLEEP = RetryPolicy(max_attempts=3, sleep=lambda _s: None)


def make_runner(faults=None, retry=NO_SLEEP, **spec_kwargs):
    spec = BenchmarkSpec(max_nreps=20, **spec_kwargs)
    return DatasetRunner(
        tiny_testbed, get_library("Open MPI"), spec, seed=0,
        faults=faults, retry=retry,
    )


def columns(ds):
    return {c: getattr(ds, c) for c in ("config_id", "nodes", "ppn",
                                        "msize", "time")}


class TestFaultDeterminism:
    def test_fault_campaign_bit_identical_across_jobs(self):
        faults = FaultSpec.uniform(0.1, seed=7)
        serial = make_runner(faults).run("bcast", GRID, name="det", n_jobs=1)
        runner4 = make_runner(faults)
        parallel = runner4.run("bcast", GRID, name="det", n_jobs=4)
        for name, col in columns(serial).items():
            assert np.array_equal(col, getattr(parallel, name)), name

    def test_quarantine_list_identical_across_jobs(self):
        faults = FaultSpec(rate=0.0, obs_fail_prob=0.4, obs_fail_frac=1.0,
                           seed=3)
        r1 = make_runner(faults, min_valid_nreps=5)
        r1.run("bcast", GRID, name="q", n_jobs=1)
        r4 = make_runner(faults, min_valid_nreps=5)
        r4.run("bcast", GRID, name="q", n_jobs=4)
        assert r1.quarantine_ == r4.quarantine_
        assert r1.quarantine_  # the fault rate above does quarantine sites

    def test_clean_samples_match_fault_free_oracle(self):
        """Samples the injector never touched are bit-identical to a
        fault-free campaign — the property the chaos comparison needs."""
        oracle = make_runner(None).run("bcast", GRID, name="o")
        faulty = make_runner(FaultSpec.uniform(0.05, seed=1)).run(
            "bcast", GRID, name="o"
        )
        ot, ft = oracle.instance_table(), faulty.instance_table()
        same = 0
        total = 0
        for key, row in ot.items():
            for cid, t in row.items():
                if cid in ft.get(key, {}):
                    total += 1
                    same += ft[key][cid] == t
        assert total > 0
        assert same / total > 0.5  # most sites untouched at 5%/class


class TestRetryAndQuarantine:
    def test_transient_failures_retry_and_recover(self):
        # All observations lost at 60% probability per attempt: most
        # samples need a retry, nearly all recover within 3 attempts.
        faults = FaultSpec(rate=0.0, obs_fail_prob=0.6, obs_fail_frac=1.0,
                           seed=5)
        runner = make_runner(faults)
        telemetry = get_telemetry()
        before = telemetry.counters_snapshot().get("bench.retry", 0)
        with telemetry.capture() as sink:
            ds = runner.run("bcast", GRID, name="retry")
        after = telemetry.counters_snapshot().get("bench.retry", 0)
        assert after > before
        retry_events = [e for e in sink.events if e.name == "bench_retry"]
        assert retry_events
        assert retry_events[0].fields["scope"] == "sample"
        assert retry_events[0].fields["backoff_s"] > 0
        assert len(ds) > 0  # recovered samples made it into the dataset

    def test_persistent_failure_quarantines_sample(self):
        faults = FaultSpec(rate=0.0, obs_fail_prob=1.0, obs_fail_frac=1.0,
                           seed=5)
        runner = make_runner(faults)
        telemetry = get_telemetry()
        before = telemetry.counters_snapshot().get("bench.quarantine", 0)
        with telemetry.capture() as sink:
            ds = runner.run("bcast", GRID, name="qall")
        assert len(ds) == 0  # nothing survived
        assert runner.quarantine_
        assert all(r.kind == "sample" for r in runner.quarantine_)
        assert all(r.attempts == NO_SLEEP.max_attempts
                   for r in runner.quarantine_)
        after = telemetry.counters_snapshot().get("bench.quarantine", 0)
        assert after - before == len(runner.quarantine_)
        q_events = [e for e in sink.events if e.name == "bench_quarantine"]
        assert len(q_events) == len(runner.quarantine_)

    def test_chunk_crash_always_quarantines_chunks(self):
        faults = FaultSpec(rate=0.0, chunk_crash_prob=1.0, seed=5)
        runner = make_runner(faults)
        with get_telemetry().capture() as sink:
            ds = runner.run("bcast", GRID, name="crash")
        assert len(ds) == 0
        assert {r.kind for r in runner.quarantine_} == {"chunk"}
        assert len(runner.quarantine_) == len(GRID.nodes) * len(GRID.ppns)
        chunk_retries = [e for e in sink.events
                         if e.name == "bench_retry"
                         and e.fields.get("scope") == "chunk"]
        assert chunk_retries

    def test_moderate_crash_rate_completes_with_identical_data(self):
        """Crashes that retry successfully leave no trace in the rows."""
        oracle = make_runner(None).run("bcast", GRID, name="c")
        faults = FaultSpec(rate=0.0, chunk_crash_prob=0.4, seed=2)
        generous = RetryPolicy(max_attempts=12, sleep=lambda _s: None)
        runner = make_runner(faults, retry=generous)
        faulty = runner.run("bcast", GRID, name="c")
        # crash/retry affects scheduling, never the measured values
        for name, col in columns(oracle).items():
            assert np.array_equal(col, getattr(faulty, name)), name
        assert not [r for r in runner.quarantine_ if r.kind == "chunk"]


class TestChunkDeadline:
    def test_deadline_quarantines_and_is_deterministic(self):
        telemetry = get_telemetry()
        runner1 = make_runner(None)
        full = runner1.run("bcast", GRID, name="dl")
        with telemetry.capture() as sink:
            runner2 = make_runner(None)
            cut = runner2.run("bcast", GRID, name="dl",
                              chunk_deadline_s=1e-4)
        assert len(cut) < len(full)
        assert {r.kind for r in runner2.quarantine_} == {"deadline"}
        assert any(e.name == "bench_quarantine"
                   and e.fields["kind"] == "deadline" for e in sink.events)
        # deterministic for any worker count
        runner3 = make_runner(None)
        cut4 = runner3.run("bcast", GRID, name="dl",
                           chunk_deadline_s=1e-4, n_jobs=4)
        for name, col in columns(cut).items():
            assert np.array_equal(col, getattr(cut4, name)), name
        assert runner2.quarantine_ == runner3.quarantine_


class TestJournalFaults:
    def test_resume_after_crash_with_corrupt_journal_bit_identical(
        self, tmp_path
    ):
        faults = FaultSpec(rate=0.0, obs_fail_prob=0.3, obs_fail_frac=1.0,
                           journal_corrupt_prob=1.0, seed=4)
        reference = make_runner(faults, min_valid_nreps=5).run(
            "bcast", GRID, name="jr"
        )

        class Interrupt(Exception):
            pass

        def interrupt_at_half(done, total):
            if done >= total * 0.5:
                raise Interrupt

        stem = tmp_path / "jr"
        with pytest.raises(Interrupt):
            make_runner(faults, min_valid_nreps=5).run(
                "bcast", GRID, name="jr",
                checkpoint=stem, progress=interrupt_at_half,
            )
        # every journal write was torn -> resume must detect corruption,
        # start fresh, and still produce bit-identical rows
        with get_telemetry().capture() as sink:
            resumed = make_runner(faults, min_valid_nreps=5).run(
                "bcast", GRID, name="jr", checkpoint=stem, resume=True,
            )
        names = [e.name for e in sink.events]
        assert "checkpoint_corrupt" in names
        for name, col in columns(reference).items():
            assert np.array_equal(col, getattr(resumed, name)), name

    def test_intact_journal_resume_with_faults_bit_identical(self, tmp_path):
        faults = FaultSpec.uniform(0.08, seed=6)
        reference = make_runner(faults).run("bcast", GRID, name="ok")

        class Interrupt(Exception):
            pass

        def interrupt_at_half(done, total):
            if done >= total * 0.5:
                raise Interrupt

        stem = tmp_path / "ok"
        with pytest.raises(Interrupt):
            make_runner(faults).run(
                "bcast", GRID, name="ok",
                checkpoint=stem, progress=interrupt_at_half,
            )
        resumed = make_runner(faults).run(
            "bcast", GRID, name="ok", checkpoint=stem, resume=True,
        )
        for name, col in columns(reference).items():
            assert np.array_equal(col, getattr(resumed, name)), name

    def test_fault_spec_binds_journal_fingerprint(self, tmp_path):
        """A fault-free journal must never be merged into a faulty run."""
        stem = tmp_path / "fp"

        class Interrupt(Exception):
            pass

        def interrupt_at_half(done, total):
            if done >= total * 0.5:
                raise Interrupt

        with pytest.raises(Interrupt):
            make_runner(None).run(
                "bcast", GRID, name="fp",
                checkpoint=stem, progress=interrupt_at_half,
            )
        with get_telemetry().capture() as sink:
            make_runner(FaultSpec.uniform(0.2, seed=1)).run(
                "bcast", GRID, name="fp", checkpoint=stem, resume=True,
            )
        assert "checkpoint_stale" in [e.name for e in sink.events]


class TestMeasurementSemantics:
    def test_outlier_rejection_counter_with_robust_summary(self):
        telemetry = get_telemetry()
        before = telemetry.counters_snapshot().get("bench.outliers_rejected", 0)
        make_runner(
            FaultSpec(rate=0.0, straggler_prob=1.0, seed=1),
            summary=Summary.MAD_MEDIAN,
        ).run("bcast", GRID, name="out")
        after = telemetry.counters_snapshot().get("bench.outliers_rejected", 0)
        assert after > before
