"""Benchmark campaign runner -> PerfDataset."""

import numpy as np
import pytest

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import DatasetRunner, GridSpec
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library


@pytest.fixture(scope="module")
def small_dataset():
    runner = DatasetRunner(
        tiny_testbed, get_library("Open MPI"),
        BenchmarkSpec(max_nreps=5), seed=11,
    )
    grid = GridSpec(nodes=(2, 4), ppns=(1, 2), msizes=(16, 4096))
    return runner.run("alltoall", grid, name="t-alltoall")


class TestGridSpec:
    def test_num_instances(self):
        grid = GridSpec(nodes=(2, 4), ppns=(1, 2, 3), msizes=(1, 2))
        assert grid.num_instances == 12

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(nodes=(), ppns=(1,), msizes=(1,))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GridSpec(nodes=(2,), ppns=(1,), msizes=(-1,))


class TestRunner:
    def test_covers_full_grid(self, small_dataset):
        ds = small_dataset
        # alltoall space has 5 configs, all supported on these instances.
        assert len(ds) == 5 * 8
        assert set(np.unique(ds.nodes)) == {2, 4}
        assert set(np.unique(ds.ppn)) == {1, 2}
        assert set(np.unique(ds.msize)) == {16, 4096}

    def test_times_positive(self, small_dataset):
        assert (small_dataset.time > 0).all()

    def test_metadata(self, small_dataset):
        assert small_dataset.machine == "TinyTestbed"
        assert small_dataset.library == "Open MPI 4.0.2"
        assert small_dataset.name == "t-alltoall"

    def test_deterministic_across_runs(self):
        def make():
            runner = DatasetRunner(
                tiny_testbed, get_library("Open MPI"),
                BenchmarkSpec(max_nreps=5), seed=11,
            )
            grid = GridSpec(nodes=(2,), ppns=(2,), msizes=(1024,))
            return runner.run("bcast", grid, name="det")

        a, b = make(), make()
        np.testing.assert_array_equal(a.time, b.time)

    def test_seed_changes_results(self):
        def make(seed):
            runner = DatasetRunner(
                tiny_testbed, get_library("Open MPI"),
                BenchmarkSpec(max_nreps=5), seed=seed,
            )
            grid = GridSpec(nodes=(2,), ppns=(2,), msizes=(1024,))
            return runner.run("bcast", grid, name="det")

        assert not np.array_equal(make(1).time, make(2).time)

    def test_exclude_algids(self):
        runner = DatasetRunner(
            tiny_testbed, get_library("Open MPI"),
            BenchmarkSpec(max_nreps=3), seed=0,
        )
        grid = GridSpec(nodes=(2,), ppns=(1,), msizes=(64,))
        ds = runner.run("bcast", grid, name="x", exclude_algids=(8, 9))
        algids = {c.algid for c in ds.configs}
        assert 8 not in algids and 9 not in algids

    def test_unsupported_instances_skipped(self):
        # split_binary (algid 4) cannot run on 2 ranks.
        runner = DatasetRunner(
            tiny_testbed, get_library("Open MPI"),
            BenchmarkSpec(max_nreps=3), seed=0,
        )
        grid = GridSpec(nodes=(2,), ppns=(1,), msizes=(64,))
        ds = runner.run("bcast", grid, name="x")
        split_ids = [
            i for i, c in enumerate(ds.configs) if c.name == "split_binary"
        ]
        for cid in split_ids:
            assert not ds.rows_of_config(cid).any()

    def test_shape_validation(self):
        runner = DatasetRunner(
            tiny_testbed, get_library("Open MPI"), BenchmarkSpec(max_nreps=3)
        )
        grid = GridSpec(nodes=(64,), ppns=(1,), msizes=(1,))
        with pytest.raises(ValueError):
            runner.run("bcast", grid)

    def test_progress_callback(self):
        seen = []
        runner = DatasetRunner(
            tiny_testbed, get_library("Open MPI"),
            BenchmarkSpec(max_nreps=3), seed=0,
        )
        grid = GridSpec(nodes=(2,), ppns=(1, 2), msizes=(64,))
        runner.run(
            "alltoall", grid, name="p",
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen and seen[-1][0] == seen[-1][1]


class TestGridSpecBounds:
    """PR 1 bugfix: 0-node / 0-ppn grids used to pass validation."""

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            GridSpec(nodes=(0,), ppns=(1,), msizes=(1,))

    def test_zero_ppn_rejected(self):
        with pytest.raises(ValueError, match="ppns"):
            GridSpec(nodes=(2,), ppns=(0, 1), msizes=(1,))

    def test_zero_msize_allowed(self):
        # A 0-byte collective invocation is legitimate.
        grid = GridSpec(nodes=(2,), ppns=(1,), msizes=(0, 16))
        assert grid.num_instances == 2

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError, match="nodes"):
            GridSpec(nodes=(-2,), ppns=(1,), msizes=(1,))


class TestParallelRunner:
    GRID = GridSpec(nodes=(2, 4), ppns=(1, 2), msizes=(16, 1024, 65536))

    def _run(self, n_jobs, progress=None):
        runner = DatasetRunner(
            tiny_testbed, get_library("Open MPI"),
            BenchmarkSpec(max_nreps=5), seed=11,
        )
        return runner.run(
            "bcast", self.GRID, name="par", n_jobs=n_jobs, progress=progress
        )

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_bit_identical_to_serial(self, n_jobs):
        serial = self._run(1)
        parallel = self._run(n_jobs)
        for attr in ("config_id", "nodes", "ppn", "msize", "time"):
            np.testing.assert_array_equal(
                getattr(serial, attr), getattr(parallel, attr)
            )

    def test_env_knob_bit_identical(self, monkeypatch):
        serial = self._run(1)
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = self._run(None)
        np.testing.assert_array_equal(serial.time, parallel.time)

    def test_progress_monotone_and_complete(self):
        calls = []
        self._run(4, progress=lambda done, total: calls.append((done, total)))
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)
        total = calls[-1][1]
        assert calls[-1][0] == total
        assert total == 63 * self.GRID.num_instances  # 63 bcast configs
