"""Chaos acceptance: a full campaign at ~5% fault rate stays usable.

The ISSUE's end-to-end criterion: with every fault class armed at a
realistic rate, the campaign completes without an unhandled exception,
quarantines are reported through telemetry, the selections trained on
the faulty dataset agree with the fault-free oracle on >= 95% of the
query grid, and resume-after-crash stays bit-identical.
"""

import numpy as np
import pytest

from repro.bench.faults import FaultSpec, RetryPolicy
from repro.bench.repro_mpi import BenchmarkSpec, Summary
from repro.bench.runner import DatasetRunner, GridSpec
from repro.core.selector import AlgorithmSelector
from repro.machine.zoo import tiny_testbed
from repro.ml import KNNRegressor
from repro.mpilib import get_library
from repro.obs import get_telemetry

CHAOS = FaultSpec.uniform(0.05, seed=42)
GRID = GridSpec(nodes=(2, 4), ppns=(1, 2), msizes=(1, 1024, 65536))
#: off-grid query mesh: selections must survive faults on unseen points too
QUERY_N = np.repeat([2, 3, 4], 14)
QUERY_P = np.tile(np.repeat([1, 2], 7), 3)
QUERY_M = np.tile([1, 64, 1024, 8192, 65536, 262144, 1 << 20], 6)

NO_SLEEP = RetryPolicy(max_attempts=3, sleep=lambda _s: None)


def run_campaign(faults, **kwargs):
    spec = BenchmarkSpec(max_nreps=20, summary=Summary.MAD_MEDIAN)
    runner = DatasetRunner(
        tiny_testbed, get_library("Open MPI"), spec, seed=0,
        faults=faults, retry=NO_SLEEP,
    )
    ds = runner.run("bcast", GRID, name="chaos", **kwargs)
    return runner, ds


def fit_selector(ds) -> AlgorithmSelector:
    return AlgorithmSelector(lambda: KNNRegressor(), min_samples=8).fit(ds)


@pytest.fixture(scope="module")
def oracle():
    _, ds = run_campaign(None)
    return ds


class TestChaosAcceptance:
    def test_campaign_completes_and_reports_quarantines(self):
        with get_telemetry().capture() as sink:
            runner, ds = run_campaign(CHAOS)
        assert len(ds) > 0
        # every quarantined site surfaced as a structured event
        q_events = [e for e in sink.events if e.name == "bench_quarantine"]
        assert len(q_events) == len(runner.quarantine_)
        # dataset is clean by construction: faults never leak NaN rows
        ds.validate()

    def test_selections_match_oracle_within_tolerance(self, oracle):
        _, faulty = run_campaign(CHAOS)
        ids_oracle = fit_selector(oracle).select_ids(QUERY_N, QUERY_P, QUERY_M)
        ids_faulty = fit_selector(faulty).select_ids(QUERY_N, QUERY_P, QUERY_M)
        agreement = float(np.mean(ids_oracle == ids_faulty))
        assert agreement >= 0.95, f"only {agreement:.1%} argmin agreement"

    def test_resume_after_crash_bit_identical(self, tmp_path):
        _, reference = run_campaign(CHAOS)

        class Interrupt(Exception):
            pass

        def interrupt_at_half(done, total):
            if done >= total * 0.5:
                raise Interrupt

        stem = tmp_path / "chaos"
        with pytest.raises(Interrupt):
            run_campaign(CHAOS, checkpoint=stem, progress=interrupt_at_half)
        _, resumed = run_campaign(CHAOS, checkpoint=stem, resume=True)
        for col in ("config_id", "nodes", "ppn", "msize", "time"):
            assert np.array_equal(
                getattr(reference, col), getattr(resumed, col)
            ), col

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_chaos_campaign_identical_for_any_worker_count(self, n_jobs):
        _, serial = run_campaign(CHAOS, n_jobs=1)
        _, parallel = run_campaign(CHAOS, n_jobs=n_jobs)
        for col in ("config_id", "nodes", "ppn", "msize", "time"):
            assert np.array_equal(
                getattr(serial, col), getattr(parallel, col)
            ), col
