"""Deterministic RNG plumbing."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import as_generator, spawn_child, stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {stable_seed("key", i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_fits_in_63_bits(self):
        for i in range(100):
            assert 0 <= stable_seed("x", i) < 2**63

    @given(st.lists(st.text(max_size=20), max_size=5))
    def test_never_raises(self, parts):
        stable_seed(*parts)


class TestAsGenerator:
    def test_from_int(self):
        a = as_generator(7)
        b = as_generator(7)
        assert a.random() == b.random()

    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnChild:
    def test_children_deterministic(self):
        a = spawn_child(np.random.default_rng(1), "noise")
        b = spawn_child(np.random.default_rng(1), "noise")
        assert a.random() == b.random()

    def test_distinct_keys_independent(self):
        parent = np.random.default_rng(1)
        a = spawn_child(parent, "x")
        parent2 = np.random.default_rng(1)
        b = spawn_child(parent2, "y")
        assert a.random() != b.random()

    def test_child_draw_does_not_affect_sibling(self):
        parent = np.random.default_rng(3)
        a = spawn_child(parent, "a")
        b = spawn_child(parent, "b")
        a.random(1000)  # drain a
        parent2 = np.random.default_rng(3)
        _ = spawn_child(parent2, "a")
        b2 = spawn_child(parent2, "b")
        assert b.random() == b2.random()
