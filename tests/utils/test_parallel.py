"""Deterministic parallel execution helpers."""

import threading

import pytest

from repro.utils.parallel import (
    ENV_JOBS,
    ProgressCounter,
    parallel_map,
    resolve_jobs,
)


class TestResolveJobs:
    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs() == 1

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "3")
        assert resolve_jobs() == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "3")
        assert resolve_jobs(2) == 2

    def test_all_cores(self):
        assert resolve_jobs(-1) >= 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_garbage_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "many")
        assert resolve_jobs() == 1


class TestParallelMap:
    def test_preserves_input_order(self):
        items = list(range(50))
        for jobs in (1, 2, 4):
            assert parallel_map(lambda x: x * x, items, n_jobs=jobs) == [
                x * x for x in items
            ]

    def test_empty(self):
        assert parallel_map(lambda x: x, [], n_jobs=4) == []

    def test_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("item 3")
            return x

        with pytest.raises(RuntimeError, match="item 3"):
            parallel_map(boom, range(8), n_jobs=4)

    def test_serial_runs_in_caller_thread(self):
        seen = []
        parallel_map(lambda _: seen.append(threading.current_thread()), [1, 2])
        assert all(t is threading.main_thread() for t in seen)

    def test_env_knob_applies(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "4")
        threads = set()
        parallel_map(
            lambda _: threads.add(threading.current_thread().name),
            range(32),
        )
        assert len(threads) >= 1  # pool actually engaged (>= 1 worker)


class TestProgressCounter:
    def test_monotone_under_threads(self):
        calls = []
        counter = ProgressCounter(40, lambda d, t: calls.append((d, t)))
        parallel_map(lambda _: counter.advance(), range(40), n_jobs=4)
        assert counter.done == 40
        assert [d for d, _ in calls] == list(range(1, 41))
        assert all(t == 40 for _, t in calls)

    def test_no_callback_ok(self):
        counter = ProgressCounter(3)
        assert counter.advance(2) == 2
        assert counter.advance() == 3
