"""Unit helpers: parsing, formatting, and their round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_time,
    parse_bytes,
)


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("17", 17),
            ("1K", KiB),
            ("64K", 64 * KiB),
            ("64k", 64 * KiB),
            ("64KiB", 64 * KiB),
            ("4MiB", 4 * MiB),
            ("4m", 4 * MiB),
            ("2G", 2 * GiB),
            ("1.5K", 1536),
            (" 8 K ", 8 * KiB),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_bytes(text) == expected

    def test_int_passthrough(self):
        assert parse_bytes(4096) == 4096

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes(-1)

    @pytest.mark.parametrize("text", ["", "abc", "12X", "1.2.3K", "K"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_bytes(text)

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_bytes("1.0001K")


class TestFormatBytes:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (0, "0B"),
            (100, "100B"),
            (KiB, "1KiB"),
            (64 * KiB, "64KiB"),
            (4 * MiB, "4MiB"),
            (GiB, "1GiB"),
            (KiB + 1, "1025B"),  # inexact values stay in bytes
        ],
    )
    def test_known(self, nbytes, expected):
        assert format_bytes(nbytes) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-5)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_round_trip(self, nbytes):
        assert parse_bytes(format_bytes(nbytes)) == nbytes


class TestFormatTime:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (2.0, "2.00s"),
            (0.5, "500.00ms"),
            (123e-6, "123.00us"),
            (5e-9, "5.00ns"),
        ],
    )
    def test_known(self, seconds, expected):
        assert format_time(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_time(-1.0)
