"""End-to-end CLI flows on the tiny testbed (slow-marked)."""

import pytest

from repro.bench import BenchmarkSpec, DatasetRunner, GridSpec
from repro.cli import main
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def saved_dataset(tmp_path_factory):
    runner = DatasetRunner(
        tiny_testbed, get_library("Open MPI"), BenchmarkSpec(max_nreps=5),
        seed=21,
    )
    ds = runner.run(
        "alltoall",
        GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=(64, 4096, 65536, 1 << 20)),
        name="cli-ds",
    )
    stem = tmp_path_factory.mktemp("cli") / "cli-ds"
    ds.save(stem)
    return stem


class TestPredictCommand:
    def test_predict_prints_ranked(self, saved_dataset, capsys):
        code = main(
            [
                "predict", str(saved_dataset),
                "--learner", "KNN",
                "--nodes", "5", "--ppn", "2", "--msize", "64K",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted best configuration" in out
        assert "1." in out and "us" in out

    def test_predict_parses_msize_suffix(self, saved_dataset, capsys):
        assert main(
            [
                "predict", str(saved_dataset),
                "--learner", "KNN",
                "--nodes", "3", "--ppn", "1", "--msize", "1M",
            ]
        ) == 0


class TestGenerateCommand:
    def test_generate_writes_cache(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # d6 is the smallest Table II dataset; CI scale keeps it quick.
        assert main(["generate", "d6", "--scale", "ci", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "samples" in out
        assert (tmp_path / "d6-ci-s3.npz").exists()
        assert (tmp_path / "d6-ci-s3.json").exists()


class TestExperimentCommand:
    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_ext_guidelines_runs(self, capsys):
        assert main(["experiment", "ext-guidelines", "--scale", "ci"]) == 0
        assert "guideline" in capsys.readouterr().out
