"""Intel MPI stand-in: wide menu + self-tuned table default."""

import pytest

from repro.collectives.registry import algorithm_from_config
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed
from repro.mpilib.intelmpi import IntelMPILibrary
from repro.utils.units import KiB


@pytest.fixture(scope="module")
def lib():
    return IntelMPILibrary()


class TestConfigSpaces:
    def test_table2_algorithm_counts(self, lib):
        # Matches Table II: bcast 12, allreduce 16, alltoall 5.
        assert len(lib.config_space("bcast").algids()) == 12
        assert len(lib.config_space("allreduce").algids()) == 16
        assert len(lib.config_space("alltoall").algids()) == 5

    def test_has_topology_aware_variants(self, lib):
        names = {c.name for c in lib.config_space("allreduce").configs}
        assert any(n.startswith("hier_") for n in names)

    def test_all_configs_instantiable(self, lib):
        for kind in ("bcast", "allreduce", "alltoall"):
            for cfg in lib.config_space(kind).configs:
                algorithm_from_config(cfg)


class TestTunedDefault:
    """Uses the tiny testbed so self-tuning stays fast."""

    def test_default_in_space(self, lib):
        topo = Topology(4, 2)
        for m in (1, 4 * KiB, 512 * KiB):
            cfg = lib.default_config(tiny_testbed, topo, "alltoall", m)
            assert cfg in lib.config_space("alltoall").configs

    def test_default_is_best_on_grid_points(self, lib):
        # On an exact tuning grid point the table answer must be the
        # noise-free argmin — that is what "Intel's default is near
        # optimal" (Figure 6) comes from.
        topo = Topology(4, tiny_testbed.max_ppn)
        m = 16 * KiB
        cfg = lib.default_config(tiny_testbed, topo, "alltoall", m)
        space = lib.config_space("alltoall").configs
        times = {
            c: algorithm_from_config(c).base_time(tiny_testbed, topo, m)
            for c in space
        }
        best = min(times, key=times.get)
        assert times[cfg] <= times[best] * 1.001

    def test_table_cached_across_instances(self, lib):
        topo = Topology(4, 2)
        lib.default_config(tiny_testbed, topo, "alltoall", 1)
        key = (tiny_testbed.name, lib.config_space("alltoall").collective)
        assert key in IntelMPILibrary._tables
        # Second lookup hits the cache (same object).
        table = IntelMPILibrary._tables[key]
        lib.default_config(tiny_testbed, topo, "alltoall", 2)
        assert IntelMPILibrary._tables[key] is table

    def test_off_grid_instances_get_nearest(self, lib):
        # Odd node count not on the tuning grid still gets an answer.
        cfg = lib.default_config(tiny_testbed, Topology(7, 3), "alltoall", 100)
        assert cfg in lib.config_space("alltoall").configs
