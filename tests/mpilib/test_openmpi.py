"""Open MPI stand-in: tuning space contents + fixed decision logic."""

import pytest

from repro.collectives.base import CollectiveKind
from repro.collectives.registry import algorithm_from_config
from repro.machine.topology import Topology
from repro.machine.zoo import hydra
from repro.mpilib import get_library
from repro.mpilib.openmpi import OpenMPILibrary
from repro.utils.units import KiB, MiB


@pytest.fixture(scope="module")
def lib():
    return OpenMPILibrary()


class TestConfigSpaces:
    def test_table2_algorithm_counts(self, lib):
        # Matches Table II: bcast 9, allreduce 7, alltoall 5.
        assert lib.config_space("bcast").algids() == list(range(1, 10))
        assert lib.config_space("allreduce").algids() == list(range(1, 8))
        assert lib.config_space("alltoall").algids() == list(range(1, 6))

    def test_chain_parameter_grid(self, lib):
        chains = [
            c for c in lib.config_space("bcast").configs if c.name == "chain"
        ]
        assert len(chains) == 20  # 5 segment sizes x 4 fanouts

    def test_all_configs_instantiable(self, lib):
        for kind in ("bcast", "allreduce", "alltoall"):
            for cfg in lib.config_space(kind).configs:
                algo = algorithm_from_config(cfg)
                assert algo.config == cfg

    def test_supported_collectives(self, lib):
        # The paper's three plus the extension collectives.
        assert set(lib.supported_collectives()) == {
            CollectiveKind.BCAST,
            CollectiveKind.ALLREDUCE,
            CollectiveKind.ALLTOALL,
            CollectiveKind.REDUCE,
            CollectiveKind.ALLGATHER,
        }

    def test_extension_spaces(self, lib):
        assert lib.config_space("reduce").algids() == list(range(1, 8))
        assert lib.config_space("allgather").algids() == list(range(1, 7))

    @pytest.mark.parametrize("kind", ["reduce", "allgather"])
    @pytest.mark.parametrize("shape", [(2, 1), (5, 8), (16, 32)])
    @pytest.mark.parametrize("m", [0, 512, MiB])
    def test_extension_defaults_in_space(self, lib, kind, shape, m):
        topo = Topology(*shape)
        cfg = lib.default_config(hydra, topo, kind, m)
        assert cfg in lib.config_space(kind).configs


class TestDefaults:
    @pytest.mark.parametrize("kind", ["bcast", "allreduce", "alltoall"])
    @pytest.mark.parametrize("shape", [(2, 1), (4, 8), (16, 32), (36, 1)])
    @pytest.mark.parametrize("m", [0, 64, 8 * KiB, MiB, 4 * MiB])
    def test_default_always_in_space(self, lib, kind, shape, m):
        topo = Topology(*shape)
        cfg = lib.default_config(hydra, topo, kind, m)
        assert cfg in lib.config_space(kind).configs

    def test_bcast_small_message_takes_tree(self, lib):
        cfg = lib.default_config(hydra, Topology(16, 16), "bcast", 64)
        assert cfg.name == "binomial"

    def test_bcast_large_message_takes_pipelined_schedule(self, lib):
        # Moderate communicator: full-length pipeline; very large
        # communicator: bounded-depth chain (as in the real decision
        # function).
        cfg = lib.default_config(hydra, Topology(8, 8), "bcast", 4 * MiB)
        assert cfg.name == "pipeline"
        cfg = lib.default_config(hydra, Topology(16, 16), "bcast", 4 * MiB)
        assert cfg.name == "chain"

    def test_bcast_tiny_comm_takes_linear(self, lib):
        cfg = lib.default_config(hydra, Topology(3, 1), "bcast", 4 * MiB)
        assert cfg.name == "linear"

    def test_allreduce_small_takes_recursive_doubling(self, lib):
        cfg = lib.default_config(hydra, Topology(16, 16), "allreduce", 1 * KiB)
        assert cfg.name == "recursive_doubling"

    def test_allreduce_large_takes_ring_family(self, lib):
        cfg = lib.default_config(hydra, Topology(16, 16), "allreduce", 2 * MiB)
        assert cfg.name in ("ring", "segmented_ring")

    def test_alltoall_tiny_large_comm_takes_bruck(self, lib):
        cfg = lib.default_config(hydra, Topology(16, 16), "alltoall", 64)
        assert cfg.name == "bruck"

    def test_default_is_strategy_not_algorithm(self, lib):
        # The paper's §III-A point: the default changes with the instance.
        topo = Topology(16, 16)
        names = {
            lib.default_config(hydra, topo, "bcast", m).name
            for m in (64, 64 * KiB, 4 * MiB)
        }
        assert len(names) > 1


class TestLookup:
    def test_get_library(self):
        assert isinstance(get_library("open mpi"), OpenMPILibrary)
        assert isinstance(get_library("OpenMPI"), OpenMPILibrary)

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_library("MPICH")
