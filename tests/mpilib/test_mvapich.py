"""MVAPICH stand-in: size-class selection + the class-tuning knob."""

import pytest

from repro.collectives.base import AlgorithmConfig
from repro.collectives.registry import algorithm_from_config
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library
from repro.mpilib.mvapich import (
    MEDIUM_LIMIT,
    SMALL_LIMIT,
    MVAPICHLibrary,
    SizeClass,
    size_class,
)
from repro.utils.units import KiB, MiB


@pytest.fixture
def lib():
    return MVAPICHLibrary()


class TestSizeClass:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (0, SizeClass.SMALL),
            (SMALL_LIMIT - 1, SizeClass.SMALL),
            (SMALL_LIMIT, SizeClass.MEDIUM),
            (MEDIUM_LIMIT - 1, SizeClass.MEDIUM),
            (MEDIUM_LIMIT, SizeClass.LARGE),
            (4 * MiB, SizeClass.LARGE),
        ],
    )
    def test_boundaries(self, nbytes, expected):
        assert size_class(nbytes) is expected


class TestSpacesAndDefaults:
    def test_registered(self):
        assert isinstance(get_library("mvapich"), MVAPICHLibrary)

    def test_all_configs_instantiable(self, lib):
        for kind in ("bcast", "allreduce", "alltoall"):
            for cfg in lib.config_space(kind).configs:
                algorithm_from_config(cfg)

    def test_default_constant_within_class(self, lib):
        topo = Topology(4, 2)
        small = {
            lib.default_config(tiny_testbed, topo, "bcast", m)
            for m in (1, 100, 4 * KiB)
        }
        assert len(small) == 1  # one algorithm serves the whole class

    def test_default_differs_across_classes(self, lib):
        topo = Topology(4, 2)
        configs = {
            size_class(m): lib.default_config(tiny_testbed, topo, "bcast", m)
            for m in (64, 64 * KiB, 4 * MiB)
        }
        assert len(set(configs.values())) == 3

    def test_default_in_space(self, lib):
        topo = Topology(4, 2)
        for kind in ("bcast", "allreduce", "alltoall"):
            for m in (64, 64 * KiB, 4 * MiB):
                cfg = lib.default_config(tiny_testbed, topo, kind, m)
                assert cfg in lib.config_space(kind).configs


class TestClassKnob:
    def test_override_changes_default(self, lib):
        topo = Topology(4, 2)
        target = lib.config_space("bcast").configs[5]  # pipeline 64K
        lib.set_class_algorithm("bcast", SizeClass.SMALL, target)
        assert lib.default_config(tiny_testbed, topo, "bcast", 64) == target

    def test_override_rejects_foreign_config(self, lib):
        foreign = AlgorithmConfig.make("bcast", 99, "chain", segsize=1, chains=2)
        with pytest.raises(KeyError, match="menu"):
            lib.set_class_algorithm("bcast", SizeClass.SMALL, foreign)

    def test_class_algorithm_accessor(self, lib):
        cfg = lib.class_algorithm("allreduce", SizeClass.MEDIUM)
        assert cfg.name == "rabenseifner"

    def test_instances_do_not_share_tables(self):
        a, b = MVAPICHLibrary(), MVAPICHLibrary()
        a.set_class_algorithm(
            "bcast", SizeClass.SMALL, a.config_space("bcast").configs[3]
        )
        assert b.class_algorithm("bcast", SizeClass.SMALL).name == "binomial"


class TestClassTuner:
    @pytest.fixture(scope="class")
    def tuned(self):
        from repro.bench import BenchmarkSpec, DatasetRunner, GridSpec
        from repro.core import AlgorithmSelector
        from repro.core.class_tuner import apply_class_tuning
        from repro.ml import KNNRegressor

        lib = MVAPICHLibrary()
        runner = DatasetRunner(
            tiny_testbed, lib, BenchmarkSpec(max_nreps=8), seed=2
        )
        ds = runner.run(
            "allreduce",
            GridSpec(
                nodes=(2, 4, 8), ppns=(1, 2, 4),
                msizes=(16, KiB, 16 * KiB, 256 * KiB, MiB, 4 * MiB),
            ),
            name="mv",
        )
        selector = AlgorithmSelector(lambda: KNNRegressor()).fit(ds)
        choices = apply_class_tuning(lib, "allreduce", selector, 5, 3)
        return lib, selector, choices, ds

    def test_choice_per_class(self, tuned):
        _, _, choices, _ = tuned
        assert set(choices) == set(SizeClass)

    def test_choices_installed(self, tuned):
        lib, _, choices, _ = tuned
        for cls, cfg in choices.items():
            assert lib.class_algorithm("allreduce", cls) == cfg

    def test_small_class_prefers_latency_algorithm(self, tuned):
        _, _, choices, _ = tuned
        # A log-depth scheme must serve the small class (not ring).
        assert "ring" not in choices[SizeClass.SMALL].name

    def test_tuner_matches_per_probe_argmin_majority(self, tuned):
        _, selector, choices, _ = tuned
        from repro.core.class_tuner import CLASS_PROBES

        for cls, cfg in choices.items():
            # The class winner must be at worst second-best on each probe.
            for m in CLASS_PROBES[cls]:
                ranked = [c for c, _ in selector.ranked(5, 3, m)]
                assert cfg in ranked[:4]
