"""Machine zoo sanity (the Table I stand-ins)."""

import pytest

from repro.machine.zoo import (
    MACHINES,
    get_machine,
    hydra,
    jupiter,
    supermuc_ng,
)


class TestZooContents:
    def test_table1_machines_present(self):
        assert {"Hydra", "Jupiter", "SuperMUC-NG"} <= set(MACHINES)

    def test_table1_shapes(self):
        # Matches the paper's Table I.
        assert (hydra.max_nodes, hydra.max_ppn) == (36, 32)
        assert (jupiter.max_nodes, jupiter.max_ppn) == (35, 16)
        assert (supermuc_ng.max_nodes, supermuc_ng.max_ppn) == (6336, 48)

    def test_hydra_has_roughly_twice_jupiters_bandwidth(self):
        # "Hydra has about twice as much bandwidth as Jupiter" (§IV-A);
        # with the dual rail it is more than twice on the NIC side.
        assert hydra.link_bandwidth() > 2.5 * jupiter.link_bandwidth()
        assert hydra.injection_bandwidth() > 2 * jupiter.injection_bandwidth()

    def test_jupiter_has_highest_latency(self):
        assert jupiter.alpha_inter > hydra.alpha_inter
        assert jupiter.alpha_inter > supermuc_ng.alpha_inter

    def test_supermuc_strongest_nic_contention_per_core(self):
        # Injection bandwidth per core is the NIC-contention indicator.
        per_core = {
            m.name: m.injection_bandwidth() / m.max_ppn
            for m in (hydra, jupiter, supermuc_ng)
        }
        assert per_core["SuperMUC-NG"] < per_core["Hydra"]


class TestLookup:
    def test_case_insensitive(self):
        assert get_machine("hydra") is hydra
        assert get_machine("HYDRA") is hydra
        assert get_machine("supermuc-ng") is supermuc_ng

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            get_machine("frontier")
