"""Machine model parameters, cost primitives, and noise."""

import dataclasses

import numpy as np
import pytest

from repro.machine.model import MachineModel, NoiseModel
from repro.machine.zoo import tiny_testbed


class TestNoiseModel:
    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-0.1)

    def test_invalid_spike_prob(self):
        with pytest.raises(ValueError):
            NoiseModel(spike_prob=1.5)

    def test_zero_noise_is_identity_plus_floor(self):
        noise = NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0)
        values = noise.sample(np.full(100, 1e-3), np.random.default_rng(0))
        np.testing.assert_allclose(values, 1e-3)

    def test_noise_is_multiplicative(self):
        noise = NoiseModel(sigma=0.1, spike_prob=0.0, floor=0.0)
        small = noise.sample(np.full(4000, 1e-6), np.random.default_rng(1))
        large = noise.sample(np.full(4000, 1e-3), np.random.default_rng(1))
        # Same seed -> same factors -> exact 1000x relationship.
        np.testing.assert_allclose(large, small * 1e3, rtol=1e-12)

    def test_spikes_only_increase(self):
        base = 1e-4
        quiet = NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0)
        spiky = NoiseModel(sigma=0.0, spike_prob=1.0, spike_scale=2.0, floor=0.0)
        q = quiet.sample(np.full(100, base), np.random.default_rng(2))
        s = spiky.sample(np.full(100, base), np.random.default_rng(2))
        assert (s >= q - 1e-18).all()

    def test_seed_determinism(self):
        noise = NoiseModel()
        a = noise.sample(np.full(10, 1e-5), np.random.default_rng(3))
        b = noise.sample(np.full(10, 1e-5), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_scalar_base_broadcasts(self):
        out = NoiseModel().sample(1e-6, np.random.default_rng(0))
        assert out.shape == ()


class TestMachineModel:
    def test_negative_parameter_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(tiny_testbed, alpha_inter=-1e-6)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(tiny_testbed, max_nodes=0)

    def test_ptp_time_intra_vs_inter(self):
        m = tiny_testbed
        assert m.ptp_time(0, intra=True) == m.alpha_intra
        assert m.ptp_time(0, intra=False) == m.alpha_inter
        # Large transfers are bandwidth-dominated.
        assert m.ptp_time(10**7, intra=False) > m.ptp_time(10**7, intra=True) * 0.1

    def test_ptp_time_monotone_in_size(self):
        m = tiny_testbed
        sizes = np.array([0, 1, 1024, 10**6])
        times = np.asarray(m.ptp_time(sizes, intra=False))
        assert (np.diff(times) > 0).all()

    def test_reduce_time_linear(self):
        m = tiny_testbed
        assert m.reduce_time(2000) == pytest.approx(2 * m.reduce_time(1000))

    def test_bandwidth_accessors(self):
        m = tiny_testbed
        assert m.link_bandwidth() == pytest.approx(1.0 / m.beta_inter)
        assert m.injection_bandwidth() == pytest.approx(1.0 / m.nic_gap)

    def test_validate_shape(self):
        tiny_testbed.validate_shape(8, 4)
        with pytest.raises(ValueError):
            tiny_testbed.validate_shape(9, 4)
        with pytest.raises(ValueError):
            tiny_testbed.validate_shape(8, 5)
        with pytest.raises(ValueError):
            tiny_testbed.validate_shape(0, 1)

    def test_with_noise_returns_copy(self):
        quiet = tiny_testbed.with_noise(NoiseModel(sigma=0.0))
        assert quiet is not tiny_testbed
        assert quiet.noise.sigma == 0.0
        assert tiny_testbed.noise.sigma != 0.0 or True  # original untouched
        assert quiet.alpha_inter == tiny_testbed.alpha_inter
