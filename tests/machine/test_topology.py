"""Topology placement invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.topology import Topology

topo_st = st.builds(
    Topology,
    num_nodes=st.integers(min_value=1, max_value=32),
    ppn=st.integers(min_value=1, max_value=16),
)


class TestConstruction:
    @pytest.mark.parametrize("n,ppn", [(0, 1), (1, 0), (-2, 4)])
    def test_invalid_shapes(self, n, ppn):
        with pytest.raises(ValueError):
            Topology(n, ppn)

    def test_size(self):
        assert Topology(4, 8).size == 32


class TestPlacement:
    def test_block_placement(self):
        topo = Topology(3, 4)
        assert [topo.node_of(r) for r in range(12)] == [
            0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2
        ]

    def test_local_rank(self):
        topo = Topology(2, 3)
        assert [topo.local_rank(r) for r in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_node_leader(self):
        topo = Topology(3, 4)
        assert [topo.node_leader(n) for n in range(3)] == [0, 4, 8]

    def test_ranks_of_node(self):
        topo = Topology(2, 3)
        assert list(topo.ranks_of_node(1)) == [3, 4, 5]

    def test_same_node(self):
        topo = Topology(2, 2)
        assert topo.same_node(0, 1)
        assert not topo.same_node(1, 2)

    def test_out_of_range_rank(self):
        with pytest.raises(ValueError):
            Topology(2, 2).node_of(4)

    def test_out_of_range_node(self):
        with pytest.raises(ValueError):
            Topology(2, 2).node_leader(2)

    @given(topo_st)
    def test_node_map_consistent(self, topo):
        node_map = topo.node_map
        assert len(node_map) == topo.size
        for r in range(0, topo.size, max(1, topo.size // 7)):
            assert node_map[r] == topo.node_of(r)

    @given(topo_st)
    def test_leaders_are_local_rank_zero(self, topo):
        for leader in topo.leaders():
            assert topo.local_rank(int(leader)) == 0

    @given(topo_st, st.data())
    def test_rank_decomposition(self, topo, data):
        rank = data.draw(st.integers(min_value=0, max_value=topo.size - 1))
        assert topo.node_of(rank) * topo.ppn + topo.local_rank(rank) == rank
