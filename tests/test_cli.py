"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_machines(self):
        args = build_parser().parse_args(["machines"])
        assert args.command == "machines"

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "d1"])
        assert args.scale == "ci" and args.seed == 0

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "d99"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig4", "--scale", "ci"])
        assert args.name == "fig4"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_machines_output(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Hydra" in out and "SuperMUC-NG" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3", "--scale", "ci"]) == 0
        assert "Table III" in capsys.readouterr().out

    @pytest.mark.slow
    def test_tune_writes_rules(self, tmp_path, capsys, monkeypatch):
        out = tmp_path / "rules.json"
        code = main(
            [
                "tune", "--machine", "TinyTestbed", "--library", "Open MPI",
                "--collective", "alltoall", "--learner", "KNN",
                "--nodes", "4", "--ppn", "2",
                "--format", "json", "-o", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["nodes"] == 4
        assert payload["rules"]
