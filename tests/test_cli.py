"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_machines(self):
        args = build_parser().parse_args(["machines"])
        assert args.command == "machines"

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "d1"])
        assert args.scale == "ci" and args.seed == 0

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "d99"])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig4", "--scale", "ci"])
        assert args.name == "fig4"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_machines_output(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Hydra" in out and "SuperMUC-NG" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3", "--scale", "ci"]) == 0
        assert "Table III" in capsys.readouterr().out

    @pytest.mark.slow
    def test_tune_writes_rules(self, tmp_path, capsys, monkeypatch):
        out = tmp_path / "rules.json"
        code = main(
            [
                "tune", "--machine", "TinyTestbed", "--library", "Open MPI",
                "--collective", "alltoall", "--learner", "KNN",
                "--nodes", "4", "--ppn", "2",
                "--format", "json", "-o", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["nodes"] == 4
        assert payload["rules"]


class TestTelemetryFlags:
    """PR 2 surface: --telemetry/--resume flags and the report command."""

    def test_generate_flags_default_off(self):
        args = build_parser().parse_args(["generate", "d1"])
        assert args.resume is False and args.telemetry is None

    def test_generate_flags_parse(self):
        args = build_parser().parse_args(
            ["generate", "d1", "--resume", "--telemetry", "run.jsonl"]
        )
        assert args.resume is True and args.telemetry == "run.jsonl"

    def test_tune_flags_parse(self):
        args = build_parser().parse_args(
            ["tune", "--nodes", "4", "--ppn", "2",
             "--resume", "--telemetry", "-"]
        )
        assert args.resume is True and args.telemetry == "-"

    def test_report_requires_telemetry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_report_parse(self):
        args = build_parser().parse_args(
            ["report", "--telemetry", "run.jsonl", "--top", "3"]
        )
        assert args.telemetry == "run.jsonl" and args.top == 3


class TestTelemetryCommands:
    def test_generate_writes_jsonl_and_report_reads_it(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        log = tmp_path / "run.jsonl"
        assert main(
            ["generate", "d6", "--scale", "ci",
             "--telemetry", str(log)]
        ) == 0
        out = capsys.readouterr().out
        assert "telemetry written to" in out
        assert log.exists() and log.read_text().strip()

        assert main(["report", "--telemetry", str(log), "--top", "5"]) == 0
        report = capsys.readouterr().out
        assert "campaign/" in report
        assert "campaign.samples" in report

    def test_generate_resume_flag_accepted_fresh(
        self, tmp_path, capsys, monkeypatch
    ):
        # --resume on a campaign with no journal is a silent no-op
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["generate", "d6", "--scale", "ci", "--resume"]) == 0
        assert "samples" in capsys.readouterr().out
