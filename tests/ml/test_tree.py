"""CART / gradient trees."""

import numpy as np
import pytest

from repro.ml.tree import GradTree, RegressionTree, TreeParams


def step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 2))
    y = np.where(X[:, 0] > 0.5, 10.0, -10.0)
    return X, y


class TestRegressionTree:
    def test_constant_target(self):
        X = np.arange(20, dtype=float)[:, None]
        tree = RegressionTree().fit(X, np.full(20, 3.5))
        np.testing.assert_allclose(tree.predict(X), 3.5)

    def test_recovers_step_function(self):
        X, y = step_data()
        tree = RegressionTree(max_depth=3).fit(X, y)
        np.testing.assert_allclose(tree.predict(X), y)

    def test_depth_limit_respected(self):
        X, y = step_data(400)
        y = y + np.random.default_rng(1).normal(0, 5, size=len(y))
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree._tree.depth() <= 2

    def test_min_samples_leaf(self):
        X, y = step_data(100)
        tree = RegressionTree(max_depth=10, min_samples_leaf=20).fit(X, y)
        # Each leaf averages >= 20 samples -> at most 5 leaves.
        assert tree._tree.num_leaves() <= 5

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.ones((2, 2)))

    def test_interpolates_between_train_points(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 8.0, 8.0])
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree.predict(np.array([[1.4]]))[0] in (0.0, 8.0)

    def test_deterministic_without_subsampling(self):
        X, y = step_data(300, seed=5)
        p1 = RegressionTree(max_depth=6).fit(X, y).predict(X)
        p2 = RegressionTree(max_depth=6).fit(X, y).predict(X)
        np.testing.assert_array_equal(p1, p2)


class TestGradTree:
    def test_leaf_value_is_shrunken_mean(self):
        # grad = -y, hess = 1, lambda = 2: leaf = sum(y) / (n + 2).
        X = np.zeros((4, 1))
        y = np.array([1.0, 2.0, 3.0, 4.0])
        tree = GradTree(TreeParams(max_depth=3, reg_lambda=2.0))
        tree.fit(X, -y, np.ones(4))
        np.testing.assert_allclose(tree.predict(X), y.sum() / 6.0)

    def test_min_child_weight_blocks_splits(self):
        X, y = step_data(50)
        params = TreeParams(max_depth=5, min_child_weight=1e9)
        tree = GradTree(params).fit(X, -y, np.ones(len(y)))
        assert tree.num_leaves() == 1

    def test_gamma_blocks_weak_splits(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(100, 1))
        y = rng.normal(0, 0.01, size=100)  # essentially no signal
        strict = GradTree(TreeParams(gamma=1e6, reg_lambda=0.0))
        strict.fit(X, -y, np.ones(100))
        assert strict.num_leaves() == 1

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            GradTree(TreeParams()).fit(
                np.empty((0, 2)), np.empty(0), np.empty(0)
            )

    def test_max_features_subsampling_uses_rng(self):
        X, y = step_data(200, seed=2)
        params = TreeParams(max_depth=4, max_features=1)
        t1 = GradTree(params, rng=1).fit(X, -y, np.ones(len(y)))
        t2 = GradTree(params, rng=1).fit(X, -y, np.ones(len(y)))
        np.testing.assert_array_equal(t1.predict(X), t2.predict(X))
