"""Flat-array kernel parity: compiled descent == recursive oracle.

Every production predict path runs through the flat kernels (native C
when the toolchain allows, numpy level-wise descent otherwise). These
tests pin the contract that makes that safe: all variants are
**bit-identical** to the pointer-chasing recursive reference, for every
learner family that compiles trees.
"""

import numpy as np
import pytest

from repro.ml import _ckernel
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.kernels import FlatEnsemble, FlatTree
from repro.ml.tree import GradTree, RegressionTree, TreeParams


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    X = rng.random((400, 5))
    y = np.exp(rng.normal(size=400)) * 1e-4  # positive, skewed runtimes
    Xq = rng.random((900, 5))
    # Include training rows: exact-threshold comparisons must agree too.
    Xq[:100] = X[:100]
    return X, y, Xq


def _no_ckernel(monkeypatch):
    monkeypatch.setattr(_ckernel, "available", lambda: False)


# ----------------------------------------------------------------------
class TestFlatLayout:
    def test_adjacent_children_and_leaf_self_loops(self, data):
        X, y, _ = data
        tree = GradTree(TreeParams(max_depth=5))
        tree.fit(X, grad=-y, hess=np.ones(len(y)))
        flat = tree.flat
        internal = flat.feature >= 0
        assert np.array_equal(
            flat.right[internal], flat.left[internal] + 1
        ), "children must be allocated adjacently"
        leaves = ~internal
        ids = np.arange(flat.num_nodes)
        assert np.array_equal(flat.left[leaves], ids[leaves])
        assert np.array_equal(flat.right[leaves], ids[leaves])
        assert flat.depth == tree.depth()

    def test_step_arrays(self, data):
        X, y, _ = data
        tree = GradTree(TreeParams(max_depth=4))
        tree.fit(X, grad=-y, hess=np.ones(len(y)))
        flat = tree.flat
        leaves = flat.feature < 0
        assert np.isposinf(flat.step_threshold[leaves]).all()
        assert (flat.gather_feature >= 0).all()

    def test_packed_nodes_mirror_struct(self, data):
        X, y, _ = data
        tree = GradTree(TreeParams(max_depth=4))
        tree.fit(X, grad=-y, hess=np.ones(len(y)))
        nodes = tree.flat.packed_nodes
        assert nodes.dtype.itemsize == 16
        assert np.array_equal(nodes["th"], tree.flat.step_threshold)
        assert np.array_equal(nodes["base"], tree.flat.child_base)
        assert np.array_equal(nodes["feat"], tree.flat.gather_feature)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            FlatEnsemble.from_roots([])


# ----------------------------------------------------------------------
class TestSingleTreeParity:
    def test_grad_tree(self, data):
        X, y, Xq = data
        tree = GradTree(TreeParams(max_depth=6))
        tree.fit(X, grad=-y, hess=np.ones(len(y)))
        assert np.array_equal(tree.predict(Xq), tree.predict_recursive(Xq))

    def test_regression_tree(self, data):
        X, y, Xq = data
        model = RegressionTree(max_depth=7, min_samples_leaf=2).fit(X, y)
        assert np.array_equal(model.predict(Xq), model.predict_recursive(Xq))

    def test_numpy_fallback(self, data, monkeypatch):
        X, y, Xq = data
        tree = GradTree(TreeParams(max_depth=6))
        tree.fit(X, grad=-y, hess=np.ones(len(y)))
        fast = tree.predict(Xq)
        _no_ckernel(monkeypatch)
        assert np.array_equal(FlatTree.from_node(tree._root).predict(Xq), fast)

    def test_stump(self, data):
        # depth-0 tree: descent must still return the single leaf value
        X, y, Xq = data
        tree = GradTree(TreeParams(max_depth=0))
        tree.fit(X, grad=-y, hess=np.ones(len(y)))
        assert np.array_equal(tree.predict(Xq), tree.predict_recursive(Xq))


class TestBoosterParity:
    @pytest.mark.parametrize("objective", ["tweedie", "gamma", "squared"])
    def test_bit_identical(self, data, objective):
        X, y, Xq = data
        model = GradientBoostingRegressor(
            n_rounds=30, max_depth=4, objective=objective, rng=3
        ).fit(X, y)
        assert np.array_equal(model.predict(Xq), model.predict_recursive(Xq))

    def test_numpy_fallback_bit_identical(self, data, monkeypatch):
        X, y, Xq = data
        model = GradientBoostingRegressor(n_rounds=25, rng=3).fit(X, y)
        fast = model.predict(Xq)
        _no_ckernel(monkeypatch)
        model._flat = None  # force a fresh ensemble on the numpy path
        assert np.array_equal(model.predict(Xq), fast)
        assert np.array_equal(model.predict(Xq), model.predict_recursive(Xq))

    def test_odd_round_count(self, data):
        # exercises the < 8 remainder loop of the interleaved kernel
        X, y, Xq = data
        model = GradientBoostingRegressor(n_rounds=11, rng=5).fit(X, y)
        assert np.array_equal(model.predict(Xq), model.predict_recursive(Xq))


class TestForestParity:
    def test_bit_identical(self, data):
        X, y, Xq = data
        model = RandomForestRegressor(n_trees=17, max_depth=6, rng=1).fit(X, y)
        assert np.array_equal(model.predict(Xq), model.predict_recursive(Xq))

    def test_numpy_fallback_bit_identical(self, data, monkeypatch):
        X, y, Xq = data
        model = RandomForestRegressor(n_trees=9, max_depth=5, rng=2).fit(X, y)
        fast = model.predict(Xq)
        _no_ckernel(monkeypatch)
        model._flat = None
        assert np.array_equal(model.predict(Xq), fast)

    def test_leaf_matrix_matches_per_tree_oracle(self, data):
        X, y, Xq = data
        model = RandomForestRegressor(n_trees=10, max_depth=5, rng=4).fit(X, y)
        matrix = model.flat.predict_all(Xq)
        for t, tree in enumerate(model._trees):
            assert np.array_equal(matrix[:, t], tree.predict_recursive(Xq))
