"""StandardScaler."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.scaling import StandardScaler

matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 40), st.integers(1, 5)),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(500, 3))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, rtol=1e-12)

    def test_constant_feature_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.ones(5))

    @given(matrices)
    def test_round_trip(self, X):
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(back, X, rtol=1e-6, atol=1e-6)

    def test_transform_uses_training_stats(self):
        scaler = StandardScaler().fit(np.zeros((5, 1)) + 10.0)
        out = scaler.transform(np.array([[10.0], [11.0]]))
        np.testing.assert_allclose(out, [[0.0], [1.0]])
