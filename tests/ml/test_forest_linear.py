"""Random forest and ridge baselines."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import r2_score, rmse


def noisy_smooth(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 3))
    y = np.sin(X[:, 0]) + X[:, 1] ** 2 + rng.normal(0, 0.2, n)
    return X, y


class TestRandomForest:
    def test_fits_nonlinear_signal(self):
        X, y = noisy_smooth()
        model = RandomForestRegressor(n_trees=40, rng=0).fit(X[:200], y[:200])
        assert r2_score(y[200:], model.predict(X[200:])) > 0.7

    def test_deterministic_per_seed(self):
        X, y = noisy_smooth(100)
        a = RandomForestRegressor(n_trees=10, rng=5).fit(X, y).predict(X)
        b = RandomForestRegressor(n_trees=10, rng=5).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_seed_matters(self):
        X, y = noisy_smooth(100)
        a = RandomForestRegressor(n_trees=10, rng=1).fit(X, y).predict(X)
        b = RandomForestRegressor(n_trees=10, rng=2).fit(X, y).predict(X)
        assert not np.array_equal(a, b)

    def test_averaging_smooths_single_tree(self):
        X, y = noisy_smooth(400, seed=3)
        train, test = np.arange(300), np.arange(300, 400)
        forest = RandomForestRegressor(n_trees=60, rng=0).fit(X[train], y[train])
        lone = RandomForestRegressor(n_trees=1, rng=0).fit(X[train], y[train])
        assert rmse(y[test], forest.predict(X[test])) < rmse(
            y[test], lone.predict(X[test])
        )

    def test_bad_params(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)
        with pytest.raises(ValueError):
            RandomForestRegressor(max_features="log2").fit(
                np.ones((4, 2)), np.ones(4)
            )

    def test_int_max_features(self):
        X, y = noisy_smooth(80)
        RandomForestRegressor(n_trees=3, max_features=2, rng=0).fit(X, y)


class TestRidge:
    def test_exact_linear_recovery(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        beta = np.array([2.0, -1.0, 0.5])
        y = X @ beta + 4.0
        model = RidgeRegressor(alpha=1e-10).fit(X, y)
        np.testing.assert_allclose(model.coef_, beta, rtol=1e-6)
        assert model.intercept_ == pytest.approx(4.0, rel=1e-6)

    def test_log_target_multiplicative(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 3, size=(200, 2))
        y = np.exp(1.5 * X[:, 0] - 0.5 * X[:, 1] + 0.2)
        model = RidgeRegressor(alpha=1e-10, log_target=True).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, rtol=1e-6)

    def test_log_target_requires_positive(self):
        with pytest.raises(ValueError):
            RidgeRegressor(log_target=True).fit(
                np.ones((3, 1)), np.array([1.0, -1.0, 2.0])
            )

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegressor(alpha=-1.0)

    def test_regularisation_shrinks(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 2))
        y = X @ np.array([5.0, 5.0])
        loose = RidgeRegressor(alpha=1e-10).fit(X, y)
        tight = RidgeRegressor(alpha=1e4).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)
