"""KNN regressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.knn import KNNRegressor


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            KNNRegressor(weights="gaussian")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KNNRegressor().predict(np.ones((1, 2)))


class TestPrediction:
    def test_k1_exact_recall(self):
        X = np.arange(10, dtype=float)[:, None]
        y = X.ravel() ** 2
        model = KNNRegressor(k=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_k_larger_than_dataset(self):
        X = np.arange(3, dtype=float)[:, None]
        y = np.array([1.0, 2.0, 3.0])
        model = KNNRegressor(k=10).fit(X, y)
        np.testing.assert_allclose(model.predict([[1.0]]), y.mean())

    def test_mean_of_neighbours(self):
        X = np.array([[0.0], [1.0], [10.0]])
        y = np.array([2.0, 4.0, 100.0])
        model = KNNRegressor(k=2, scale_inputs=False).fit(X, y)
        np.testing.assert_allclose(model.predict([[0.4]]), [3.0])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(0.1, 100, allow_nan=False), min_size=5, max_size=30
        ),
        st.integers(1, 5),
    )
    def test_predictions_within_target_range(self, targets, k):
        X = np.arange(len(targets), dtype=float)[:, None]
        y = np.asarray(targets)
        model = KNNRegressor(k=k).fit(X, y)
        pred = model.predict(X)
        assert (pred >= y.min() - 1e-9).all()
        assert (pred <= y.max() + 1e-9).all()

    def test_scaling_matters(self):
        # Feature 0 spans [0, 1e6], feature 1 spans [0, 1]; only the
        # scaled model lets feature 1 influence the neighbourhood.
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.uniform(0, 1e6, 200), rng.uniform(0, 1, 200)])
        y = X[:, 1]
        scaled = KNNRegressor(k=3, scale_inputs=True).fit(X, y)
        raw = KNNRegressor(k=3, scale_inputs=False).fit(X, y)
        query = np.array([[5e5, 0.9]])
        assert abs(scaled.predict(query)[0] - 0.9) < abs(
            raw.predict(query)[0] - 0.9
        ) + 1e-9

    def test_distance_weights_prefer_closer(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        uniform = KNNRegressor(k=2, weights="uniform", scale_inputs=False)
        distance = KNNRegressor(k=2, weights="distance", scale_inputs=False)
        q = np.array([[0.1]])
        assert distance.fit(X, y).predict(q)[0] < uniform.fit(X, y).predict(q)[0]

    def test_distance_weights_exact_hit(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([5.0, 7.0, 9.0])
        model = KNNRegressor(k=3, weights="distance", scale_inputs=False)
        np.testing.assert_allclose(model.fit(X, y).predict([[1.0]]), [7.0])
