"""Gradient boosting (the XGBoost stand-in)."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.metrics import mape, rmse


def runtime_like_data(n=400, seed=0):
    """Positive, skewed targets resembling collective runtimes."""
    rng = np.random.default_rng(seed)
    X = np.column_stack(
        [rng.uniform(0, 22, n), rng.integers(2, 33, n).astype(float)]
    )
    y = 1e-6 * (1.0 + X[:, 1]) * np.exp(0.5 * np.maximum(X[:, 0] - 10, 0))
    return X, y * rng.lognormal(0, 0.02, n)


class TestValidation:
    def test_bad_objective(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(objective="poisson")

    def test_bad_variance_power(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(tweedie_variance_power=2.5)

    def test_bad_subsample(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)

    def test_nonpositive_targets_rejected_for_tweedie(self):
        X = np.ones((10, 1))
        y = np.zeros(10)
        with pytest.raises(ValueError, match="positive"):
            GradientBoostingRegressor().fit(X, y)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.ones((2, 1)))


class TestLearning:
    @pytest.mark.parametrize("objective", ["tweedie", "gamma", "squared"])
    def test_train_loss_decreases(self, objective):
        X, y = runtime_like_data()
        model = GradientBoostingRegressor(n_rounds=40, objective=objective)
        model.fit(X, y)
        losses = model.train_losses_
        assert losses[-1] < losses[0]
        # Mostly monotone: allow tiny numerical wiggles.
        worsening = sum(b > a + 1e-12 for a, b in zip(losses, losses[1:], strict=False))
        assert worsening < len(losses) / 4

    def test_beats_mean_baseline(self):
        X, y = runtime_like_data()
        train, test = np.arange(300), np.arange(300, 400)
        model = GradientBoostingRegressor(n_rounds=100).fit(X[train], y[train])
        pred = model.predict(X[test])
        baseline = np.full(100, y[train].mean())
        assert rmse(y[test], pred) < 0.3 * rmse(y[test], baseline)

    def test_positive_predictions_for_log_link(self):
        X, y = runtime_like_data()
        model = GradientBoostingRegressor(n_rounds=30).fit(X, y)
        assert (model.predict(X) > 0).all()

    def test_target_scale_invariance(self):
        # Fitting microseconds or seconds must give proportional
        # predictions (the normalisation regression guard).
        X, y = runtime_like_data()
        a = GradientBoostingRegressor(n_rounds=30).fit(X, y).predict(X)
        b = GradientBoostingRegressor(n_rounds=30).fit(X, y * 1e6).predict(X)
        np.testing.assert_allclose(b, a * 1e6, rtol=1e-9)

    def test_accuracy_reasonable(self):
        X, y = runtime_like_data()
        train, test = np.arange(300), np.arange(300, 400)
        model = GradientBoostingRegressor().fit(X[train], y[train])
        assert mape(y[test], model.predict(X[test])) < 0.5

    def test_n_trees_property(self):
        X, y = runtime_like_data(100)
        model = GradientBoostingRegressor(n_rounds=7).fit(X, y)
        assert model.n_trees_ == 7

    def test_subsample_deterministic_per_seed(self):
        X, y = runtime_like_data(200)
        a = GradientBoostingRegressor(n_rounds=10, subsample=0.7, rng=3)
        b = GradientBoostingRegressor(n_rounds=10, subsample=0.7, rng=3)
        np.testing.assert_array_equal(a.fit(X, y).predict(X), b.fit(X, y).predict(X))

    def test_squared_objective_identity_scale(self):
        X, y = runtime_like_data(200)
        model = GradientBoostingRegressor(n_rounds=50, objective="squared")
        pred = model.fit(X, y).predict(X)
        assert rmse(y, pred) < rmse(y, np.full_like(y, y.mean()))
