"""Regression metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import mae, mape, r2_score, rmse

vectors = st.lists(
    st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=50,
)


class TestKnownValues:
    def test_mae(self):
        assert mae([1, 2, 3], [2, 2, 2]) == pytest.approx(2 / 3)

    def test_rmse(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_mape(self):
        assert mape([10, 100], [11, 90]) == pytest.approx(0.1)

    def test_r2_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r2_mean_predictor(self):
        assert r2_score([1, 2, 3], [2, 2, 2]) == pytest.approx(0.0)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae([1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            rmse([], [])

    def test_mape_nonpositive_truth(self):
        with pytest.raises(ValueError):
            mape([0, 1], [1, 1])


class TestProperties:
    @given(vectors, st.data())
    def test_rmse_at_least_mae(self, y_true, data):
        y_pred = data.draw(
            st.lists(
                st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
                min_size=len(y_true),
                max_size=len(y_true),
            )
        )
        # Jensen: quadratic mean >= arithmetic mean of |errors|.
        assert rmse(y_true, y_pred) >= mae(y_true, y_pred) - 1e-9

    @given(vectors)
    def test_zero_error_metrics(self, y):
        assert mae(y, y) == 0.0
        assert rmse(y, y) == 0.0

    @given(vectors, st.floats(0.1, 10.0))
    def test_mae_scale_equivariant(self, y, c):
        y = np.asarray(y)
        shifted = y + 1.0
        assert mae(c * y, c * shifted) == pytest.approx(
            c * mae(y, shifted), rel=1e-9
        )
