"""Cross-validation helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import rmse
from repro.ml.validation import KFold, cross_val_score, train_test_split


class TestKFold:
    def test_bad_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    @given(
        st.integers(min_value=5, max_value=200),
        st.integers(min_value=2, max_value=5),
    )
    def test_partition_properties(self, n, k):
        folds = list(KFold(k, rng=0).split(n))
        assert len(folds) == k
        all_test = np.concatenate([test for _, test in folds])
        # Test folds partition the sample set.
        assert sorted(all_test.tolist()) == list(range(n))
        for train, test in folds:
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == n

    def test_shuffle_reproducible(self):
        a = [t.tolist() for _, t in KFold(3, rng=1).split(20)]
        b = [t.tolist() for _, t in KFold(3, rng=1).split(20)]
        assert a == b

    def test_no_shuffle_contiguous(self):
        folds = list(KFold(2, shuffle=False).split(4))
        assert folds[0][1].tolist() == [0, 1]


class TestTrainTestSplit:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=0.0)

    def test_disjoint_cover(self):
        train, test = train_test_split(50, 0.3, rng=0)
        assert sorted(np.concatenate([train, test]).tolist()) == list(range(50))
        assert len(test) == 15


class TestCrossValScore:
    def test_scores_per_fold(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        y = X @ np.array([1.0, 2.0]) + rng.normal(0, 0.01, 60)
        scores = cross_val_score(
            lambda: RidgeRegressor(alpha=1e-8), X, y, rmse, n_splits=4
        )
        assert scores.shape == (4,)
        assert (scores < 0.1).all()
