"""Generalised additive model."""

import numpy as np
import pytest

from repro.ml.gam import GAMRegressor
from repro.ml.metrics import mape, r2_score


def smooth_positive_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x1 = rng.uniform(0, 10, n)
    x2 = rng.uniform(0, 5, n)
    mu = np.exp(0.3 * x1 + np.sin(x2))
    return np.column_stack([x1, x2]), mu * rng.lognormal(0, 0.05, n)


class TestValidation:
    def test_bad_family(self):
        with pytest.raises(ValueError):
            GAMRegressor(family="poisson")

    def test_gamma_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            GAMRegressor().fit(np.ones((5, 1)), np.array([1, 2, 0, 1, 1.0]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GAMRegressor().predict(np.ones((2, 1)))

    def test_feature_count_mismatch(self):
        X, y = smooth_positive_data(50)
        model = GAMRegressor().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((3, 3)))


class TestFitting:
    def test_recovers_multiplicative_smooth(self):
        X, y = smooth_positive_data()
        model = GAMRegressor().fit(X, y)
        pred = model.predict(X)
        assert mape(y, pred) < 0.15

    def test_generalises_to_unseen_points(self):
        X, y = smooth_positive_data(400)
        model = GAMRegressor().fit(X[:300], y[:300])
        assert mape(y[300:], model.predict(X[300:])) < 0.25

    def test_positive_predictions(self):
        X, y = smooth_positive_data()
        model = GAMRegressor().fit(X, y)
        assert (model.predict(X) > 0).all()

    def test_gaussian_family(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 10, size=(300, 1))
        y = np.sin(X[:, 0]) + rng.normal(0, 0.05, 300)
        model = GAMRegressor(family="gaussian").fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_constant_feature_degenerate_term(self):
        X = np.column_stack([np.ones(100), np.linspace(0, 1, 100)])
        y = np.exp(X[:, 1]) + 0.01
        model = GAMRegressor().fit(X, y)  # must not crash
        assert np.isfinite(model.predict(X)).all()

    def test_few_unique_values(self):
        # ppn-like feature with 3 distinct levels.
        rng = np.random.default_rng(2)
        x = rng.choice([1.0, 8.0, 16.0], size=200)
        y = x * 2.0 + 1.0
        model = GAMRegressor().fit(x[:, None], y)
        assert mape(y, model.predict(x[:, None])) < 0.2

    def test_gcv_selects_lambda(self):
        X, y = smooth_positive_data(200)
        model = GAMRegressor().fit(X, y)
        assert model.lambda_ in model.lam_grid
        assert model.edf_ is not None and model.edf_ > 1

    def test_fixed_lambda_honoured(self):
        X, y = smooth_positive_data(200)
        model = GAMRegressor(lam=10.0).fit(X, y)
        assert model.lambda_ == 10.0

    def test_extrapolation_clamped(self):
        X, y = smooth_positive_data(200)
        model = GAMRegressor().fit(X, y)
        inside = model.predict(np.array([[10.0, 5.0]]))
        outside = model.predict(np.array([[100.0, 50.0]]))
        np.testing.assert_allclose(outside, inside, rtol=1e-9)


class TestTensorInteractions:
    @staticmethod
    def interactive_data(n=400, seed=3):
        """Runtime-shaped target A(p) + B(p)*m — not additive in logs."""
        rng = np.random.default_rng(seed)
        log_m = rng.uniform(0, 22, n)
        p = rng.integers(2, 64, n).astype(float)
        y = 2e-6 * (p - 1) + (2.0**log_m) * 1e-9 * (p - 1) / p
        X = np.column_stack([log_m, p])
        return X, y * rng.lognormal(0, 0.02, n)

    def test_interaction_beats_additive(self):
        X, y = self.interactive_data()
        additive = GAMRegressor().fit(X, y)
        tensor = GAMRegressor(interactions=((0, 1),)).fit(X, y)
        assert mape(y, tensor.predict(X)) < 0.5 * mape(y, additive.predict(X))
        assert mape(y, tensor.predict(X)) < 0.1

    def test_interaction_generalises(self):
        X, y = self.interactive_data(500)
        model = GAMRegressor(interactions=((0, 1),)).fit(X[:400], y[:400])
        assert mape(y[400:], model.predict(X[400:])) < 0.15

    def test_bad_interaction_pair(self):
        with pytest.raises(ValueError, match="interaction"):
            GAMRegressor(interactions=((0, 0),))

    def test_out_of_range_interaction(self):
        X, y = smooth_positive_data(50)
        with pytest.raises(ValueError, match="out of range"):
            GAMRegressor(interactions=((0, 7),)).fit(X, y)

    def test_degenerate_margin_handled(self):
        X, y = smooth_positive_data(100)
        X = np.column_stack([X[:, 0], np.ones(100)])  # constant margin
        model = GAMRegressor(interactions=((0, 1),)).fit(X, y)
        assert np.isfinite(model.predict(X)).all()


class TestPartialEffects:
    def test_partial_effect_shape(self):
        X, y = smooth_positive_data()
        model = GAMRegressor().fit(X, y)
        grid = np.linspace(0, 10, 25)
        effect = model.partial_effect(0, grid)
        assert effect.shape == (25,)

    def test_partial_effect_monotone_for_exponential_term(self):
        X, y = smooth_positive_data()
        model = GAMRegressor().fit(X, y)
        grid = np.linspace(1, 9, 20)
        effect = model.partial_effect(0, grid)
        # f(x1) ~ 0.3*x1 on the link scale: overwhelmingly increasing.
        assert (np.diff(effect) > 0).mean() > 0.8
