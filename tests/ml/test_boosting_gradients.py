"""Analytic gradients/hessians of the boosting losses vs finite differences.

The per-objective derivative code is where a silent sign or factor
error would quietly degrade every model, so it gets its own numeric
verification.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.boosting import GradientBoostingRegressor

EPS = 1e-6


def numeric_grad(model, y, score):
    up = model._loss(y, score + EPS) * len(y)
    down = model._loss(y, score - EPS) * len(y)
    return (up - down) / (2 * EPS) / len(y)


@pytest.mark.parametrize("objective", ["tweedie", "gamma", "squared"])
class TestGradientsMatchLoss:
    @settings(max_examples=25, deadline=None)
    @given(
        y_val=st.floats(min_value=0.05, max_value=50.0),
        score=st.floats(min_value=-3.0, max_value=3.0),
    )
    def test_gradient_matches_finite_difference(self, objective, y_val, score):
        model = GradientBoostingRegressor(objective=objective)
        y = np.array([y_val])
        s = np.array([score])
        grad, _ = model._grad_hess(y, s)
        # d/ds of the *mean* loss for one sample is just the per-sample
        # derivative.
        up = model._loss(y, s + EPS)
        down = model._loss(y, s - EPS)
        numeric = (up - down) / (2 * EPS)
        assert grad[0] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(
        y_val=st.floats(min_value=0.05, max_value=50.0),
        score=st.floats(min_value=-3.0, max_value=3.0),
    )
    def test_hessian_matches_gradient_slope(self, objective, y_val, score):
        model = GradientBoostingRegressor(objective=objective)
        y = np.array([y_val])
        s = np.array([score])
        _, hess = model._grad_hess(y, s)
        g_up, _ = model._grad_hess(y, s + EPS)
        g_down, _ = model._grad_hess(y, s - EPS)
        numeric = (g_up[0] - g_down[0]) / (2 * EPS)
        # Tweedie hessians are floored at a tiny positive value; only
        # compare where the true curvature is meaningful.
        if abs(numeric) > 1e-8:
            assert hess[0] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_hessian_nonnegative(self, objective):
        model = GradientBoostingRegressor(objective=objective)
        rng = np.random.default_rng(0)
        y = rng.uniform(0.1, 10.0, 200)
        s = rng.uniform(-5, 5, 200)
        _, hess = model._grad_hess(y, s)
        assert (hess >= 0).all()

    def test_gradient_zero_at_optimum(self, objective):
        # For a single sample the optimum is score = y (squared) or
        # score = log(y) (log-link objectives): gradient must vanish.
        model = GradientBoostingRegressor(objective=objective)
        y = np.array([3.7])
        s = y if objective == "squared" else np.log(y)
        grad, _ = model._grad_hess(y, s)
        assert grad[0] == pytest.approx(0.0, abs=1e-9)
