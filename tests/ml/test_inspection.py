"""Permutation importance and partial dependence."""

import numpy as np
import pytest

from repro.ml.inspection import partial_dependence, permutation_importance
from repro.ml.metrics import rmse
from repro.ml.tree import RegressionTree


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(400, 3))
    # Feature 0 dominates, feature 1 is weak, feature 2 is pure noise.
    y = 10.0 * X[:, 0] + 1.0 * X[:, 1] + rng.normal(0, 0.05, 400)
    model = RegressionTree(max_depth=8).fit(X, y)
    return model, X, y


class TestPermutationImportance:
    def test_ranks_features_correctly(self, fitted):
        model, X, y = fitted
        imp = permutation_importance(model, X, y, rmse, rng=1)
        assert imp[0] > imp[1] > imp[2] - 1e-9
        assert imp[0] > 10 * max(imp[2], 1e-9)

    def test_noise_feature_near_zero(self, fitted):
        model, X, y = fitted
        imp = permutation_importance(model, X, y, rmse, rng=1)
        assert abs(imp[2]) < 0.2

    def test_deterministic_per_seed(self, fitted):
        model, X, y = fitted
        a = permutation_importance(model, X, y, rmse, rng=3)
        b = permutation_importance(model, X, y, rmse, rng=3)
        np.testing.assert_array_equal(a, b)

    def test_bad_repeats(self, fitted):
        model, X, y = fitted
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, rmse, n_repeats=0)


class TestPartialDependence:
    def test_monotone_effect_recovered(self, fitted):
        model, X, _ = fitted
        grid, means = partial_dependence(model, X, feature=0)
        assert len(grid) == len(means)
        # y grows by ~10 across feature 0's range.
        assert means[-1] - means[0] > 5.0

    def test_flat_for_noise_feature(self, fitted):
        model, X, _ = fitted
        _, means = partial_dependence(model, X, feature=2)
        assert means.max() - means.min() < 1.0

    def test_custom_grid(self, fitted):
        model, X, _ = fitted
        grid, means = partial_dependence(
            model, X, feature=0, grid=np.array([0.1, 0.9])
        )
        np.testing.assert_array_equal(grid, [0.1, 0.9])
        assert means.shape == (2,)

    def test_bad_feature(self, fitted):
        model, X, _ = fitted
        with pytest.raises(ValueError):
            partial_dependence(model, X, feature=5)
