"""Histogram primitive: bucketing, quantiles, hub wiring, flush."""

import math
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS_US,
    Histogram,
    MemorySink,
    Telemetry,
)


@pytest.fixture
def telemetry():
    return Telemetry()


class TestBucketing:
    def test_observation_lands_in_first_bound_geq(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0):  # both <= 1.0
            h.observe(value)
        h.observe(10.0)  # exactly on a bound -> that bucket (le semantics)
        h.observe(11.0)
        h.observe(1e9)  # beyond the last bound -> +Inf overflow slot
        snap = h.snapshot()
        assert snap.counts == (2, 1, 1, 1)
        assert snap.total == 5
        assert snap.sum == pytest.approx(0.5 + 1.0 + 10.0 + 11.0 + 1e9)

    def test_bounds_must_be_ascending_unique(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())

    def test_default_buckets_cover_serving_latencies(self):
        assert DEFAULT_BUCKETS_US[0] <= 1  # sub-microsecond compiled hits
        assert DEFAULT_BUCKETS_US[-1] >= 1e6  # cold multi-second probes
        assert list(DEFAULT_BUCKETS_US) == sorted(set(DEFAULT_BUCKETS_US))


class TestQuantiles:
    def test_empty_histogram_is_nan(self):
        snap = Histogram("lat").snapshot()
        assert math.isnan(snap.quantile(0.5))

    def test_quantile_bounds_validated(self):
        snap = Histogram("lat").snapshot()
        with pytest.raises(ValueError):
            snap.quantile(1.5)
        with pytest.raises(ValueError):
            snap.quantile(-0.1)

    def test_single_bucket_interpolation(self):
        h = Histogram("lat", bounds=(0.0, 100.0))
        for _ in range(100):
            h.observe(50.0)
        snap = h.snapshot()
        # all mass in (0, 100]: quantiles interpolate inside that bucket
        assert snap.quantile(0.5) == pytest.approx(50.0)
        assert snap.quantile(1.0) == pytest.approx(100.0)

    def test_quantiles_are_monotone_and_bracketing(self):
        h = Histogram("lat")
        # skewed synthetic latencies: bulk fast, a slow tail
        for _ in range(900):
            h.observe(8.0)
        for _ in range(90):
            h.observe(300.0)
        for _ in range(10):
            h.observe(40_000.0)
        snap = h.snapshot()
        p = snap.percentiles()
        assert p["p50"] <= p["p99"] <= p["p999"]
        assert 5.0 <= p["p50"] <= 10.0
        assert 200.0 <= p["p99"] <= 500.0
        assert p["p999"] >= 20_000.0

    def test_overflow_bucket_reports_last_bound(self):
        h = Histogram("lat", bounds=(1.0, 2.0))
        h.observe(1e9)
        assert h.snapshot().quantile(0.5) == 2.0


class TestHubWiring:
    def test_observe_creates_and_accumulates(self, telemetry):
        telemetry.observe("serve.latency_us", 3.0)
        telemetry.observe("serve.latency_us", 7.0)
        snaps = telemetry.histograms_snapshot()
        assert list(snaps) == ["serve.latency_us"]
        assert snaps["serve.latency_us"].total == 2

    def test_bounds_fixed_after_first_creation(self, telemetry):
        first = telemetry.histogram("h", bounds=(1.0, 2.0))
        again = telemetry.histogram("h", bounds=(5.0, 6.0))
        assert again is first
        assert again.bounds == (1.0, 2.0)

    def test_threaded_observes_all_counted(self, telemetry):
        h = telemetry.histogram("h", bounds=(10.0, 1000.0))

        def worker():
            for i in range(1000):
                h.observe(float(i))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.snapshot()
        assert snap.total == 8000
        assert sum(snap.counts) == 8000

    def test_flush_emits_histogram_events(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        telemetry.observe("fleet.request_latency_us", 12.0)
        telemetry.histogram("empty.histogram")
        telemetry.flush()
        events = {e.name: e for e in sink.events if e.kind == "histogram"}
        full = events["fleet.request_latency_us"]
        assert full.fields["count"] == 1
        assert full.fields["sum"] == pytest.approx(12.0)
        assert {"p50", "p99", "p999"} <= set(full.fields)
        # an empty histogram must not leak NaN into the JSONL log
        assert "p50" not in events["empty.histogram"].fields

    def test_reset_clears_histograms(self, telemetry):
        telemetry.observe("h", 1.0)
        telemetry.reset()
        assert telemetry.histograms_snapshot() == {}
