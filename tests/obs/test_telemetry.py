"""Telemetry hub: span nesting, sink plumbing, counter atomicity."""

import json
import threading

import pytest

from repro.obs import (
    FileSink,
    MemorySink,
    NullSink,
    StderrSink,
    Telemetry,
    TelemetryEvent,
    get_telemetry,
)


@pytest.fixture
def telemetry():
    return Telemetry()


class TestSpans:
    def test_emits_on_exit(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        with telemetry.span("stage"):
            assert len(sink) == 0  # nothing until the span closes
        (event,) = sink.events
        assert event.kind == "span"
        assert event.name == "stage"
        assert event.fields["wall_s"] >= 0
        assert event.fields["cpu_s"] >= 0
        assert event.fields["depth"] == 0

    def test_nesting_builds_paths(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        with telemetry.span("campaign/d1"):
            with telemetry.span("n=16"):
                with telemetry.span("fit"):
                    pass
        names = [e.name for e in sink.events]
        assert names == [
            "campaign/d1/n=16/fit",
            "campaign/d1/n=16",
            "campaign/d1",
        ]
        depths = [e.fields["depth"] for e in sink.events]
        assert depths == [2, 1, 0]

    def test_absolute_ignores_stack(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        with telemetry.span("outer"):
            with telemetry.span("worker/chunk", absolute=True):
                pass
        assert sink.events[0].name == "worker/chunk"

    def test_annotate_and_kwargs(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        with telemetry.span("s", rows=7) as span:
            span.annotate(kernel="c")
        (event,) = sink.events
        assert event.fields["rows"] == 7
        assert event.fields["kernel"] == "c"

    def test_emitted_even_on_exception(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        with pytest.raises(RuntimeError):
            with telemetry.span("boom"):
                raise RuntimeError("x")
        (event,) = sink.events
        assert event.name == "boom"
        assert event.fields["error"] is True

    def test_stack_unwinds_after_exception(self, telemetry):
        with pytest.raises(RuntimeError):
            with telemetry.span("a"):
                raise RuntimeError
        assert telemetry.current_path() is None

    def test_current_path(self, telemetry):
        assert telemetry.current_path() is None
        with telemetry.span("a"):
            with telemetry.span("b"):
                assert telemetry.current_path() == "a/b"
        assert telemetry.current_path() is None

    def test_elapsed_monotone(self, telemetry):
        with telemetry.span("t") as span:
            first = span.elapsed
            second = span.elapsed
        assert second >= first >= 0

    def test_threads_nest_independently(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        seen = []

        def worker():
            with telemetry.span("worker-span"):
                seen.append(telemetry.current_path())

        with telemetry.span("main-span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # the worker thread does NOT inherit the main thread's stack
        assert seen == ["worker-span"]


class TestSinkPlumbing:
    def test_configure_replaces(self, telemetry):
        first, second = MemorySink(), MemorySink()
        telemetry.configure([first])
        telemetry.event("one")
        telemetry.configure([second])
        telemetry.event("two")
        assert [e.name for e in first.events] == ["one"]
        assert [e.name for e in second.events] == ["two"]

    def test_add_remove_sink(self, telemetry):
        sink = MemorySink()
        telemetry.add_sink(sink)
        telemetry.event("x")
        telemetry.remove_sink(sink)
        telemetry.event("y")
        assert [e.name for e in sink.events] == ["x"]

    def test_fan_out_to_all_sinks(self, telemetry):
        sinks = [MemorySink(), MemorySink(), NullSink()]
        telemetry.configure(sinks)
        telemetry.event("ping")
        assert len(sinks[0]) == 1 and len(sinks[1]) == 1

    def test_capture_context(self, telemetry):
        with telemetry.capture() as sink:
            telemetry.event("inside")
        telemetry.event("outside")
        assert [e.name for e in sink.events] == ["inside"]

    def test_global_singleton(self):
        assert get_telemetry() is get_telemetry()

    def test_reset_detaches_and_zeroes(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        telemetry.add("c", 3)
        telemetry.reset()
        assert telemetry.counters_snapshot() == {}
        assert telemetry.sinks == []


class TestCounters:
    def test_add_returns_cumulative(self, telemetry):
        assert telemetry.add("c") == 1
        assert telemetry.add("c", 4) == 5
        assert telemetry.counters_snapshot() == {"c": 5}

    def test_atomic_under_threads(self, telemetry):
        # the REPRO_JOBS=4 campaign shape: four workers hammering the
        # same counters; no increment may be lost.
        jobs, per_thread = 4, 10_000

        def worker():
            for _ in range(per_thread):
                telemetry.add("campaign.samples")
                telemetry.add("campaign.chunks", 2)

        threads = [threading.Thread(target=worker) for _ in range(jobs)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = telemetry.counters_snapshot()
        assert snap["campaign.samples"] == jobs * per_thread
        assert snap["campaign.chunks"] == 2 * jobs * per_thread

    def test_flush_emits_counter_events(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        telemetry.add("a", 2)
        telemetry.add("b", 3)
        telemetry.flush()
        events = sink.of_kind("counter")
        assert {(e.name, e.fields["value"]) for e in events} == {
            ("a", 2), ("b", 3)
        }

    def test_counters_do_not_emit_per_increment(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        for _ in range(100):
            telemetry.add("hot")
        assert len(sink) == 0  # only flush() emits


class TestGaugesAndEvents:
    def test_gauge_emits_immediately(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        telemetry.gauge("utilization", 0.85)
        (event,) = sink.events
        assert event.kind == "gauge"
        assert event.fields["value"] == 0.85
        assert telemetry.gauges_snapshot() == {"utilization": 0.85}

    def test_event_payload(self, telemetry):
        sink = MemorySink()
        telemetry.configure([sink])
        telemetry.event("cache_corrupt", path="/x.npz", error="BadZipFile")
        (event,) = sink.events
        assert event.kind == "event"
        assert event.fields == {"path": "/x.npz", "error": "BadZipFile"}

    def test_event_field_named_name_allowed(self, telemetry):
        # the event's own identifier is positional-only, so a payload
        # field may itself be called "name"
        sink = MemorySink()
        telemetry.configure([sink])
        telemetry.event("campaign_resume", name="d1-ci", chunks_resumed=3)
        assert sink.events[0].fields["name"] == "d1-ci"


class TestSinks:
    def test_file_sink_jsonl_roundtrip(self, telemetry, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = FileSink(path)
        telemetry.configure([sink])
        with telemetry.span("s", rows=3):
            pass
        telemetry.event("e", k="v")
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [TelemetryEvent.from_json(line) for line in lines]
        assert parsed[0].kind == "span" and parsed[0].fields["rows"] == 3
        assert parsed[1].fields == {"k": "v"}

    def test_file_sink_appends(self, tmp_path):
        path = tmp_path / "run.jsonl"
        for round_no in range(2):
            sink = FileSink(path)
            sink.emit(TelemetryEvent(kind="event", name=f"r{round_no}"))
            sink.close()
        assert len(path.read_text().splitlines()) == 2

    def test_closed_file_sink_rejects(self, tmp_path):
        sink = FileSink(tmp_path / "x.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.emit(TelemetryEvent(kind="event", name="late"))

    def test_stderr_sink_pretty(self):
        import io

        buffer = io.StringIO()
        sink = StderrSink(stream=buffer)
        sink.emit(
            TelemetryEvent(
                kind="span", name="campaign/d1",
                fields={"wall_s": 0.5, "cpu_s": 0.4, "depth": 0, "samples": 9},
            )
        )
        sink.emit(TelemetryEvent(kind="counter", name="c", fields={"value": 7}))
        out = buffer.getvalue()
        assert "campaign/d1" in out and "500.00 ms" in out and "samples" in out
        assert "c = 7" in out

    def test_memory_sink_filters(self):
        sink = MemorySink()
        sink.emit(TelemetryEvent(kind="event", name="a"))
        sink.emit(TelemetryEvent(kind="gauge", name="b", fields={"value": 1}))
        assert len(sink.of_kind("gauge")) == 1
        assert len(sink.named("a")) == 1
        sink.clear()
        assert len(sink) == 0


class TestEventSchema:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TelemetryEvent(kind="bogus", name="x")

    def test_dict_roundtrip(self):
        event = TelemetryEvent(kind="span", name="s", fields={"wall_s": 1.25})
        clone = TelemetryEvent.from_dict(event.to_dict())
        assert clone.name == "s" and clone.fields["wall_s"] == 1.25

    def test_json_is_single_line(self):
        event = TelemetryEvent(kind="event", name="multi", fields={"x": "a\nb"})
        assert "\n" not in event.to_json()
        assert json.loads(event.to_json())["fields"]["x"] == "a\nb"
