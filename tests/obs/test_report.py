"""Telemetry log summariser (the `repro report --telemetry` backend)."""

import pytest

from repro.obs import (
    FileSink,
    Telemetry,
    TelemetryEvent,
    load_events,
    render_summary,
    report_telemetry,
    summarize,
)


def _span(name, wall, cpu=0.0, **fields):
    payload = {"wall_s": wall, "cpu_s": cpu, "depth": 0, **fields}
    return TelemetryEvent(kind="span", name=name, fields=payload)


class TestSummarize:
    def test_aggregates_spans_by_name(self):
        events = [
            _span("campaign/d1/n=4", 1.0),
            _span("campaign/d1/n=4", 3.0),
            _span("campaign/d1", 5.0, cpu=4.0),
        ]
        summary = summarize(events)
        by_name = {s.name: s for s in summary.spans}
        chunk = by_name["campaign/d1/n=4"]
        assert chunk.count == 2
        assert chunk.total_wall_s == pytest.approx(4.0)
        assert chunk.mean_wall_s == pytest.approx(2.0)
        assert chunk.max_wall_s == pytest.approx(3.0)
        assert by_name["campaign/d1"].total_cpu_s == pytest.approx(4.0)

    def test_sorted_by_total_wall_desc(self):
        events = [_span("small", 0.1), _span("big", 9.0), _span("mid", 1.0)]
        names = [s.name for s in summarize(events).spans]
        assert names == ["big", "mid", "small"]

    def test_counters_keep_final_value(self):
        events = [
            TelemetryEvent(kind="counter", name="c", fields={"value": 5}),
            TelemetryEvent(kind="counter", name="c", fields={"value": 12}),
        ]
        assert summarize(events).counters == {"c": 12}

    def test_gauges_and_event_tally(self):
        events = [
            TelemetryEvent(kind="gauge", name="util", fields={"value": 0.7}),
            TelemetryEvent(kind="event", name="cache_corrupt"),
            TelemetryEvent(kind="event", name="cache_corrupt"),
        ]
        summary = summarize(events)
        assert summary.gauges == {"util": 0.7}
        assert summary.event_tally == {"cache_corrupt": 2}

    def test_error_spans_counted(self):
        events = [_span("s", 1.0, error=True), _span("s", 1.0)]
        assert summarize(events).spans[0].errors == 1


class TestLoadEvents:
    def test_roundtrip_through_file_sink(self, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry = Telemetry([FileSink(path)])
        with telemetry.span("stage", rows=4):
            pass
        telemetry.add("n", 3)
        telemetry.flush()
        events = load_events(path)
        assert [e.kind for e in events] == ["span", "counter"]
        assert events[0].fields["rows"] == 4

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        good = TelemetryEvent(kind="event", name="ok").to_json()
        path.write_text(good + "\n" + '{"ts": 1.0, "kind": "ev')  # torn
        events = load_events(path)
        names = [e.name for e in events]
        assert "ok" in names
        assert "report.skipped_lines" in names

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        good = TelemetryEvent(kind="event", name="ok").to_json()
        path.write_text("\n" + good + "\n\n")
        assert len(load_events(path)) == 1


class TestRender:
    def test_top_n_and_counters(self):
        events = [_span(f"s{i}", float(i)) for i in range(20)]
        events.append(
            TelemetryEvent(kind="counter", name="campaign.samples",
                           fields={"value": 123})
        )
        text = render_summary(summarize(events), top=3)
        assert "s19" in text and "s17" in text
        assert "s1 " not in text  # beyond top-3
        assert "campaign.samples" in text and "123" in text

    def test_report_telemetry_end_to_end(self, tmp_path):
        path = tmp_path / "run.jsonl"
        telemetry = Telemetry([FileSink(path)])
        with telemetry.span("campaign/x"):
            with telemetry.span("n=2"):
                pass
        telemetry.gauge("util", 0.5)
        telemetry.add("samples", 10)
        telemetry.flush()
        text = report_telemetry(path, top=5)
        assert "campaign/x" in text
        assert "campaign/x/n=2" in text
        assert "util" in text
        assert "samples" in text
