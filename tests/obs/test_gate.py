"""Bench regression gate — the CI acceptance bar's comparison logic.

The acceptance criterion: the gate must demonstrably fail on a
synthetic 30% slowdown. That case is pinned here, together with the
direction handling (latency vs throughput) and the warn band.
"""

import json

import pytest

from repro.obs.gate import (
    GATE_METRICS,
    compare_metrics,
    compare_reports,
    gate_verdict,
    latest_committed_report,
    regression_fraction,
)

BASE = {
    "booster_predict_10k_s": 0.010,
    "booster_fit_2000_s": 2.0,
    "campaign_samples_per_s": 4000.0,
    "fastsim_chain_eval_s": 0.0005,
    "serve_batch64_speedup_x": 8.0,
    "serve_cached_speedup_x": 50.0,
    "serve_compiled_speedup_x": 6.0,
    "fleet_req_per_s": 3000.0,
    "fleet_p99_us": 5000.0,
    "fleet_degraded_req_per_s": 1500.0,
    "retrain_budget_frac": 0.42,
}


def _with(**overrides):
    return {**BASE, **overrides}


class TestRegressionFraction:
    def test_latency_slowdown_positive(self):
        assert regression_fraction(1.0, 1.3, False) == pytest.approx(0.30)

    def test_latency_speedup_negative(self):
        assert regression_fraction(1.0, 0.8, False) == pytest.approx(-0.20)

    def test_throughput_drop_positive(self):
        assert regression_fraction(1000.0, 700.0, True) == pytest.approx(0.30)

    def test_throughput_gain_negative(self):
        assert regression_fraction(1000.0, 1200.0, True) == pytest.approx(-0.20)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            regression_fraction(0.0, 1.0, False)


class TestCompareMetrics:
    def test_identical_passes(self):
        results = compare_metrics(BASE, BASE)
        assert all(r.status == "ok" for r in results)
        passed, text = gate_verdict(results)
        assert passed and "GATE PASSED" in text

    def test_synthetic_30pct_predict_slowdown_fails(self):
        # the acceptance-criteria case: booster predict 30% slower
        current = _with(booster_predict_10k_s=0.010 * 1.30)
        results = compare_metrics(BASE, current)
        verdicts = {r.metric: r.status for r in results}
        assert verdicts["booster_predict_10k_s"] == "fail"
        passed, text = gate_verdict(results)
        assert not passed and "GATE FAILED" in text

    def test_synthetic_30pct_throughput_drop_fails(self):
        current = _with(campaign_samples_per_s=4000.0 * 0.70)
        results = compare_metrics(BASE, current)
        verdicts = {r.metric: r.status for r in results}
        assert verdicts["campaign_samples_per_s"] == "fail"
        assert not gate_verdict(results)[0]

    def test_15pct_slowdown_warns_but_passes(self):
        current = _with(booster_predict_10k_s=0.010 * 1.15)
        results = compare_metrics(BASE, current)
        verdicts = {r.metric: r.status for r in results}
        assert verdicts["booster_predict_10k_s"] == "warn"
        assert gate_verdict(results)[0]  # warnings do not fail the build

    def test_5pct_jitter_ok(self):
        current = _with(booster_predict_10k_s=0.010 * 1.05,
                        campaign_samples_per_s=4000.0 * 0.95)
        assert all(r.status == "ok" for r in compare_metrics(BASE, current))

    def test_improvement_ok(self):
        current = _with(booster_predict_10k_s=0.002,
                        campaign_samples_per_s=9000.0)
        results = compare_metrics(BASE, current)
        assert all(r.status == "ok" for r in results)
        assert all(r.regression < 0 for r in results
                   if r.metric in ("booster_predict_10k_s",
                                   "campaign_samples_per_s"))

    def test_missing_metric_reported_not_failed(self):
        base = dict(BASE)
        del base["fastsim_chain_eval_s"]
        results = compare_metrics(base, BASE)
        verdicts = {r.metric: r.status for r in results}
        assert verdicts["fastsim_chain_eval_s"] == "missing"
        assert gate_verdict(results)[0]

    def test_custom_thresholds(self):
        current = _with(booster_predict_10k_s=0.010 * 1.06)
        results = compare_metrics(BASE, current, warn_frac=0.02, fail_frac=0.05)
        verdicts = {r.metric: r.status for r in results}
        assert verdicts["booster_predict_10k_s"] == "fail"

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            compare_metrics(BASE, BASE, warn_frac=0.5, fail_frac=0.1)

    def test_every_gate_metric_has_direction(self):
        # the gate tracks the BENCH report's headline metrics
        assert set(GATE_METRICS) == set(BASE)


class TestCompareReports:
    def _write(self, path, metrics):
        path.write_text(json.dumps({"pr": 1, "current": metrics}))

    def test_file_comparison(self, tmp_path):
        baseline, current = tmp_path / "b.json", tmp_path / "c.json"
        self._write(baseline, BASE)
        self._write(current, _with(campaign_samples_per_s=4000.0 * 0.65))
        results = compare_reports(baseline, current)
        verdicts = {r.metric: r.status for r in results}
        assert verdicts["campaign_samples_per_s"] == "fail"

    def test_flat_report_accepted(self, tmp_path):
        # a bare metrics dict (no "current" wrapper) also works
        baseline, current = tmp_path / "b.json", tmp_path / "c.json"
        baseline.write_text(json.dumps(BASE))
        current.write_text(json.dumps(BASE))
        assert gate_verdict(compare_reports(baseline, current))[0]

    def test_latest_committed_report(self, tmp_path):
        for pr in (1, 2, 10):
            self._write(tmp_path / f"BENCH_{pr}.json", BASE)
        assert latest_committed_report(tmp_path).name == "BENCH_10.json"

    def test_latest_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            latest_committed_report(tmp_path)

    def test_gate_against_committed_baseline(self):
        # the repo's own committed baseline must be gate-compatible
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        baseline = latest_committed_report(root)
        payload = json.loads(baseline.read_text())
        current = payload["current"]
        results = compare_metrics(current, current)
        graded = [r for r in results if r.status != "missing"]
        assert graded, "committed BENCH baseline carries no gate metrics"
        assert all(r.status == "ok" for r in graded)
