"""Self-test for the lint-analysis CI job: the exact command CI runs
must exit 0 on a clean tree and exit 1 when a violation is injected
into a fleet coroutine — the acceptance scenario for this subsystem."""

import shutil
import subprocess
import sys
from pathlib import Path

from repro.cli import main as cli_main

ROOT = Path(__file__).resolve().parents[2]
LINT = ROOT / "scripts" / "repro_lint.py"

_INJECTION = """

async def _injected_regression(self):
    time.sleep(0.25)
"""


def _shadow_repo(tmp_path: Path) -> Path:
    """A miniature checkout: the real fleet module under its real path."""
    serve = tmp_path / "src" / "repro" / "serve"
    serve.mkdir(parents=True)
    shutil.copy(ROOT / "src" / "repro" / "serve" / "fleet.py", serve / "fleet.py")
    return tmp_path


def _run_lint(cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), "--fail-on-findings", "src"],
        cwd=cwd,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_ci_command_green_on_clean_tree_red_on_injection(tmp_path):
    shadow = _shadow_repo(tmp_path)

    clean = _run_lint(shadow)
    assert clean.returncode == 0, clean.stdout + clean.stderr

    fleet = shadow / "src" / "repro" / "serve" / "fleet.py"
    fleet.write_text(fleet.read_text() + _INJECTION)

    dirty = _run_lint(shadow)
    assert dirty.returncode == 1, dirty.stdout + dirty.stderr
    assert "REP003" in dirty.stdout
    assert "time.sleep" in dirty.stdout
    assert "fleet.py" in dirty.stdout


def test_mpicollpred_lint_subcommand(tmp_path, capsys):
    shadow = _shadow_repo(tmp_path)
    assert (
        cli_main(["lint", "src", "--root", str(shadow), "--fail-on-findings"])
        == 0
    )
    fleet = shadow / "src" / "repro" / "serve" / "fleet.py"
    fleet.write_text(fleet.read_text() + _INJECTION)
    assert cli_main(["lint", "src", "--root", str(shadow)]) == 1
    out = capsys.readouterr().out
    assert "REP003" in out


def test_usage_errors_exit_2(tmp_path):
    assert cli_main(["lint", "no/such/dir", "--root", str(tmp_path)]) == 2
    assert cli_main(["lint", "--root", str(tmp_path / "missing")]) == 2


def test_unknown_select_rule_exits_2(tmp_path, capsys):
    """A typo'd --select must not silently select zero checkers."""
    shadow = _shadow_repo(tmp_path)
    assert cli_main(["lint", "src", "--root", str(shadow), "--select", "REP999"]) == 2
    assert cli_main(["lint", "src", "--root", str(shadow), "--select", "REP003"]) == 0
    capsys.readouterr()


def test_write_baseline_then_strict_run_is_green(tmp_path, capsys):
    shadow = _shadow_repo(tmp_path)
    fleet = shadow / "src" / "repro" / "serve" / "fleet.py"
    fleet.write_text(fleet.read_text() + _INJECTION)

    assert cli_main(["lint", "src", "--root", str(shadow)]) == 1
    assert cli_main(["lint", "src", "--root", str(shadow), "--write-baseline"]) == 0
    assert (shadow / "analysis-baseline.json").exists()
    # grandfathered: strict mode passes until the line changes again
    assert (
        cli_main(["lint", "src", "--root", str(shadow), "--fail-on-findings"])
        == 0
    )
    capsys.readouterr()
