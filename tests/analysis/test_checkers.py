"""Each REP rule fires on its bad fixture and stays silent on the clean
twin — the fixtures pin the checkers' semantics."""

from pathlib import Path

import pytest

from repro.analysis.checkers import (
    ALL_CHECKERS,
    AsyncBlockingChecker,
    AtomicWriteChecker,
    DeterminismChecker,
    ExceptionHygieneChecker,
    LockDisciplineChecker,
    ObsNamingChecker,
)
from repro.analysis.core import FileContext

FIXTURES = Path(__file__).parent / "fixtures"

# Scoped rules are exercised under an in-scope fake path; unscoped rules
# use a neutral one.
_SERVE_REL = "src/repro/serve/fixture.py"
_NEUTRAL_REL = "scripts/fixture.py"

CASES = [
    (DeterminismChecker, "rep001", _SERVE_REL, 7),
    (AtomicWriteChecker, "rep002", _NEUTRAL_REL, 4),
    (AsyncBlockingChecker, "rep003", _NEUTRAL_REL, 7),
    (LockDisciplineChecker, "rep004", _NEUTRAL_REL, 5),
    (ObsNamingChecker, "rep005", _NEUTRAL_REL, 5),
    (ExceptionHygieneChecker, "rep006", _SERVE_REL, 3),
]


def _run(checker_cls, rel: str, fixture: str):
    source = (FIXTURES / fixture).read_text()
    ctx = FileContext(rel, source)
    assert checker_cls.applies_to(ctx), f"{checker_cls.rule} out of scope for {rel}"
    return checker_cls(ctx).run()


@pytest.mark.parametrize(
    "checker_cls,stem,rel,expected", CASES, ids=[c[1] for c in CASES]
)
def test_rule_fires_on_bad_fixture(checker_cls, stem, rel, expected):
    findings = _run(checker_cls, rel, f"{stem}_bad.py")
    assert len(findings) == expected, [f.render() for f in findings]
    assert all(f.rule == checker_cls.rule for f in findings)
    assert all(f.line > 0 and f.col > 0 for f in findings)
    assert all(f.message for f in findings)


@pytest.mark.parametrize(
    "checker_cls,stem,rel,expected", CASES, ids=[c[1] for c in CASES]
)
def test_rule_silent_on_clean_twin(checker_cls, stem, rel, expected):
    findings = _run(checker_cls, rel, f"{stem}_clean.py")
    assert findings == [], [f.render() for f in findings]


def test_scoped_rules_skip_out_of_scope_paths():
    source = (FIXTURES / "rep001_bad.py").read_text()
    for rel in ("src/repro/core/dataset.py", "scripts/tool.py", "tests/x.py"):
        assert not DeterminismChecker.applies_to(FileContext(rel, source))
    source = (FIXTURES / "rep006_bad.py").read_text()
    for rel in ("src/repro/core/dataset.py", "src/repro/ml/model.py"):
        assert not ExceptionHygieneChecker.applies_to(FileContext(rel, source))


def test_scoped_rules_cover_their_paths():
    src = "x = 1\n"
    for rel in (
        "src/repro/bench/runner.py",
        "src/repro/simulator/machine.py",
        "src/repro/ml/booster.py",
        "src/repro/serve/fleet.py",
    ):
        assert DeterminismChecker.applies_to(FileContext(rel, src))
    for rel in ("src/repro/serve/fleet.py", "src/repro/bench/checkpoint.py"):
        assert ExceptionHygieneChecker.applies_to(FileContext(rel, src))


def test_every_checker_has_distinct_rule_and_hint():
    rules = [c.rule for c in ALL_CHECKERS]
    assert len(set(rules)) == len(rules) == 6
    assert all(r.startswith("REP00") for r in rules)
    assert all(c.default_fix_hint for c in ALL_CHECKERS)


def test_rep003_gate_open_is_not_file_io():
    # regression: `self._gate.open()` (reload gate) must not be flagged
    source = (
        "async def stop(self):\n"
        "    self._gate.open()\n"
    )
    ctx = FileContext(_NEUTRAL_REL, source)
    assert AsyncBlockingChecker(ctx).run() == []


def test_rep002_write_mode_via_keyword():
    ctx = FileContext(
        _NEUTRAL_REL,
        "def f(path):\n    fh = open(path, mode='w')\n",
    )
    findings = AtomicWriteChecker(ctx).run()
    assert len(findings) == 1 and findings[0].rule == "REP002"


def test_rep001_seeded_random_allowed_unseeded_flagged():
    good = FileContext(_SERVE_REL, "import random\nr = random.Random(42)\n")
    assert DeterminismChecker(good).run() == []
    bad = FileContext(_SERVE_REL, "import random\nr = random.Random()\n")
    assert len(DeterminismChecker(bad).run()) == 1
