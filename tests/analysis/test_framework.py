"""Framework behavior: suppressions, fingerprints, baselines, REP000."""

import json

from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.core import Analyzer, FileContext, iter_python_files

_BAD_WRITE = 'def f(path):\n    with open(path, "w") as fh:\n        fh.write("x")\n'


def _write_tree(root, files):
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)


def test_inline_suppression_silences_named_rule(tmp_path):
    suppressed = _BAD_WRITE.replace(
        '"w") as fh:',
        '"w") as fh:  # repro: allow REP002 -- scratch file in tests',
    )
    _write_tree(tmp_path, {"scripts/a.py": _BAD_WRITE, "scripts/b.py": suppressed})
    analyzer = Analyzer(ALL_CHECKERS)
    result = analyzer.analyze_paths([tmp_path / "scripts"], tmp_path)
    assert [f.path for f in result.findings] == ["scripts/a.py"]
    assert len(result.suppressed) == 1
    assert result.suppressed[0].path == "scripts/b.py"


def test_suppression_for_other_rule_does_not_apply():
    source = _BAD_WRITE.replace(
        '"w") as fh:', '"w") as fh:  # repro: allow REP001 -- wrong rule'
    )
    ctx = FileContext("scripts/a.py", source)
    analyzer = Analyzer(ALL_CHECKERS)
    findings = [
        f for f in analyzer.analyze_context(ctx) if not ctx.is_suppressed(f)
    ]
    assert [f.rule for f in findings] == ["REP002"]


def test_fingerprints_survive_line_shifts(tmp_path):
    _write_tree(tmp_path, {"scripts/a.py": _BAD_WRITE})
    analyzer = Analyzer(ALL_CHECKERS)
    first = analyzer.analyze_paths([tmp_path / "scripts"], tmp_path)
    # prepend unrelated lines: position moves, fingerprint must not
    _write_tree(tmp_path, {"scripts/a.py": "import os\n\nX = 1\n\n" + _BAD_WRITE})
    second = analyzer.analyze_paths([tmp_path / "scripts"], tmp_path)
    assert len(first.findings) == len(second.findings) == 1
    assert first.findings[0].line != second.findings[0].line
    assert first.findings[0].fingerprint == second.findings[0].fingerprint


def test_duplicate_lines_get_distinct_fingerprints(tmp_path):
    body = (
        "def f(p):\n"
        '    p.write_text("x")\n'
        "\n"
        "def g(p):\n"
        '    p.write_text("x")\n'
    )
    _write_tree(tmp_path, {"scripts/a.py": body})
    result = Analyzer(ALL_CHECKERS).analyze_paths([tmp_path / "scripts"], tmp_path)
    prints = [f.fingerprint for f in result.findings]
    assert len(prints) == 2 and len(set(prints)) == 2


def test_baseline_round_trip(tmp_path):
    _write_tree(tmp_path, {"scripts/a.py": _BAD_WRITE})
    analyzer = Analyzer(ALL_CHECKERS)
    result = analyzer.analyze_paths([tmp_path / "scripts"], tmp_path)
    baseline_path = tmp_path / "analysis-baseline.json"
    save_baseline(baseline_path, result.findings)

    loaded = load_baseline(baseline_path)
    new, baselined, stale = loaded.split(result.findings)
    assert new == [] and len(baselined) == 1 and stale == []

    # fix the violation: the entry goes stale, nothing is new
    _write_tree(tmp_path, {"scripts/a.py": "def f(path):\n    return path\n"})
    result2 = analyzer.analyze_paths([tmp_path / "scripts"], tmp_path)
    new2, baselined2, stale2 = loaded.split(result2.findings)
    assert new2 == [] and baselined2 == [] and len(stale2) == 1

    doc = json.loads(baseline_path.read_text())
    assert doc["version"] == 1
    assert doc["findings"][0]["rule"] == "REP002"


def test_missing_baseline_is_empty(tmp_path):
    loaded = load_baseline(tmp_path / "nope.json")
    assert loaded.entries == []


def test_syntax_error_becomes_rep000(tmp_path):
    _write_tree(tmp_path, {"scripts/broken.py": "def f(:\n"})
    result = Analyzer(ALL_CHECKERS).analyze_paths([tmp_path / "scripts"], tmp_path)
    assert [f.rule for f in result.findings] == ["REP000"]


def test_select_narrows_rules():
    source = _BAD_WRITE + "\nimport time\nasync def g():\n    time.sleep(1)\n"
    ctx = FileContext("scripts/a.py", source)
    only_async = Analyzer(ALL_CHECKERS, select=["REP003"])
    assert {f.rule for f in only_async.analyze_context(ctx)} == {"REP003"}


def test_iter_python_files_skips_pycache(tmp_path):
    _write_tree(
        tmp_path,
        {
            "pkg/mod.py": "x = 1\n",
            "pkg/__pycache__/mod.cpython-311.py": "x = 1\n",
            "pkg/data.txt": "not python\n",
        },
    )
    found = [p.name for p in iter_python_files([tmp_path])]
    assert found == ["mod.py"]
