"""REP002 clean twin: the tmp + os.replace idiom, append logs, reads."""

import json
import os
from pathlib import Path


def dump_report(path: Path, doc: dict) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(doc))
    os.replace(tmp, path)


def append_log(path: Path, line: str) -> None:
    with path.open("a") as fh:  # append is not a replace
        fh.write(line + "\n")


def read_doc(path: Path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def read_mode_kw(path: Path) -> str:
    with open(path, mode="r") as fh:
        return fh.read()
