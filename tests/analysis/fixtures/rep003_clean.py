"""REP003 clean twin: asyncio-native equivalents."""

import asyncio
from pathlib import Path


async def napper() -> None:
    await asyncio.sleep(0.1)


async def sheller() -> int:
    proc = await asyncio.create_subprocess_exec("true")
    return await proc.wait()


async def reader(path: Path) -> str:
    return await asyncio.to_thread(path.read_text)


async def grabber(lock: asyncio.Lock) -> None:
    await lock.acquire()
    lock.release()


def sync_reader(path: Path) -> str:
    return path.read_text()  # sync IO in a sync function is fine


def spawner(coro) -> asyncio.Task:
    task = asyncio.create_task(coro)  # handle is kept
    return task
