"""REP002 fixture: non-atomic writes to persistent paths."""

import json
from pathlib import Path


def dump_report(path: Path, doc: dict) -> None:
    path.write_text(json.dumps(doc))  # torn on crash


def dump_rows(path: str, rows: list) -> None:
    with open(path, "w") as fh:  # torn on crash
        for row in rows:
            fh.write(f"{row}\n")


def dump_blob(path: Path, blob: bytes) -> None:
    path.write_bytes(blob)  # torn on crash


def dump_via_method(path: Path, text: str) -> None:
    with path.open("w") as fh:  # torn on crash
        fh.write(text)
