"""REP006 clean twin: deliberate degradation, not swallowing."""

from repro.obs import get_telemetry

telemetry = get_telemetry()


def counted(fn) -> object:
    try:
        return fn()
    except Exception:
        telemetry.add("serve.compiled.errors")
        return None  # counted degradation


def inspect(fn) -> object:
    try:
        return fn()
    except Exception as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


def propagate(fn) -> object:
    try:
        return fn()
    except BaseException:
        raise


def specific(fn) -> object:
    try:
        return fn()
    except (KeyError, ValueError):
        return None  # narrow catch is fine without evidence
