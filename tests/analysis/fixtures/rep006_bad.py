"""REP006 fixture: bare and blind exception handlers (analyzed under a
serve/checkpoint path)."""


def swallow_everything(fn) -> None:
    try:
        fn()
    except:  # noqa: E722  — the point of the fixture
        pass


def swallow_blind(fn) -> object:
    try:
        return fn()
    except Exception:
        return None  # no re-raise, no telemetry, no inspection


def swallow_bound_unused(fn) -> object:
    try:
        return fn()
    except BaseException as exc:
        return None  # bound but never used
