"""REP001 fixture: every statement here should fire the determinism rule
(when analyzed under a bench/simulator/ml/serve path)."""

import random
import time
from datetime import datetime

import numpy as np


def jitter() -> float:
    return random.random()  # global random instance


def shuffled(xs: list) -> list:
    random.shuffle(xs)  # global random instance
    return xs


def unseeded() -> random.Random:
    return random.Random()  # no seed


def legacy_numpy() -> float:
    np.random.seed(0)  # legacy global state
    return float(np.random.rand())  # legacy global state


def stamp() -> float:
    _ = datetime.now()  # wall clock
    return time.time()  # wall clock
