"""REP001 clean twin: seeded/injected RNGs and monotonic clocks only."""

import random
import time

import numpy as np


def jitter(rng: np.random.Generator) -> float:
    return float(rng.random())


def seeded(seed: int) -> random.Random:
    return random.Random(seed)


def fresh(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def elapsed(t0: float) -> float:
    return time.perf_counter() - t0


def tick() -> float:
    return time.monotonic()
