"""REP005 fixture: malformed or unregistered telemetry names."""

from repro.obs import get_telemetry

telemetry = get_telemetry()


def count_things() -> None:
    telemetry.add("serve.CamelCase.hits")  # not snake_case
    telemetry.add("frobnicator.requests")  # unregistered prefix
    telemetry.gauge("uptime", 1.0)  # missing prefix segment
    telemetry.event("fleet worker died")  # spaces, not a token
    get_telemetry().add("Serve.hits")  # capitalized prefix
