"""REP004 clean twin: every mutation under the contracted lock."""

import threading


class ModelRegistry:
    def __init__(self) -> None:
        self._write_lock = threading.Lock()
        self._live = {}
        self._next_version = 1

    def commit(self, key: str, model: object) -> None:
        with self._write_lock:
            self._live[key] = model
            self._next_version += 1

    def lookup(self, key: str) -> object:
        return self._live.get(key)  # reads are the reader's problem


class Telemetry:
    def __init__(self) -> None:
        self._state_lock = threading.Lock()
        self._sinks_lock = threading.Lock()
        self._counters = {}
        self._sinks = []

    def reset(self) -> None:
        with self._state_lock:
            self._counters.clear()

    def add_sink(self, sink: object) -> None:
        with self._sinks_lock:
            self._sinks.append(sink)

    def _flush_locked(self) -> None:
        self._counters.clear()  # *_locked helper: caller holds the lock
