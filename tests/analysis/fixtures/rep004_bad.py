"""REP004 fixture: shared attributes mutated outside their lock.

Class names mirror the real contract in ``LOCKED_ATTRS``.
"""

import threading


class ModelRegistry:
    def __init__(self) -> None:
        self._write_lock = threading.Lock()
        self._live = {}
        self._next_version = 1

    def commit(self, key: str, model: object) -> None:
        self._live[key] = model  # unlocked subscript store
        self._next_version += 1  # unlocked augmented assignment


class Telemetry:
    def __init__(self) -> None:
        self._state_lock = threading.Lock()
        self._sinks_lock = threading.Lock()
        self._counters = {}
        self._sinks = []

    def reset(self) -> None:
        self._counters.clear()  # unlocked mutator call

    def add_sink(self, sink: object) -> None:
        self._sinks.append(sink)  # unlocked mutator call

    def wrong_lock(self, sink: object) -> None:
        with self._state_lock:  # holds the *other* lock
            self._sinks.append(sink)
