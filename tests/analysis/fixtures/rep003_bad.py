"""REP003 fixture: blocking calls inside coroutines, dropped tasks."""

import asyncio
import subprocess
import threading
import time
from pathlib import Path

_lock = threading.Lock()


async def napper() -> None:
    time.sleep(0.1)  # blocks the loop


async def sheller() -> str:
    return subprocess.run(["true"], capture_output=True).stdout.decode()


async def reader(path: Path) -> str:
    return path.read_text()  # sync file IO on the loop


async def opener(path: Path) -> str:
    with path.open("r") as fh:  # sync file IO on the loop
        return fh.read()


async def builtin_opener(path: str) -> str:
    with open(path) as fh:  # sync file IO on the loop
        return fh.read()


async def grabber() -> None:
    _lock.acquire()  # blocking acquire on the loop


def spawner(coro) -> None:
    asyncio.create_task(coro)  # dropped task handle
