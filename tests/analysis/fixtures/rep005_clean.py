"""REP005 clean twin: registered snake_case dotted names."""

from repro.obs import get_telemetry

telemetry = get_telemetry()


def count_things(key: str) -> None:
    telemetry.add("serve.compiled.hit")
    telemetry.add("fleet.request_latency_us")
    telemetry.gauge("fleet.workers_alive", 3.0)
    telemetry.event("fleet_worker_died", worker="w0")
    telemetry.add(f"cache.{key}.hits")  # dynamic: runtime-validated
    seen = set()
    seen.add("not a metric")  # non-telemetry receiver is out of scope
