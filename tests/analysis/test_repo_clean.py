"""The repo's own source must lint clean — the in-process twin of the
lint-analysis CI job."""

from pathlib import Path

from repro.analysis.baseline import load_baseline
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.core import Analyzer

ROOT = Path(__file__).resolve().parents[2]


def test_src_and_scripts_lint_clean_modulo_baseline():
    analyzer = Analyzer(ALL_CHECKERS)
    result = analyzer.analyze_paths([ROOT / "src", ROOT / "scripts"], ROOT)
    assert result.files_scanned > 50  # the scan actually covered the tree
    baseline = load_baseline(ROOT / "analysis-baseline.json")
    new, _, stale = baseline.split(result.findings)
    assert new == [], "new findings:\n" + "\n".join(f.render() for f in new)
    assert stale == [], "stale baseline entries: " + ", ".join(
        e.fingerprint for e in stale
    )


def test_baseline_entries_carry_justifications():
    baseline = load_baseline(ROOT / "analysis-baseline.json")
    for entry in baseline.entries:
        assert entry.justification.strip(), (
            f"baseline entry {entry.fingerprint} ({entry.rule} {entry.path})"
            " needs a justification"
        )
        assert "TODO" not in entry.justification, (
            f"baseline entry {entry.fingerprint} still has a TODO justification"
        )
