"""The package's documented public surface."""

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_readme_snippet_objects(self):
        # The objects the README quickstart uses, via the top level.
        tuner = repro.AutoTuner(
            repro.get_machine("Hydra"),
            repro.get_library("Open MPI"),
            "bcast",
        )
        assert tuner.collective is repro.CollectiveKind.BCAST

    def test_lazy_core_autotuner(self):
        from repro import core

        assert core.AutoTuner is not None
        try:
            core.no_such_symbol
        except AttributeError as err:
            assert "no_such_symbol" in str(err)
        else:  # pragma: no cover
            raise AssertionError("expected AttributeError")
