"""Tree constructors: spanning, shape, contiguity, rotation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import trees


def check_tree(parent, children, p, root):
    """Structural invariants every tree must satisfy."""
    assert parent[root] == -1
    assert (parent != -1).sum() == p - 1
    # parent/children agree
    for r in range(p):
        for c in children[r]:
            assert parent[c] == r
    # spanning & acyclic: BFS from root reaches everything once
    seen = {root}
    frontier = [root]
    while frontier:
        nxt = []
        for r in frontier:
            for c in children[r]:
                assert c not in seen
                seen.add(c)
                nxt.append(c)
        frontier = nxt
    assert seen == set(range(p))


BUILDERS = {
    "binomial": lambda p, root: trees.binomial_tree(p, root),
    "binary": lambda p, root: trees.binary_tree(p, root),
    "pipeline": lambda p, root: trees.pipeline_tree(p, root),
    "chain3": lambda p, root: trees.chain_tree(p, 3, root),
    "knomial4": lambda p, root: trees.knomial_tree(p, 4, root),
}


class TestStructure:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    @pytest.mark.parametrize("p", [1, 2, 3, 7, 8, 16, 33])
    @pytest.mark.parametrize("root", [0, 1])
    def test_valid_tree(self, name, p, root):
        if root >= p:
            pytest.skip("root out of range")
        parent, children = BUILDERS[name](p, root)
        check_tree(parent, children, p, root)

    @given(
        st.sampled_from(sorted(BUILDERS)),
        st.integers(min_value=1, max_value=128),
        st.data(),
    )
    def test_valid_tree_hypothesis(self, name, p, data):
        root = data.draw(st.integers(min_value=0, max_value=p - 1))
        parent, children = BUILDERS[name](p, root)
        check_tree(parent, children, p, root)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            trees.binomial_tree(0)
        with pytest.raises(ValueError):
            trees.binomial_tree(4, root=4)
        with pytest.raises(ValueError):
            trees.knomial_tree(8, radix=1)
        with pytest.raises(ValueError):
            trees.chain_tree(8, 0)


class TestShapes:
    def test_binomial_depth_log2(self):
        for p in (2, 4, 8, 16, 64):
            parent, _ = trees.binomial_tree(p)
            assert trees.tree_depth(parent) == int(np.log2(p))

    def test_pipeline_depth(self):
        parent, _ = trees.pipeline_tree(10)
        assert trees.tree_depth(parent) == 9

    def test_chain_count(self):
        parent, children = trees.chain_tree(13, 4)
        assert len(children[0]) == 4  # four chain heads off the root

    def test_chain_clipped_to_p(self):
        parent, children = trees.chain_tree(3, 10)
        assert len(children[0]) == 2

    def test_binary_children_at_most_two(self):
        _, children = trees.binary_tree(17)
        assert max(len(c) for c in children) <= 2

    def test_knomial_radix2_is_binomial(self):
        for p in (5, 8, 13):
            pk, _ = trees.knomial_tree(p, 2)
            pb, _ = trees.binomial_tree(p)
            np.testing.assert_array_equal(pk, pb)

    def test_knomial_higher_radix_is_shallower(self):
        p = 64
        p2, _ = trees.knomial_tree(p, 2)
        p8, _ = trees.knomial_tree(p, 8)
        assert trees.tree_depth(p8) < trees.tree_depth(p2)


class TestBinomialSubtrees:
    @pytest.mark.parametrize("p", [2, 5, 8, 13, 32])
    def test_subtree_spans_contiguous(self, p):
        parent, children = trees.binomial_tree(p)

        def collect(v):
            out = {v}
            for c in children[v]:
                out |= collect(c)
            return out

        for v in range(p):
            span = trees.binomial_subtree_span(p, v)
            assert collect(v) == set(range(v, v + span))

    def test_root_span_is_p(self):
        assert trees.binomial_subtree_span(13, 0) == 13


class TestRotation:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_rooted_tree_is_rotation(self, name):
        p, root = 12, 5
        parent0, _ = BUILDERS[name](p, 0)
        parent_r, _ = BUILDERS[name](p, root)
        for vr in range(p):
            r = (vr + root) % p
            expected = -1 if parent0[vr] < 0 else (parent0[vr] + root) % p
            assert parent_r[r] == expected
