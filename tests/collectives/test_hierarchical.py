"""Two-level (topology-aware) collectives."""

import pytest

from repro.collectives.registry import make_algorithm
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))

HIER_BCASTS = [
    ("hier_binomial", {"segsize": None}),
    ("hier_binomial", {"segsize": 512}),
    ("hier_knomial", {"segsize": None, "radix": 4}),
    ("hier_pipeline", {"segsize": 512}),
    ("hier_chain", {"segsize": 512, "chains": 2}),
    ("hier_linear", {}),
]

HIER_ALLREDUCES = [
    ("hier_linear", {}),
    ("hier_nonoverlapping", {}),
    ("hier_recursive_doubling", {}),
    ("hier_ring", {}),
    ("hier_segmented_ring", {"segsize": 512}),
    ("hier_rabenseifner", {}),
    ("hier_allgather_reduce", {}),
    ("hier_knomial_reduce_bcast", {"radix": 4}),
]

TOPOS = [(1, 1), (1, 4), (4, 1), (3, 2), (4, 4), (5, 3)]


class TestHierarchicalBcast:
    @pytest.mark.parametrize("name,kw", HIER_BCASTS)
    @pytest.mark.parametrize("shape", TOPOS)
    def test_semantics(self, name, kw, shape):
        algo = make_algorithm("bcast", name, algid=50, **kw)
        topo = Topology(*shape)
        if not algo.supported(topo, 4096):
            pytest.skip("unsupported")
        algo.run_exact(QUIET, topo, 4096)

    def test_base_time_positive(self):
        algo = make_algorithm("bcast", "hier_binomial", algid=50, segsize=None)
        assert algo.base_time(QUIET, Topology(4, 4), 65536) > 0

    def test_beats_flat_at_high_ppn_small_message(self):
        # The whole point of SHM-aware algorithms: with 4 ranks/node the
        # leader-based scheme crosses the fabric once per node instead
        # of following a topology-blind tree.
        topo = Topology(8, 4)
        m = 64
        flat = make_algorithm("bcast", "binary", segsize=None)
        hier = make_algorithm("bcast", "hier_binomial", algid=50, segsize=None)
        assert hier.base_time(QUIET, topo, m) < flat.base_time(QUIET, topo, m)


class TestHierarchicalAllreduce:
    @pytest.mark.parametrize("name,kw", HIER_ALLREDUCES)
    @pytest.mark.parametrize("shape", TOPOS)
    def test_semantics(self, name, kw, shape):
        algo = make_algorithm("allreduce", name, algid=60, **kw)
        topo = Topology(*shape)
        if not algo.supported(topo, 4096):
            pytest.skip("unsupported")
        algo.run_exact(QUIET, topo, 4096)

    @pytest.mark.parametrize("shape", [(4, 4), (3, 2)])
    def test_block_based_inner_unions_correctly(self, shape):
        # hier_ring exercises the dict-shaped inner return path.
        algo = make_algorithm("allreduce", "hier_ring", algid=60)
        algo.run_exact(QUIET, Topology(*shape), 8192)

    def test_config_carries_inner_name(self):
        algo = make_algorithm("allreduce", "hier_rabenseifner", algid=13)
        assert algo.config.name == "hier_rabenseifner"
        assert algo.config.algid == 13


class TestErrors:
    def test_hier_requires_algid(self):
        with pytest.raises(ValueError, match="algid"):
            make_algorithm("allreduce", "hier_ring")

    def test_no_hier_alltoall(self):
        with pytest.raises(ValueError, match="hierarchical"):
            make_algorithm("alltoall", "hier_bruck", algid=9)
