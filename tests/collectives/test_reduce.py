"""Reduce algorithms (extension collective)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import reduce as red
from repro.collectives.reduce import _in_order_binary
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))

ALGORITHMS = {
    "linear": lambda root=0: red.ReduceLinear(root),
    "chain": lambda root=0: red.ReduceChain(segsize=512, fanout=2, root=root),
    "pipeline": lambda root=0: red.ReducePipeline(segsize=512, root=root),
    "binary": lambda root=0: red.ReduceBinary(segsize=512, root=root),
    "binomial": lambda root=0: red.ReduceBinomial(segsize=None, root=root),
    "in_order_binary": lambda root=0: red.ReduceInOrderBinary(
        segsize=512, root=root
    ),
    "rabenseifner": lambda root=0: red.ReduceRabenseifner(root),
}

TOPOS = [(1, 1), (2, 1), (1, 4), (3, 2), (4, 4), (5, 3), (7, 1)]


class TestSemantics:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("shape", TOPOS)
    @pytest.mark.parametrize("nbytes", [0, 8, 4096, 65536])
    def test_root_holds_full_reduction(self, name, shape, nbytes):
        algo = ALGORITHMS[name]()
        topo = Topology(*shape)
        if not algo.supported(topo, nbytes):
            pytest.skip("unsupported")
        algo.run_exact(QUIET, topo, nbytes)

    @settings(max_examples=20, deadline=None)
    @given(
        name=st.sampled_from(sorted(ALGORITHMS)),
        nodes=st.integers(min_value=1, max_value=6),
        ppn=st.integers(min_value=1, max_value=4),
        nbytes=st.integers(min_value=0, max_value=10**5),
    )
    def test_root_holds_full_reduction_hypothesis(
        self, name, nodes, ppn, nbytes
    ):
        algo = ALGORITHMS[name]()
        topo = Topology(nodes, ppn)
        if not algo.supported(topo, nbytes):
            return
        algo.run_exact(QUIET, topo, nbytes)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("root", [1, 5])
    def test_nonzero_root(self, name, root):
        algo = ALGORITHMS[name](root=root)
        topo = Topology(3, 2)
        if not algo.supported(topo, 1024):
            pytest.skip("unsupported")
        algo.run_exact(QUIET, topo, 1024)

    def test_rabenseifner_non_power_of_two(self):
        for p in (3, 5, 6, 7):
            red.ReduceRabenseifner().run_exact(QUIET, Topology(p, 1), 4096)


class TestInOrderTree:
    @pytest.mark.parametrize("p", [1, 2, 5, 8, 13])
    def test_in_order_traversal_is_rank_order(self, p):
        parent, children = _in_order_binary(p, root=(p - 1) // 2)

        def inorder(node):
            kids = sorted(children[node])
            left = [k for k in kids if k < node]
            right = [k for k in kids if k > node]
            out = []
            for k in left:
                out += inorder(k)
            out.append(node)
            for k in right:
                out += inorder(k)
            return out

        roots = np.flatnonzero(parent == -1)
        assert len(roots) == 1
        assert inorder(int(roots[0])) == list(range(p))


class TestCosts:
    def test_binomial_beats_linear_small(self):
        topo = Topology(8, 1)
        lin = ALGORITHMS["linear"]().base_time(QUIET, topo, 1 << 20)
        binom = red.ReduceBinomial(segsize=16384).base_time(QUIET, topo, 1 << 20)
        assert binom < lin

    def test_rabenseifner_best_large(self):
        topo = Topology(8, 1)
        m = 4 << 20
        rab = ALGORITHMS["rabenseifner"]().base_time(QUIET, topo, m)
        binom = red.ReduceBinomial(segsize=None).base_time(QUIET, topo, m)
        assert rab < binom

    def test_in_order_same_cost_family_as_binary(self):
        topo = Topology(8, 1)
        m = 1 << 18
        binary = ALGORITHMS["binary"]().base_time(QUIET, topo, m)
        in_order = ALGORITHMS["in_order_binary"]().base_time(QUIET, topo, m)
        assert 0.5 < in_order / binary < 2.0

    def test_algids(self):
        assert red.ReduceLinear().config.algid == 1
        assert red.ReduceChain(None, 2).config.algid == 2
        assert red.ReducePipeline(None).config.algid == 3
        assert red.ReduceBinary(None).config.algid == 4
        assert red.ReduceBinomial(None).config.algid == 5
        assert red.ReduceInOrderBinary(None).config.algid == 6
        assert red.ReduceRabenseifner().config.algid == 7
