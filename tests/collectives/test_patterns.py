"""Round builders and engine program templates."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import patterns
from repro.machine.topology import Topology


def total_bytes(rounds) -> float:
    """Sum of bytes over all edges of all rounds."""
    total = 0.0
    for rnd in rounds:
        nbytes = np.broadcast_to(np.asarray(rnd.nbytes), rnd.srcs.shape)
        total += float(nbytes.sum())
    return total


class TestPhaseTag:
    def test_distinct_phases_never_collide(self):
        tags = {patterns.phase_tag(p, t) for p in range(8) for t in range(1000)}
        assert len(tags) == 8000


class TestBlockBytes:
    def test_exact(self):
        assert patterns.block_bytes(1000, 10) == 100

    def test_rounds_up(self):
        assert patterns.block_bytes(1001, 10) == 101

    def test_invalid(self):
        with pytest.raises(ValueError):
            patterns.block_bytes(10, 0)


class TestRecursiveDoublingRounds:
    @given(st.integers(min_value=1, max_value=64))
    def test_round_count(self, p):
        topo = Topology(p, 1) if p <= 8 else Topology(8, -(-p // 8))
        topo = Topology(1, p)  # shape irrelevant for structure
        rounds = patterns.recursive_doubling_rounds(topo, 100)
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2
        expected = int(np.log2(pof2)) + (2 if rem else 0)
        assert len(rounds) == expected

    @given(st.integers(min_value=2, max_value=48))
    def test_edges_within_range(self, p):
        topo = Topology(1, p)
        for rnd in patterns.recursive_doubling_rounds(topo, 8):
            assert (rnd.srcs >= 0).all() and (rnd.srcs < p).all()
            assert (rnd.dsts >= 0).all() and (rnd.dsts < p).all()
            assert not (rnd.srcs == rnd.dsts).any()

    def test_compute_flag(self):
        topo = Topology(1, 4)
        with_c = patterns.recursive_doubling_rounds(topo, 64, compute=True)
        without = patterns.recursive_doubling_rounds(topo, 64, compute=False)
        assert any(np.any(np.asarray(r.compute_bytes) > 0) for r in with_c)
        assert all(np.all(np.asarray(r.compute_bytes) == 0) for r in without)

    def test_single_rank_no_rounds(self):
        assert patterns.recursive_doubling_rounds(Topology(1, 1), 100) == []


class TestReduceScatterHalving:
    @given(st.integers(min_value=2, max_value=64))
    def test_sizes_halve(self, p):
        topo = Topology(1, p)
        rounds = patterns.reduce_scatter_halving_rounds(topo, 1 << 20)
        pof2 = 1 << (p.bit_length() - 1)
        core = rounds[1:] if p != pof2 else rounds
        sizes = [int(np.max(np.asarray(r.nbytes))) for r in core]
        for a, b in zip(sizes, sizes[1:], strict=False):
            assert b == -(-a // 2) or b == a // 2


class TestRingRounds:
    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=0, max_value=40),
    )
    def test_count_and_shape(self, p, k):
        topo = Topology(1, p)
        rounds = patterns.ring_rounds(topo, 128, k)
        if p == 1 or k == 0:
            assert rounds == []
            return
        assert len(rounds) == k
        for rnd in rounds:
            np.testing.assert_array_equal(
                rnd.dsts, (rnd.srcs + 1) % p
            )


class TestPairwiseRounds:
    @given(st.integers(min_value=2, max_value=24))
    def test_every_pair_covered_once(self, p):
        topo = Topology(1, p)
        rounds = patterns.pairwise_rounds(topo, 64)
        assert len(rounds) == p - 1
        seen = set()
        for rnd in rounds:
            for s, d in zip(rnd.srcs, rnd.dsts, strict=True):
                seen.add((int(s), int(d)))
        assert seen == {(s, d) for s in range(p) for d in range(p) if s != d}


class TestBruckRounds:
    @given(st.integers(min_value=2, max_value=64))
    def test_log_round_count(self, p):
        topo = Topology(1, p)
        rounds = patterns.bruck_alltoall_rounds(topo, 8)
        assert len(rounds) == int(np.ceil(np.log2(p)))

    def test_trades_traffic_for_rounds(self):
        # Bruck ships every byte ~log2(p) times: more total traffic
        # than pairwise, but in log2(p) instead of p-1 rounds — which
        # is exactly why it wins for tiny messages only.
        topo = Topology(1, 16)
        bruck_rounds = patterns.bruck_alltoall_rounds(topo, 1)
        pairwise_rounds = patterns.pairwise_rounds(topo, 1)
        assert len(bruck_rounds) < len(pairwise_rounds)
        assert total_bytes(bruck_rounds) > total_bytes(pairwise_rounds)


class TestBinomialScatterRounds:
    @given(st.integers(min_value=2, max_value=48))
    def test_total_bytes_distributed(self, p):
        topo = Topology(1, p)
        nbytes = 4096 * p  # divisible: block = 4096
        rounds = patterns.binomial_scatter_rounds(topo, 0, nbytes)
        # The root ships everything except its own block; forwarding
        # re-sends some blocks, so total >= (p-1) blocks.
        assert total_bytes(rounds) >= (p - 1) * 4096

    def test_root_rotation(self):
        topo = Topology(1, 8)
        rounds0 = patterns.binomial_scatter_rounds(topo, 0, 8 * 64)
        rounds3 = patterns.binomial_scatter_rounds(topo, 3, 8 * 64)
        for r0, r3 in zip(rounds0, rounds3, strict=True):
            np.testing.assert_array_equal((r0.srcs + 3) % 8, r3.srcs)
            np.testing.assert_array_equal((r0.dsts + 3) % 8, r3.dsts)
