"""Alltoall algorithms: personalised exchange semantics + cost shapes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import alltoall
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))

ALGORITHMS = {
    "linear": lambda: alltoall.AlltoallLinear(),
    "pairwise": lambda: alltoall.AlltoallPairwise(),
    "bruck": lambda: alltoall.AlltoallBruck(),
    "linear_sync": lambda: alltoall.AlltoallLinearSync(),
    "ring": lambda: alltoall.AlltoallRing(),
}

TOPOS = [(1, 1), (2, 1), (1, 4), (3, 2), (4, 4), (5, 3), (7, 1)]


class TestSemantics:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("shape", TOPOS)
    @pytest.mark.parametrize("nbytes", [0, 64, 8192])
    def test_everyone_gets_everyones_block(self, name, shape, nbytes):
        algo = ALGORITHMS[name]()
        topo = Topology(*shape)
        if not algo.supported(topo, nbytes):
            pytest.skip("unsupported")
        algo.run_exact(QUIET, topo, nbytes)

    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(sorted(ALGORITHMS)),
        nodes=st.integers(min_value=1, max_value=5),
        ppn=st.integers(min_value=1, max_value=4),
        nbytes=st.integers(min_value=0, max_value=10**4),
    )
    def test_everyone_gets_everyones_block_hypothesis(
        self, name, nodes, ppn, nbytes
    ):
        algo = ALGORITHMS[name]()
        topo = Topology(nodes, ppn)
        if not algo.supported(topo, nbytes):
            return
        algo.run_exact(QUIET, topo, nbytes)

    def test_bruck_non_power_of_two(self):
        # Bruck's index arithmetic is where off-by-ones hide.
        for shape in ((3, 1), (5, 1), (6, 1), (7, 1), (3, 3)):
            alltoall.AlltoallBruck().run_exact(QUIET, Topology(*shape), 128)


class TestCostTradeoffs:
    def test_bruck_wins_tiny_messages(self):
        topo = Topology(8, 1)
        m = 4
        bruck = ALGORITHMS["bruck"]().base_time(QUIET, topo, m)
        pairwise = ALGORITHMS["pairwise"]().base_time(QUIET, topo, m)
        assert bruck < pairwise  # log rounds beat p-1 rounds at tiny m

    def test_pairwise_wins_large_messages(self):
        topo = Topology(8, 1)
        m = 1 << 20
        bruck = ALGORITHMS["bruck"]().base_time(QUIET, topo, m)
        pairwise = ALGORITHMS["pairwise"]().base_time(QUIET, topo, m)
        assert pairwise < bruck  # Bruck ships each byte log p times

    def test_ring_traffic_quadratic(self):
        topo = Topology(8, 1)
        m = 1 << 16
        ring = ALGORITHMS["ring"]().base_time(QUIET, topo, m)
        pairwise = ALGORITHMS["pairwise"]().base_time(QUIET, topo, m)
        assert ring > pairwise  # store-and-forward pays for its hops

    def test_trivial_single_rank(self):
        for make in ALGORITHMS.values():
            algo = make()
            result = algo.run_exact(QUIET, Topology(1, 1), 100)
            assert result.makespan == 0.0


class TestConfigs:
    def test_algids(self):
        assert ALGORITHMS["linear"]().config.algid == 1
        assert ALGORITHMS["pairwise"]().config.algid == 2
        assert ALGORITHMS["bruck"]().config.algid == 3
        assert ALGORITHMS["linear_sync"]().config.algid == 4
        assert ALGORITHMS["ring"]().config.algid == 5
