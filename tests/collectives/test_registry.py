"""Config <-> algorithm round trips through the registry."""

import pytest

from repro.collectives.base import AlgorithmConfig
from repro.collectives.registry import (
    algorithm_from_config,
    make_algorithm,
    named_algorithms,
)


class TestMakeAlgorithm:
    def test_bcast_by_name(self):
        algo = make_algorithm("bcast", "chain", segsize=4096, chains=4)
        assert algo.config.name == "chain"
        assert algo.config.param_dict == {"segsize": 4096, "chains": 4}

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown"):
            make_algorithm("bcast", "warp_drive")

    def test_missing_required_param(self):
        with pytest.raises(KeyError):
            make_algorithm("bcast", "chain", segsize=4096)  # no chains

    def test_algid_override(self):
        algo = make_algorithm("bcast", "binomial", algid=2, segsize=None)
        assert algo.config.algid == 2
        assert algo.config.name == "binomial"

    def test_named_algorithms(self):
        names = named_algorithms("bcast")
        assert "binomial" in names and "scatter_ring_allgather" in names
        assert named_algorithms("alltoall") == [
            "bruck", "linear", "linear_sync", "pairwise", "ring"
        ]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "collective,name,params",
        [
            ("bcast", "linear", {}),
            ("bcast", "chain", {"segsize": 1024, "chains": 8}),
            ("bcast", "knomial", {"segsize": None, "radix": 8}),
            ("bcast", "hier_pipeline", {"segsize": 65536}),
            ("allreduce", "segmented_ring", {"segsize": 16384}),
            ("allreduce", "hier_rabenseifner", {}),
            ("allreduce", "knomial_reduce_bcast", {"radix": 2}),
            ("alltoall", "bruck", {}),
        ],
    )
    def test_config_reconstructs_identically(self, collective, name, params):
        cfg = AlgorithmConfig.make(collective, 42, name, **params)
        algo = algorithm_from_config(cfg)
        assert algo.config == cfg
