"""Broadcast algorithms: semantics on the exact engine + cost sanity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import bcast
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))

ALGORITHMS = {
    "linear": lambda: bcast.BcastLinear(),
    "chain": lambda: bcast.BcastChain(segsize=512, chains=2),
    "pipeline": lambda: bcast.BcastPipeline(segsize=512),
    "split_binary": lambda: bcast.BcastSplitBinary(segsize=512),
    "binary": lambda: bcast.BcastBinary(segsize=512),
    "binomial": lambda: bcast.BcastBinomial(segsize=None),
    "knomial": lambda: bcast.BcastKnomial(segsize=512, radix=4),
    "scatter_allgather": lambda: bcast.BcastScatterAllgather(),
    "scatter_ring_allgather": lambda: bcast.BcastScatterRingAllgather(),
}

TOPOS = [(1, 1), (2, 1), (1, 4), (3, 2), (4, 4), (5, 3)]


class TestSemantics:
    """Every rank must hold the full message afterwards — checked by the
    algorithms' own verify_result on real payload movement."""

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("shape", TOPOS)
    @pytest.mark.parametrize("nbytes", [0, 1, 1000, 65536])
    def test_delivers_everywhere(self, name, shape, nbytes):
        algo = ALGORITHMS[name]()
        topo = Topology(*shape)
        if not algo.supported(topo, nbytes):
            pytest.skip("unsupported")
        algo.run_exact(QUIET, topo, nbytes)  # verify=True raises on error

    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(sorted(ALGORITHMS)),
        nodes=st.integers(min_value=1, max_value=6),
        ppn=st.integers(min_value=1, max_value=4),
        nbytes=st.integers(min_value=0, max_value=10**5),
    )
    def test_delivers_everywhere_hypothesis(self, name, nodes, ppn, nbytes):
        algo = ALGORITHMS[name]()
        topo = Topology(nodes, ppn)
        if not algo.supported(topo, nbytes):
            return
        algo.run_exact(QUIET, topo, nbytes)

    def test_verify_catches_wrong_output(self):
        algo = bcast.BcastLinear()
        topo = Topology(2, 2)
        result = algo.run_exact(QUIET, topo, 100, verify=False)
        result.outputs[2] = ["garbage"]
        with pytest.raises(AssertionError):
            algo.verify_result(topo, 100, result)


class TestApplicability:
    def test_split_binary_needs_three_ranks(self):
        algo = bcast.BcastSplitBinary(segsize=1024)
        assert not algo.supported(Topology(2, 1), 100)
        assert algo.supported(Topology(3, 1), 100)

    def test_others_support_singleton(self):
        for name, make in ALGORITHMS.items():
            if name == "split_binary":
                continue
            assert make().supported(Topology(1, 1), 10), name


class TestCosts:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_base_time_nonnegative_and_monotone(self, name):
        algo = ALGORITHMS[name]()
        topo = Topology(4, 2)
        if not algo.supported(topo, 1):
            pytest.skip("unsupported")
        times = [algo.base_time(QUIET, topo, m) for m in (0, 512, 65536, 1 << 20)]
        assert all(t >= 0 for t in times)
        assert times[-1] > times[0]

    def test_chain_beats_linear_for_large_messages(self):
        topo = Topology(8, 4)
        m = 4 << 20
        linear = bcast.BcastLinear().base_time(QUIET, topo, m)
        chain = bcast.BcastChain(segsize=16384, chains=4).base_time(QUIET, topo, m)
        assert chain < linear / 3  # the Figure 2 phenomenon

    def test_scatter_allgather_competitive_large(self):
        topo = Topology(8, 1)
        m = 4 << 20
        sag = bcast.BcastScatterRingAllgather().base_time(QUIET, topo, m)
        binom = bcast.BcastBinomial(segsize=None).base_time(QUIET, topo, m)
        assert sag < binom

    def test_deterministic(self):
        algo = bcast.BcastBinomial(segsize=1024)
        topo = Topology(4, 2)
        assert algo.base_time(QUIET, topo, 12345) == algo.base_time(
            QUIET, topo, 12345
        )


class TestRoots:
    @pytest.mark.parametrize("root", [0, 1, 5])
    def test_nonzero_root_linear(self, root):
        algo = bcast.BcastLinear(root=root)
        topo = Topology(3, 2)
        algo.run_exact(QUIET, topo, 1000)

    @pytest.mark.parametrize("root", [0, 2])
    def test_nonzero_root_binomial(self, root):
        algo = bcast.BcastBinomial(segsize=None, root=root)
        topo = Topology(3, 2)
        algo.run_exact(QUIET, topo, 1000)

    @pytest.mark.parametrize("root", [0, 3])
    def test_nonzero_root_scatter_ring(self, root):
        algo = bcast.BcastScatterRingAllgather(root=root)
        topo = Topology(3, 2)
        algo.run_exact(QUIET, topo, 1000)


class TestConfigs:
    def test_algids_follow_ompi(self):
        assert bcast.BcastLinear().config.algid == 1
        assert bcast.BcastChain(1024, 2).config.algid == 2
        assert bcast.BcastPipeline(1024).config.algid == 3
        assert bcast.BcastSplitBinary(1024).config.algid == 4
        assert bcast.BcastBinary(1024).config.algid == 5
        assert bcast.BcastBinomial(1024).config.algid == 6
        assert bcast.BcastKnomial(1024, 4).config.algid == 7
        assert bcast.BcastScatterAllgather().config.algid == 8
        assert bcast.BcastScatterRingAllgather().config.algid == 9

    def test_params_in_config(self):
        cfg = bcast.BcastChain(segsize=4096, chains=8).config
        assert cfg.param_dict == {"segsize": 4096, "chains": 8}
