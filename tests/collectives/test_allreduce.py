"""Allreduce algorithms: reduction semantics + cost trade-offs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import allreduce
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))

ALGORITHMS = {
    "linear": lambda: allreduce.AllreduceLinear(),
    "nonoverlapping": lambda: allreduce.AllreduceNonOverlapping(),
    "recursive_doubling": lambda: allreduce.AllreduceRecursiveDoubling(),
    "ring": lambda: allreduce.AllreduceRing(),
    "segmented_ring": lambda: allreduce.AllreduceSegmentedRing(segsize=256),
    "rabenseifner": lambda: allreduce.AllreduceRabenseifner(),
    "allgather_reduce": lambda: allreduce.AllreduceAllgatherReduce(),
    "knomial": lambda: allreduce.AllreduceKnomialReduceBcast(radix=4),
}

TOPOS = [(1, 1), (2, 1), (1, 4), (3, 2), (4, 4), (5, 3), (7, 1)]


class TestSemantics:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("shape", TOPOS)
    @pytest.mark.parametrize("nbytes", [0, 8, 4096, 65536])
    def test_full_reduction_everywhere(self, name, shape, nbytes):
        algo = ALGORITHMS[name]()
        topo = Topology(*shape)
        if not algo.supported(topo, nbytes):
            pytest.skip("unsupported")
        algo.run_exact(QUIET, topo, nbytes)

    @settings(max_examples=25, deadline=None)
    @given(
        name=st.sampled_from(sorted(ALGORITHMS)),
        nodes=st.integers(min_value=1, max_value=6),
        ppn=st.integers(min_value=1, max_value=4),
        nbytes=st.integers(min_value=0, max_value=10**5),
    )
    def test_full_reduction_hypothesis(self, name, nodes, ppn, nbytes):
        algo = ALGORITHMS[name]()
        topo = Topology(nodes, ppn)
        if not algo.supported(topo, nbytes):
            return
        algo.run_exact(QUIET, topo, nbytes)

    def test_non_power_of_two_fold(self):
        # Folding extras in/out is the trickiest path: check several p.
        for p in (3, 5, 6, 7):
            allreduce.AllreduceRecursiveDoubling().run_exact(
                QUIET, Topology(p, 1), 1000
            )
            allreduce.AllreduceRabenseifner().run_exact(
                QUIET, Topology(p, 1), 1000
            )

    def test_initial_hook(self):
        # Hierarchical callers inject partial reductions through
        # `initial`; the combined result must then cover the union.
        from repro.simulator.engine import Engine

        topo = Topology(4, 1)
        algo = allreduce.AllreduceRing()
        programs = algo.programs(
            topo, 1024, initial=lambda r: frozenset({r, r + 100})
        )
        result = Engine(QUIET, topo).run(list(programs))
        expected = frozenset(range(4)) | frozenset(range(100, 104))
        for output in result.outputs:
            assert all(v == expected for v in output.values())


class TestCostTradeoffs:
    def test_recursive_doubling_wins_small_messages(self):
        topo = Topology(8, 1)
        m = 8
        rd = ALGORITHMS["recursive_doubling"]().base_time(QUIET, topo, m)
        ring = ALGORITHMS["ring"]().base_time(QUIET, topo, m)
        assert rd < ring  # log p rounds beat 2(p-1) rounds for tiny m

    def test_ring_wins_large_messages(self):
        topo = Topology(8, 1)
        m = 4 << 20
        rd = ALGORITHMS["recursive_doubling"]().base_time(QUIET, topo, m)
        ring = ALGORITHMS["ring"]().base_time(QUIET, topo, m)
        assert ring < rd  # bandwidth-optimal blocks beat full vectors

    def test_allgather_reduce_terrible_for_large(self):
        topo = Topology(8, 1)
        m = 1 << 20
        ag = ALGORITHMS["allgather_reduce"]().base_time(QUIET, topo, m)
        ring = ALGORITHMS["ring"]().base_time(QUIET, topo, m)
        assert ag > 2 * ring

    def test_rabenseifner_beats_nonoverlapping_large(self):
        topo = Topology(8, 1)
        m = 1 << 20
        rab = ALGORITHMS["rabenseifner"]().base_time(QUIET, topo, m)
        nono = ALGORITHMS["nonoverlapping"]().base_time(QUIET, topo, m)
        assert rab < nono


class TestConfigs:
    def test_algids(self):
        assert ALGORITHMS["linear"]().config.algid == 1
        assert ALGORITHMS["nonoverlapping"]().config.algid == 2
        assert ALGORITHMS["recursive_doubling"]().config.algid == 3
        assert ALGORITHMS["ring"]().config.algid == 4
        assert ALGORITHMS["segmented_ring"]().config.algid == 5
        assert ALGORITHMS["rabenseifner"]().config.algid == 6
        assert ALGORITHMS["allgather_reduce"]().config.algid == 7
        assert ALGORITHMS["knomial"]().config.algid == 8

    def test_segmented_ring_records_segsize(self):
        cfg = allreduce.AllreduceSegmentedRing(segsize=65536).config
        assert cfg.param_dict == {"segsize": 65536}
