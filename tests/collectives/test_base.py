"""AlgorithmConfig and ConfigSpace semantics."""

import pytest

from repro.collectives.base import (
    AlgorithmConfig,
    CollectiveKind,
    ConfigSpace,
    config_space_size,
)


class TestAlgorithmConfig:
    def test_make_sorts_params(self):
        a = AlgorithmConfig.make("bcast", 2, "chain", segsize=1024, chains=4)
        b = AlgorithmConfig.make("bcast", 2, "chain", chains=4, segsize=1024)
        assert a == b
        assert hash(a) == hash(b)

    def test_label_plain(self):
        cfg = AlgorithmConfig.make("bcast", 1, "linear")
        assert cfg.label == "1:linear"

    def test_label_with_params(self):
        cfg = AlgorithmConfig.make("bcast", 2, "chain", segsize=16384, chains=4)
        assert cfg.label == "2:chain(chains=4,segsize=16KiB)"

    def test_label_none_segsize(self):
        cfg = AlgorithmConfig.make("bcast", 6, "binomial", segsize=None)
        assert "segsize=None" in cfg.label

    def test_param_dict(self):
        cfg = AlgorithmConfig.make("bcast", 7, "knomial", segsize=None, radix=4)
        assert cfg.param_dict == {"segsize": None, "radix": 4}

    def test_collective_coerced(self):
        cfg = AlgorithmConfig.make("allreduce", 4, "ring")
        assert cfg.collective is CollectiveKind.ALLREDUCE

    def test_bad_collective(self):
        with pytest.raises(ValueError):
            AlgorithmConfig.make("scan", 1, "x")

    def test_configs_distinguish_params(self):
        a = AlgorithmConfig.make("bcast", 2, "chain", segsize=1024, chains=2)
        b = AlgorithmConfig.make("bcast", 2, "chain", segsize=1024, chains=4)
        assert a != b


class TestConfigSpace:
    def _space(self):
        return ConfigSpace(
            CollectiveKind.BCAST,
            "Test MPI",
            (
                AlgorithmConfig.make("bcast", 1, "linear"),
                AlgorithmConfig.make("bcast", 2, "chain", segsize=1024, chains=2),
                AlgorithmConfig.make("bcast", 2, "chain", segsize=1024, chains=4),
            ),
        )

    def test_len(self):
        assert len(self._space()) == 3

    def test_index_of(self):
        space = self._space()
        cfg = AlgorithmConfig.make("bcast", 2, "chain", segsize=1024, chains=4)
        assert space.index_of(cfg) == 2

    def test_index_of_missing(self):
        with pytest.raises(KeyError):
            self._space().index_of(AlgorithmConfig.make("bcast", 9, "nope"))

    def test_algids(self):
        assert self._space().algids() == [1, 2]


class TestConfigSpaceSize:
    def test_counts_per_algid(self):
        space = [
            AlgorithmConfig.make("bcast", 1, "linear"),
            AlgorithmConfig.make("bcast", 2, "chain", segsize=1024, chains=2),
            AlgorithmConfig.make("bcast", 2, "chain", segsize=4096, chains=2),
        ]
        assert config_space_size(space) == {1: 1, 2: 2}
