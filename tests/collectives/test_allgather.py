"""Allgather algorithms (extension collective)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import allgather as ag
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))

ALGORITHMS = {
    "linear": ag.AllgatherLinear,
    "bruck": ag.AllgatherBruck,
    "recursive_doubling": ag.AllgatherRecursiveDoubling,
    "ring": ag.AllgatherRing,
    "neighbor_exchange": ag.AllgatherNeighborExchange,
    "two_proc": ag.AllgatherTwoProc,
}

TOPOS = [(1, 1), (2, 1), (1, 4), (3, 2), (4, 4), (5, 3), (7, 1), (8, 2)]


class TestSemantics:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("shape", TOPOS)
    @pytest.mark.parametrize("nbytes", [0, 8, 4096])
    def test_everyone_holds_all_blocks(self, name, shape, nbytes):
        algo = ALGORITHMS[name]()
        topo = Topology(*shape)
        if not algo.supported(topo, nbytes):
            pytest.skip("unsupported")
        algo.run_exact(QUIET, topo, nbytes)

    @settings(max_examples=20, deadline=None)
    @given(
        name=st.sampled_from(sorted(ALGORITHMS)),
        nodes=st.integers(min_value=1, max_value=6),
        ppn=st.integers(min_value=1, max_value=4),
        nbytes=st.integers(min_value=0, max_value=10**4),
    )
    def test_everyone_holds_all_blocks_hypothesis(
        self, name, nodes, ppn, nbytes
    ):
        algo = ALGORITHMS[name]()
        topo = Topology(nodes, ppn)
        if not algo.supported(topo, nbytes):
            return
        algo.run_exact(QUIET, topo, nbytes)

    def test_bruck_odd_p(self):
        # The partial last round is the tricky path.
        for p in (3, 5, 6, 7):
            ag.AllgatherBruck().run_exact(QUIET, Topology(p, 1), 256)


class TestApplicability:
    def test_neighbor_exchange_even_only(self):
        algo = ag.AllgatherNeighborExchange()
        assert algo.supported(Topology(4, 1), 10)
        assert not algo.supported(Topology(5, 1), 10)
        assert algo.supported(Topology(1, 1), 10)

    def test_two_proc_exactly_two(self):
        algo = ag.AllgatherTwoProc()
        assert algo.supported(Topology(2, 1), 10)
        assert not algo.supported(Topology(3, 1), 10)
        assert not algo.supported(Topology(1, 1), 10)


class TestCosts:
    def test_bruck_wins_small(self):
        topo = Topology(8, 1)
        bruck = ag.AllgatherBruck().base_time(QUIET, topo, 8)
        ring = ag.AllgatherRing().base_time(QUIET, topo, 8)
        assert bruck < ring

    def test_ring_competitive_large(self):
        topo = Topology(8, 1)
        m = 1 << 20
        ring = ag.AllgatherRing().base_time(QUIET, topo, m)
        linear = ag.AllgatherLinear().base_time(QUIET, topo, m)
        assert ring < linear

    def test_neighbor_exchange_fewer_rounds_than_ring(self):
        # Same traffic, half the latency terms.
        topo = Topology(8, 1)
        ne = ag.AllgatherNeighborExchange().base_time(QUIET, topo, 64)
        ring = ag.AllgatherRing().base_time(QUIET, topo, 64)
        assert ne < ring

    def test_algids(self):
        assert ag.AllgatherLinear().config.algid == 1
        assert ag.AllgatherBruck().config.algid == 2
        assert ag.AllgatherRecursiveDoubling().config.algid == 3
        assert ag.AllgatherRing().config.algid == 4
        assert ag.AllgatherNeighborExchange().config.algid == 5
        assert ag.AllgatherTwoProc().config.algid == 6
