"""Rank translation of sub-communicator programs (hierarchical plumbing)."""


from repro.collectives.hierarchical import translate_program
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed
from repro.simulator.engine import Engine, Irecv, Isend, Recv, Send, Wait

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))


def idle():
    return
    yield  # pragma: no cover


class TestTranslateProgram:
    def test_rewrites_peers_and_preserves_payloads(self):
        # A 2-rank inner program mapped onto real ranks 1 and 3.
        leaders = [1, 3]

        def inner_sender():
            yield Send(1, 64, {"x": 42})  # inner rank 1 -> real rank 3

        def inner_receiver():
            data = yield Recv(0)  # inner rank 0 -> real rank 1
            return data

        def factory(rank):
            if rank == 1:
                return translate_program(inner_sender(), leaders)
            if rank == 3:
                return translate_program(inner_receiver(), leaders)
            return idle()

        result = Engine(QUIET, Topology(2, 2)).run(factory)
        assert result.outputs[3] == {"x": 42}

    def test_translates_nonblocking_ops(self):
        leaders = [0, 2]

        def inner_a():
            handle = yield Irecv(1)
            data = yield Wait(handle)
            return data

        def inner_b():
            handle = yield Isend(0, 32, "hello")
            yield Wait(handle)

        def factory(rank):
            if rank == 0:
                return translate_program(inner_a(), leaders)
            if rank == 2:
                return translate_program(inner_b(), leaders)
            return idle()

        result = Engine(QUIET, Topology(2, 2)).run(factory)
        assert result.outputs[0] == "hello"

    def test_return_value_propagates(self):
        def inner():
            return "done"
            yield  # pragma: no cover

        def factory(rank):
            if rank == 0:
                return translate_program(inner(), [0])
            return idle()

        result = Engine(QUIET, Topology(1, 2)).run(factory)
        assert result.outputs[0] == "done"

    def test_tags_moved_to_reserved_namespace(self):
        # Outer traffic on tag 5 between the same pair must not match
        # the translated inner traffic on (inner) tag 5.
        leaders = [0, 1]

        def inner_send():
            yield Send(1, 8, "inner", tag=5)

        def inner_recv():
            data = yield Recv(0, tag=5)
            return data

        def prog0():
            yield Send(1, 8, "outer", tag=5)
            yield from translate_program(inner_send(), leaders)

        def prog1():
            inner = yield from translate_program(inner_recv(), leaders)
            outer = yield Recv(0, tag=5)
            return (inner, outer)

        def factory(rank):
            return prog0() if rank == 0 else prog1()

        result = Engine(QUIET, Topology(2, 1)).run(factory)
        assert result.outputs[1] == ("inner", "outer")
