"""The JSONL request loop behind ``mpicollpred serve``."""

from __future__ import annotations

import io
import json

from repro.serve import handle_request, serve_lines

from tests.serve.conftest import make_rules_text


def run_lines(service, lines: list[str]) -> list[dict]:
    out = io.StringIO()
    serve_lines(service, lines, out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestHandleRequest:
    def test_recommend_echoes_id(self, service):
        response = handle_request(
            service,
            {"id": 7, "collective": "bcast", "nodes": 4, "ppn": 2,
             "msize": 64},
        )
        assert response["ok"] and response["id"] == 7
        assert response["algid"] >= 0 and response["source"] == "model"

    def test_msize_accepts_unit_strings(self, service):
        response = handle_request(
            service,
            {"collective": "bcast", "nodes": 4, "ppn": 2, "msize": "64K"},
        )
        assert response["ok"] and response["msize"] == 65536

    def test_recommend_many(self, service):
        response = handle_request(
            service,
            {
                "op": "recommend_many",
                "instances": [
                    {"collective": "bcast", "nodes": n, "ppn": 1, "msize": 64}
                    for n in (2, 4, 8)
                ],
            },
        )
        assert response["ok"]
        assert [r["nodes"] for r in response["results"]] == [2, 4, 8]

    def test_reload_ok_and_rejected(
        self, service, library, tmp_path
    ):
        good = tmp_path / "good.conf"
        good.write_text(make_rules_text(library, "bcast", 4, 2, [(0, 0)]))
        response = handle_request(service, {"op": "reload", "path": str(good)})
        assert response["ok"] and response["collective"] == "bcast"
        bad = handle_request(
            service, {"op": "reload", "path": str(tmp_path / "missing.conf")}
        )
        assert not bad["ok"] and "ReloadError" in bad["error"]

    def test_stats_op(self, service):
        response = handle_request(service, {"op": "stats"})
        assert response["ok"] and "l1" in response["stats"]

    def test_missing_fields_do_not_raise(self, service):
        response = handle_request(service, {"collective": "bcast"})
        assert not response["ok"]

    def test_unknown_op(self, service):
        response = handle_request(service, {"op": "compress"})
        assert not response["ok"] and "unknown op" in response["error"]

    def test_unknown_collective(self, service):
        response = handle_request(
            service,
            {"collective": "scan", "nodes": 2, "ppn": 1, "msize": 8},
        )
        assert not response["ok"]


class TestServeLines:
    def test_bad_lines_keep_the_loop_alive(self, service):
        responses = run_lines(
            service,
            [
                "not json at all",
                "",
                '{"collective": "bcast", "nodes": 2, "ppn": 1, "msize": 8}',
                '[1, 2, 3]',
            ],
        )
        # blank line skipped; bad lines answered; good line served
        assert [r["ok"] for r in responses] == [False, True, False]

    def test_quit_stops_early(self, service):
        responses = run_lines(
            service,
            [
                '{"op": "quit"}',
                '{"collective": "bcast", "nodes": 2, "ppn": 1, "msize": 8}',
            ],
        )
        assert len(responses) == 1 and responses[0]["bye"]

    def test_responses_mirror_requests_in_order(self, service):
        lines = [
            json.dumps(
                {"id": i, "collective": "bcast", "nodes": 2 + i, "ppn": 1,
                 "msize": 64}
            )
            for i in range(5)
        ]
        responses = run_lines(service, lines)
        assert [r["id"] for r in responses] == list(range(5))
