"""The JSONL request loop behind ``mpicollpred serve``."""

from __future__ import annotations

import io
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.zoo import tiny_testbed
from repro.serve import ModelRegistry, PredictionService, handle_request, serve_lines

from tests.serve.conftest import make_rules_text


def run_lines(service, lines: list[str]) -> list[dict]:
    out = io.StringIO()
    serve_lines(service, lines, out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestHandleRequest:
    def test_recommend_echoes_id(self, service):
        response = handle_request(
            service,
            {"id": 7, "collective": "bcast", "nodes": 4, "ppn": 2,
             "msize": 64},
        )
        assert response["ok"] and response["id"] == 7
        assert response["algid"] >= 0 and response["source"] == "model"

    def test_msize_accepts_unit_strings(self, service):
        response = handle_request(
            service,
            {"collective": "bcast", "nodes": 4, "ppn": 2, "msize": "64K"},
        )
        assert response["ok"] and response["msize"] == 65536

    def test_recommend_many(self, service):
        response = handle_request(
            service,
            {
                "op": "recommend_many",
                "instances": [
                    {"collective": "bcast", "nodes": n, "ppn": 1, "msize": 64}
                    for n in (2, 4, 8)
                ],
            },
        )
        assert response["ok"]
        assert [r["nodes"] for r in response["results"]] == [2, 4, 8]

    def test_reload_ok_and_rejected(
        self, service, library, tmp_path
    ):
        good = tmp_path / "good.conf"
        good.write_text(make_rules_text(library, "bcast", 4, 2, [(0, 0)]))
        response = handle_request(service, {"op": "reload", "path": str(good)})
        assert response["ok"] and response["collective"] == "bcast"
        bad = handle_request(
            service, {"op": "reload", "path": str(tmp_path / "missing.conf")}
        )
        assert not bad["ok"] and "ReloadError" in bad["error"]

    def test_stats_op(self, service):
        response = handle_request(service, {"op": "stats"})
        assert response["ok"] and "l1" in response["stats"]

    def test_missing_fields_do_not_raise(self, service):
        response = handle_request(service, {"collective": "bcast"})
        assert not response["ok"]

    def test_unknown_op(self, service):
        response = handle_request(service, {"op": "compress"})
        assert not response["ok"] and "unknown op" in response["error"]

    def test_unknown_collective(self, service):
        response = handle_request(
            service,
            {"collective": "scan", "nodes": 2, "ppn": 1, "msize": 8},
        )
        assert not response["ok"]


#: msizes as the JSONL loop receives them: raw ints, numeric strings,
#: and the unit suffixes parse_bytes accepts (binary multipliers)
_msizes = st.one_of(
    st.integers(min_value=0, max_value=1 << 22),
    st.sampled_from(
        ["64KiB", "1M", "512", "4K", "2M", "65536", "0", "262144", "1MiB"]
    ),
)


class TestRecommendManyParity:
    """Batch and scalar JSONL answers agree for any msize spelling."""

    @settings(max_examples=20, deadline=None)
    @given(
        msizes=st.lists(_msizes, min_size=1, max_size=12),
        compiled=st.booleans(),
    )
    def test_recommend_many_matches_scalar(
        self, library, tuned_bcast, msizes, compiled
    ):
        registry = ModelRegistry(tiny_testbed, library)
        registry.publish(tuned_bcast.servable(), tag="t")
        service = PredictionService(registry, compiled=compiled)
        instances = [
            {"collective": "bcast", "nodes": 2 + (i % 3) * 2, "ppn": 1,
             "msize": m}
            for i, m in enumerate(msizes)
        ]
        batch = handle_request(
            service, {"op": "recommend_many", "instances": instances}
        )
        assert batch["ok"]
        fields = ("algid", "algorithm", "params", "label", "msize",
                  "source", "version")
        for inst, got in zip(instances, batch["results"], strict=True):
            scalar = handle_request(service, dict(inst))
            assert scalar["ok"]
            assert {f: got[f] for f in fields} == {
                f: scalar[f] for f in fields
            }


class TestServeLines:
    def test_bad_lines_keep_the_loop_alive(self, service):
        responses = run_lines(
            service,
            [
                "not json at all",
                "",
                '{"collective": "bcast", "nodes": 2, "ppn": 1, "msize": 8}',
                '[1, 2, 3]',
            ],
        )
        # blank line skipped; bad lines answered; good line served
        assert [r["ok"] for r in responses] == [False, True, False]

    def test_quit_stops_early(self, service):
        responses = run_lines(
            service,
            [
                '{"op": "quit"}',
                '{"collective": "bcast", "nodes": 2, "ppn": 1, "msize": 8}',
            ],
        )
        assert len(responses) == 1 and responses[0]["bye"]

    def test_responses_mirror_requests_in_order(self, service):
        lines = [
            json.dumps(
                {"id": i, "collective": "bcast", "nodes": 2 + i, "ppn": 1,
                 "msize": 64}
            )
            for i in range(5)
        ]
        responses = run_lines(service, lines)
        assert [r["id"] for r in responses] == list(range(5))
