"""The L0 compiled decision tables: lowering, parity, hot-reload, stats.

The tier's contract is "never guesses": a compiled answer must be
bit-identical to what the interpreted path below it would have said,
and anything the flat table cannot prove falls through with ``-1``.
Every test here is some instance of that contract — against the cold
tuner oracle, against the interpreted rules bracket at its edges,
across the C kernel / numpy twin / scalar Python triple, and across a
hot-reload swapping the table out from under a warm service.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.zoo import tiny_testbed
from repro.ml import _ckernel
from repro.ml.kernels import table_lookup_numpy
from repro.obs import get_telemetry
from repro.serve import (
    ModelRegistry,
    PredictionService,
    RuleSet,
    compile_rules_model,
    compile_servable,
)

from tests.serve.conftest import make_rules_text
from tests.serve.test_property_oracle import GRIDS, instances, oracle


def _rules_model(library, picks):
    text = make_rules_text(library, "bcast", 8, 2, picks)
    return RuleSet.parse(text).resolve(library)


def _numpy_twin(table, nodes, ppn, msize):
    return table_lookup_numpy(
        np.asarray(nodes, dtype=np.int64),
        np.asarray(ppn, dtype=np.int64),
        np.asarray(msize, dtype=np.int64),
        table.node_index, table.ppn_index,
        table.msize_lo, table.msize_hi, table.cells,
    )


class TestRulesLowering:
    """Compiled rules tables agree with the interpreted bracket."""

    def test_bracket_edges_byte_identical(self, library):
        model = _rules_model(library, [(0, 0), (1024, 1), (65536, 2)])
        table = compile_rules_model(model, version=1)
        probes = []
        for m, *_ in model.rule_set.rules:
            probes.extend((max(m - 1, 0), m, m + 1))
        probes.extend((0, 1, 511, 513, 1 << 30, (1 << 62) + 5))
        want = model.select_configs(
            None, None, np.asarray(probes, dtype=np.int64)
        )
        for msize, expected in zip(probes, want, strict=True):
            cid = table.lookup(0, 0, msize)
            assert cid >= 0, f"rules bucket uncovered at msize={msize}"
            assert table.configs[cid] == expected, f"msize={msize}"

    def test_power_of_two_boundaries_cover_every_bucket(self, library):
        model = _rules_model(library, [(0, 0), (1024, 1), (65536, 2)])
        table = compile_rules_model(model, version=1)
        cov = table.coverage()
        assert cov["buckets"] == 64 and cov["partial_buckets"] == 0

    def test_unaligned_boundary_splits_a_bucket(self, library):
        # 1000 lies inside bucket 10 (512..1023): the bucket is admitted
        # only up to 999 and the interpreted path owns the remainder
        model = _rules_model(library, [(0, 0), (1000, 1)])
        table = compile_rules_model(model, version=1)
        assert table.partial_buckets == 1
        assert table.lookup(0, 0, 999) >= 0
        assert table.lookup(0, 0, 1000) == -1
        assert table.lookup(0, 0, 1023) == -1
        assert table.lookup(0, 0, 1024) >= 0

    def test_beyond_int64_falls_through(self, library):
        model = _rules_model(library, [(0, 0)])
        table = compile_rules_model(model, version=1)
        assert table.lookup(0, 0, 1 << 70) == -1
        assert table.lookup(0, 0, (1 << 63) - 1) >= 0

    def test_empty_rules_refuse_to_compile(self):
        from repro.collectives.base import CollectiveKind
        from repro.serve.rules import RulesModel

        empty = RulesModel(
            rule_set=RuleSet(
                collective=CollectiveKind.BCAST, nodes=4, ppn=2, rules=()
            ),
            configs=(),
        )
        with pytest.raises(ValueError, match="empty rules"):
            compile_rules_model(empty, version=1)

    @settings(max_examples=25, deadline=None)
    @given(
        cuts=st.lists(
            st.integers(min_value=1, max_value=1 << 22),
            min_size=0, max_size=5, unique=True,
        ),
        msizes=st.lists(
            st.integers(min_value=0, max_value=1 << 23),
            min_size=1, max_size=16,
        ),
        data=st.data(),
    )
    def test_random_tables_never_disagree(self, library, cuts, msizes, data):
        space_len = len(library.config_space("bcast").configs)
        bounds = sorted({0, *cuts})
        picks = [
            (m, data.draw(st.integers(0, space_len - 1), label=f"cfg@{m}"))
            for m in bounds
        ]
        model = _rules_model(library, picks)
        table = compile_rules_model(model, version=1)
        # probe the drawn msizes plus every boundary's neighbourhood
        probes = list(msizes)
        for b in bounds:
            probes.extend((max(b - 1, 0), b, b + 1))
        want = model.select_configs(
            None, None, np.asarray(probes, dtype=np.int64)
        )
        for msize, expected in zip(probes, want, strict=True):
            cid = table.lookup(0, 0, msize)
            if cid >= 0:
                assert table.configs[cid] == expected, f"msize={msize}"


class TestLookupPathParity:
    """C kernel, numpy twin and scalar Python return the same bits."""

    @pytest.fixture(scope="class")
    def table(self, library, tuned_bcast):
        return compile_servable(tuned_bcast.servable(), version=1)

    def _probe_columns(self):
        rng = np.random.default_rng(3)
        n = rng.integers(0, 12, size=256)
        p = rng.integers(0, 6, size=256)
        m = rng.choice(
            [0, 1, 63, 64, 65, 4096, 262143, 262144, 262145, 1 << 21,
             (1 << 62) + 5],
            size=256,
        )
        return (n.astype(np.int64), p.astype(np.int64), m.astype(np.int64))

    def test_scalar_matches_vector(self, table):
        nodes, ppn, msize = self._probe_columns()
        got = table.lookup_many(nodes, ppn, msize)
        for k in range(len(msize)):
            assert got[k] == table.lookup(
                int(nodes[k]), int(ppn[k]), int(msize[k])
            )

    def test_numpy_twin_matches_vector(self, table):
        nodes, ppn, msize = self._probe_columns()
        got = table.lookup_many(nodes, ppn, msize)
        twin = _numpy_twin(table, nodes, ppn, msize)
        np.testing.assert_array_equal(got, twin)

    @pytest.mark.skipif(
        not _ckernel.available(), reason="no C toolchain in this build"
    )
    def test_c_kernel_matches_numpy_twin(self, table):
        nodes, ppn, msize = self._probe_columns()
        fixed = _ckernel.table_fixed_args(
            table.node_index, table.ppn_index,
            table.msize_lo, table.msize_hi, table.cells,
        )
        got = _ckernel.table_lookup(nodes, ppn, msize, fixed)
        np.testing.assert_array_equal(
            got, _numpy_twin(table, nodes, ppn, msize)
        )


class TestSurfaceLowering:
    def test_only_exact_grid_points_admitted(self, library, tuned_bcast):
        servable = tuned_bcast.servable()
        table = compile_servable(servable, version=1)
        nodes, ppns, msizes = servable.grid_axes
        for n in nodes:
            for p in ppns:
                for m in msizes:
                    cid = table.lookup(n, p, m)
                    assert cid >= 0
                    (want,) = servable.select_configs(
                        np.asarray([n]), np.asarray([p]), np.asarray([m])
                    )
                    assert table.configs[cid] == want
        # off-grid in any coordinate -> fall through
        assert table.lookup(3, 1, 64) == -1       # nodes off-axis
        assert table.lookup(2, 3, 64) == -1       # ppn off-axis
        assert table.lookup(2, 1, 100) == -1      # msize off-axis
        assert table.lookup(10**8, 1, 64) == -1   # beyond the index map

    def test_uncompilable_servable_returns_none(self, library, tuned_bcast):
        class Opaque:
            collective = "bcast"
            grid_axes = ((2,), (1,), (64,))

            def select_configs(self, nodes, ppn, msize):
                return [None] * len(msize)

            def describe(self):
                return "opaque"

        assert compile_servable(Opaque(), version=1) is None


class TestCompiledService:
    """The L0 tier inside PredictionService: identity, stats, reloads."""

    @settings(max_examples=10, deadline=None)
    @given(
        grid_idx=st.integers(min_value=0, max_value=len(GRIDS) - 1),
        seed=st.integers(min_value=0, max_value=1),
        queries=st.lists(instances, min_size=1, max_size=8),
    )
    def test_bit_identical_to_cold_tuner(self, grid_idx, seed, queries):
        tuner = oracle(grid_idx, seed)
        registry = ModelRegistry(tiny_testbed, tuner.library)
        registry.publish(tuner.servable(), tag="oracle")
        service = PredictionService(registry, compiled=True)
        expected = [tuner.recommend(n, p, m) for n, p, m in queries]
        for (n, p, m), want in zip(queries, expected, strict=True):
            assert service.recommend("bcast", n, p, m).config == want
        batch = service.recommend_many(
            [("bcast", n, p, m) for n, p, m in queries]
        )
        assert [rec.config for rec in batch] == expected

    def test_on_grid_queries_served_compiled(self, registry, tuned_bcast):
        registry.publish(tuned_bcast.servable(), tag="t")
        service = PredictionService(registry, compiled=True)
        nodes, ppns, msizes = tuned_bcast.servable().grid_axes
        grid = [
            ("bcast", n, p, m)
            for n in nodes for p in ppns for m in msizes
        ]
        for rec in service.recommend_many(grid):
            assert rec.compiled and not rec.cached
            assert rec.source == "model"
        # scalar path agrees and is also compiled
        rec = service.recommend("bcast", nodes[0], ppns[0], msizes[0])
        assert rec.compiled

    def test_rules_service_identical_with_and_without_tier(
        self, library, tmp_path
    ):
        path = tmp_path / "r.conf"
        path.write_text(
            make_rules_text(library, "bcast", 8, 2, [(0, 0), (4096, 1)])
        )
        queries = [
            ("bcast", n, p, m)
            for n in (1, 2, 8) for p in (1, 2)
            for m in (0, 1, 4095, 4096, 4097, 1 << 20, (1 << 62) + 5)
        ]
        answers = {}
        for compiled in (False, True):
            registry = ModelRegistry(tiny_testbed, library)
            registry.load_rules(path)
            service = PredictionService(registry, compiled=compiled)
            recs = service.recommend_many(queries)
            answers[compiled] = [
                (r.config, r.source, r.version) for r in recs
            ]
            scalars = [service.recommend(*q) for q in queries]
            assert [
                (r.config, r.source, r.version) for r in scalars
            ] == answers[compiled]
        assert answers[False] == answers[True]

    def test_mixed_collectives_and_overflow_in_one_batch(
        self, registry, tuned_bcast, library, tmp_path
    ):
        registry.publish(tuned_bcast.servable(), tag="t")
        service = PredictionService(registry, compiled=True)
        plain = PredictionService(registry)
        batch = [
            ("bcast", 2, 1, 64),           # on-grid: compiled
            ("bcast", 2, 1, (1 << 62) + 5),  # bucket 63, off-grid
            ("bcast", 3, 1, 64),           # off-grid: interpreted
        ]
        got = service.recommend_many(batch)
        want = plain.recommend_many(batch)
        assert [r.config for r in got] == [r.config for r in want]
        assert [r.compiled for r in got] == [True, False, False]
        # beyond int64 the interpreted path has always raised
        # OverflowError; the compiled tier must not change that, and
        # must not take the rest of the group down with it either
        with pytest.raises(OverflowError):
            plain.recommend_many([("bcast", 2, 1, 1 << 70)])
        with pytest.raises(OverflowError):
            service.recommend_many([("bcast", 2, 1, 1 << 70)])
        ok = service.recommend_many(
            [("bcast", 2, 1, 64), ("bcast", 4, 1, 4096)]
        )
        assert all(r.compiled for r in ok)

    def test_hot_reload_swaps_the_table(self, library, tmp_path):
        a = tmp_path / "a.conf"
        b = tmp_path / "b.conf"
        a.write_text(make_rules_text(library, "bcast", 4, 2, [(0, 0)]))
        b.write_text(make_rules_text(library, "bcast", 4, 2, [(0, 1)]))
        registry = ModelRegistry(tiny_testbed, library)
        v1 = registry.load_rules(a)
        service = PredictionService(registry, compiled=True)
        first = service.recommend("bcast", 4, 2, 64)
        assert first.compiled and first.version == v1.version
        v2 = registry.load_rules(b)
        second = service.recommend("bcast", 4, 2, 64)
        assert second.compiled and second.version == v2.version
        assert second.config != first.config
        space = library.config_space("bcast").configs
        assert (first.config, second.config) == (space[0], space[1])

    def test_counters_and_stats_block(self, library, tmp_path):
        path = tmp_path / "r.conf"
        # the 1000 boundary splits bucket 10: msizes 1000..1023 are the
        # fallthrough to the interpreted path below
        path.write_text(
            make_rules_text(library, "bcast", 4, 2, [(0, 0), (1000, 1)])
        )
        registry = ModelRegistry(tiny_testbed, library)
        registry.load_rules(path)
        service = PredictionService(registry, compiled=True)
        before = get_telemetry().counters_snapshot()
        service.recommend("bcast", 4, 2, 64)
        service.recommend_many(
            [("bcast", 4, 2, 64), ("bcast", 4, 2, 1010)]
        )
        after = get_telemetry().counters_snapshot()

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("serve.compiled.hit") == 2
        assert delta("serve.compiled.fallthrough") == 1
        assert delta("serve.compiled.builds") == 1
        stats = service.stats()["compiled"]
        assert stats["enabled"]
        assert stats["hits"] >= 2 and stats["fallthroughs"] >= 1
        table = stats["tables"]["bcast"]
        assert table["version"] >= 1 and table["buckets"] == 64

    def test_disabled_tier_reports_disabled(self, service):
        stats = service.stats()["compiled"]
        assert not stats["enabled"] and stats["tables"] == {}

    def test_publish_probe_rejects_nothing_valid(self, library, registry):
        # every fabricated-but-valid rules file must pass the publish-time
        # compiled/interpreted agreement probe
        for picks in ([(0, 0)], [(0, 2), (777, 1)], [(0, 1), (64, 0),
                                                     (4096, 2)]):
            text = make_rules_text(library, "bcast", 8, 2, picks)
            registry.publish(
                RuleSet.parse(text).resolve(library), source="rules"
            )
