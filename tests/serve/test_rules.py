"""Rule-set models: parsing, resolution, bracket lookup, golden round trips."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.collectives.base import CollectiveKind
from repro.serve.rules import (
    RuleSet,
    RulesResolutionError,
    config_rule_key,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_FILES = ["quickstart_rules.conf", "hydra_bcast_rules.conf"]


class TestParsing:
    def test_recovers_allocation_from_comment(self):
        text = Path(REPO_ROOT / "hydra_bcast_rules.conf").read_text()
        rs = RuleSet.parse(text)
        assert (rs.nodes, rs.ppn) == (34, 32)
        assert rs.comm_size == 1088
        assert rs.collective is CollectiveKind.BCAST

    def test_commentless_file_degrades_to_ppn_1(self, library):
        space = library.config_space("bcast").configs
        algid, fanout, seg = config_rule_key(space[0])
        text = (
            "1\n7\n1\n6\n1\n"
            f"0 {algid} {fanout} {seg}\n"
        )
        rs = RuleSet.parse(text)
        assert (rs.nodes, rs.ppn) == (6, 1)

    def test_contradictory_comment_rejected(self):
        text = Path(REPO_ROOT / "quickstart_rules.conf").read_text()
        assert "(3 nodes x 3 ppn)" in text
        broken = text.replace("(3 nodes x 3 ppn)", "(4 nodes x 3 ppn)")
        with pytest.raises(ValueError, match="contradicts"):
            RuleSet.parse(broken)


class TestGoldenRoundTrips:
    """The committed rules files re-emit byte-for-byte."""

    @pytest.mark.parametrize("name", GOLDEN_FILES)
    def test_parse_render_byte_stable(self, name, library):
        text = (REPO_ROOT / name).read_text()
        assert RuleSet.parse(text).render(library) == text

    @pytest.mark.parametrize("name", GOLDEN_FILES)
    def test_double_round_trip_fixed_point(self, name, library):
        text = (REPO_ROOT / name).read_text()
        once = RuleSet.parse(text).render(library)
        assert RuleSet.parse(once).render(library) == once

    @pytest.mark.parametrize("name", GOLDEN_FILES)
    def test_model_validates(self, name, library):
        model = RuleSet.load(REPO_ROOT / name).resolve(library)
        model.validate(library)  # must not raise

    @pytest.mark.parametrize("name", GOLDEN_FILES)
    def test_hot_reload_preserves_every_selection(
        self, name, registry, library
    ):
        """Serving a golden file through the registry loses no rule."""
        from repro.serve import PredictionService

        rs = RuleSet.load(REPO_ROOT / name)
        version = registry.load_rules(REPO_ROOT / name)
        service = PredictionService(registry)
        for msize, algid, fanout, seg in rs.rules:
            rec = service.recommend(rs.collective, rs.nodes, rs.ppn, msize)
            assert rec.version == version.version
            assert config_rule_key(rec.config) == (algid, fanout, seg)


class TestResolution:
    def test_unknown_triple_rejected(self, library):
        text = "1\n7\n1\n4\n1\n0 99 0 0\n"
        with pytest.raises(RulesResolutionError, match="algid=99"):
            RuleSet.parse(text).resolve(library)

    def test_unsorted_msizes_rejected(self, library):
        space = library.config_space("bcast").configs
        algid, fanout, seg = config_rule_key(space[0])
        text = (
            "1\n7\n1\n4\n2\n"
            f"1024 {algid} {fanout} {seg}\n"
            f"0 {algid} {fanout} {seg}\n"
        )
        with pytest.raises(RulesResolutionError, match="sorted"):
            RuleSet.parse(text).resolve(library)


class TestBracketLookup:
    """coll_tuned semantics: largest rule msize <= query wins."""

    @pytest.fixture(scope="class")
    def model(self, library):
        return RuleSet.load(REPO_ROOT / "quickstart_rules.conf").resolve(
            library
        )

    def test_exact_rule_sizes_hit_their_rule(self, model):
        msizes = [m for m, _, _, _ in model.rule_set.rules]
        picks = model.select_configs(
            None, None, np.asarray(msizes, dtype=np.int64)
        )
        for (_, algid, fanout, seg), config in zip(
            model.rule_set.rules, picks, strict=True
        ):
            assert config_rule_key(config) == (algid, fanout, seg)

    def test_between_rules_uses_lower_bracket(self, model):
        # quickstart has rules at 16 and 256: 100 brackets to 16's rule
        (pick,) = model.select_configs(None, None, np.asarray([100]))
        by_msize = {m: (a, f, s) for m, a, f, s in model.rule_set.rules}
        assert config_rule_key(pick) == by_msize[16]

    def test_below_first_rule_uses_first(self, library):
        space = library.config_space("bcast").configs
        keys = [config_rule_key(c) for c in space]
        # two distinct rules starting above zero
        text = (
            "1\n7\n1\n4\n2\n"
            f"64 {keys[0][0]} {keys[0][1]} {keys[0][2]}\n"
            f"1024 {keys[1][0]} {keys[1][1]} {keys[1][2]}\n"
        )
        model = RuleSet.parse(text).resolve(library)
        (pick,) = model.select_configs(None, None, np.asarray([1]))
        assert config_rule_key(pick) == keys[0]

    def test_above_last_rule_uses_last(self, model):
        (pick,) = model.select_configs(None, None, np.asarray([1 << 30]))
        last = model.rule_set.rules[-1]
        assert config_rule_key(pick) == (last[1], last[2], last[3])


class TestCompiledBracketEdges:
    """The compiled lowering agrees with the bracket exactly at its edges.

    Bracket-edge bugs are off-by-one bugs: a query *exactly on* a rule
    boundary, one byte below the first rule, or far above the last one
    is where ``bisect_right`` conventions bite. The compiled table must
    agree with the interpreted lookup byte-for-byte on all of them (or
    decline to answer — never differ).
    """

    @pytest.fixture(scope="class")
    def model(self, library):
        return RuleSet.load(REPO_ROOT / "quickstart_rules.conf").resolve(
            library
        )

    @pytest.fixture(scope="class")
    def table(self, model):
        from repro.serve.compiled import compile_rules_model

        return compile_rules_model(model, version=1)

    def _agree(self, model, table, msizes):
        want = model.select_configs(
            None, None, np.asarray(msizes, dtype=np.int64)
        )
        for msize, expected in zip(msizes, want, strict=True):
            cid = table.lookup(0, 0, msize)
            if cid >= 0:
                assert table.configs[cid] == expected, f"msize={msize}"
        return [table.lookup(0, 0, m) for m in msizes]

    def test_exactly_on_every_boundary(self, model, table):
        bounds = [m for m, _, _, _ in model.rule_set.rules]
        self._agree(model, table, bounds)

    def test_one_off_every_boundary(self, model, table):
        bounds = [m for m, _, _, _ in model.rule_set.rules]
        probes = [max(m - 1, 0) for m in bounds] + [m + 1 for m in bounds]
        self._agree(model, table, probes)

    def test_below_first_bracket(self, library):
        from repro.serve.compiled import compile_rules_model

        space = library.config_space("bcast").configs
        keys = [config_rule_key(c) for c in space]
        text = (
            "1\n7\n1\n4\n2\n"
            f"64 {keys[0][0]} {keys[0][1]} {keys[0][2]}\n"
            f"1024 {keys[1][0]} {keys[1][1]} {keys[1][2]}\n"
        )
        model = RuleSet.parse(text).resolve(library)
        table = compile_rules_model(model, version=1)
        # below the first rule the bracket clips to rule 0 — and so
        # must every covered compiled cell down there
        cids = self._agree(model, table, [0, 1, 63])
        assert all(c >= 0 for c in cids)

    def test_above_last_bracket(self, model, table):
        top = max(m for m, _, _, _ in model.rule_set.rules)
        self._agree(
            model, table,
            [top + 1, top * 2, 1 << 40, (1 << 62) + 5, (1 << 63) - 1],
        )
