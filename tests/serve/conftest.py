"""Shared fixtures for the serving-layer suite."""

from __future__ import annotations

import pytest

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import GridSpec
from repro.core.config_gen import render_ompi_rules
from repro.core.tuner import AutoTuner
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library
from repro.serve import ModelRegistry, PredictionService


@pytest.fixture(scope="session")
def library():
    return get_library("Open MPI")


@pytest.fixture(scope="session")
def tuned_bcast(library):
    """A small trained bcast tuner (the oracle the service must match)."""
    tuner = AutoTuner(
        tiny_testbed,
        library,
        "bcast",
        learner="KNN",
        bench_spec=BenchmarkSpec(max_nreps=5),
        seed=1,
    )
    tuner.benchmark(
        GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=(64, 4096, 262144))
    )
    tuner.train()
    return tuner


@pytest.fixture
def registry(library):
    return ModelRegistry(tiny_testbed, library)


@pytest.fixture
def service(registry, tuned_bcast):
    registry.publish(tuned_bcast.servable(), tag="tuned-bcast")
    return PredictionService(registry)


def make_rules_text(
    library, collective: str, nodes: int, ppn: int,
    picks: list[tuple[int, int]],
) -> str:
    """Render a valid rules file choosing configs by space index.

    ``picks`` is ``[(msize, config_index)]`` into the library's config
    space for ``collective`` — a cheap way to fabricate distinct valid
    rule sets without training anything.
    """
    space = library.config_space(collective).configs
    table = [(msize, space[idx]) for msize, idx in picks]
    return render_ompi_rules(collective, nodes, ppn, table)
