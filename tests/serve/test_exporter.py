"""Prometheus exporter: naming, escaping, type lines, golden bytes.

The golden file pins the exporter's exact output for a fixed snapshot:
any change to metric naming, ordering, or formatting shows up as a
golden diff — scrape consumers (dashboards, recording rules) depend on
those names being stable across releases.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.obs import Histogram
from repro.serve.exporter import (
    escape_help,
    escape_label_value,
    render_counter,
    render_gauge,
    render_histogram,
    render_prometheus,
    sanitize_metric_name,
)

GOLDEN = Path(__file__).parent / "data" / "metrics.golden.txt"

#: metric line: name, optional {labels}, space, value
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf)|NaN)$"
)


def _snapshot():
    """The fixed telemetry state the golden file renders."""
    latency = Histogram("fleet.request_latency_us", bounds=(10.0, 100.0, 1000.0))
    for value in (3.0, 7.0, 55.0, 250.0, 250.0, 5000.0):
        latency.observe(value)
    empty = Histogram("fleet.reload_pause_us", bounds=(100.0, 10000.0))
    counters = {
        "serve.compiled.hit": 1203,
        "serve.compiled.fallthrough": 47,
        "serve.l1.hits": 912,
        "serve.l1.stale": 3,
        "serve.requests": 2162,
        "bench.retry": 5,
        "fleet.requests": 2162,
        "fleet.shed": 12,
        "fleet.worker_restarts": 3,
        "serve.feedback.rows": 180,
        "serve.feedback.skipped_lines": 1,
        "serve.feedback.stale_rows": 4,
        "serve.feedback.errors": 0,
        "serve.feedback.guideline_violations": 2,
    }
    gauges = {
        "fleet.workers": 4,
        "fleet.workers_alive": 3,
        "fleet.breakers_open": 1,
        "fleet.queue_depth": {
            'worker="0"': 2,
            'worker="1"': 0,
            'worker="2"': 117,
            'worker="3"': 0,
        },
        "serve.l1.fill_ratio": 0.625,
        "serve.drift.residual_median": {
            'collective="bcast",version="1"': 0.71,
            'collective="bcast",version="2"': 0.02,
        },
        "serve.drift.residual_mad": {
            'collective="bcast",version="1"': 0.09,
            'collective="bcast",version="2"': 0.05,
        },
        "serve.drift.samples": {
            'collective="bcast",version="1"': 512,
            'collective="bcast",version="2"': 36,
        },
    }
    histograms = {
        "fleet.request_latency_us": latency.snapshot(),
        "fleet.reload_pause_us": empty.snapshot(),
    }
    help_texts = {
        "serve.compiled.hit": "requests answered by the compiled L0 table",
        "fleet.request_latency_us": "front-end request latency (us)",
        "fleet.shed": "requests shed at the queue high-water mark",
        "fleet.worker_restarts": "dead workers respawned and warm-restored",
        "fleet.queue_depth": "in-flight requests per worker",
        "serve.feedback.rows": "feedback rows appended by the serve loop",
        "serve.drift.residual_median": (
            "median log(observed/predicted) per (collective, version)"
        ),
    }
    return counters, gauges, histograms, help_texts


def parse_metric_lines(text: str) -> list[str]:
    """Every non-comment, non-blank line; asserts each is well-formed."""
    lines = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _METRIC_LINE.match(line), f"malformed metric line: {line!r}"
        lines.append(line)
    return lines


class TestNaming:
    def test_dots_flatten_to_underscores(self):
        assert sanitize_metric_name("serve.l1.hits") == "serve_l1_hits"

    def test_invalid_chars_replaced(self):
        assert sanitize_metric_name("serve.l1 hits-EMA") == "serve_l1_hits_EMA"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("99th.pct").startswith("_")

    def test_counter_rename_table_applies(self):
        lines = render_counter("serve.compiled.hit", 5)
        assert "serve_compiled_hits_total 5" in lines
        assert "# TYPE serve_compiled_hits_total counter" in lines

    def test_plain_counter_gets_total_suffix(self):
        lines = render_counter("serve.requests", 7)
        assert "serve_requests_total 7" in lines


class TestEscaping:
    def test_help_escapes_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_label_value_escapes_quote_too(self):
        assert escape_label_value('say "hi"\n') == 'say \\"hi\\"\\n'

    def test_help_line_renders_escaped(self):
        (help_line, *_rest) = render_gauge(
            "g", 1.0, help_text="line one\nline two"
        )
        assert help_line == "# HELP g line one\\nline two"


class TestHistogramRendering:
    def test_buckets_are_cumulative_with_inf(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):
            h.observe(value)
        lines = render_histogram("lat", h.snapshot())
        assert 'lat_bucket{le="1"} 1' in lines
        assert 'lat_bucket{le="10"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_count 3" in lines
        assert any(line.startswith("lat_sum ") for line in lines)

    def test_quantile_gauges_ride_along(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for _ in range(100):
            h.observe(5.0)
        lines = render_histogram("lat", h.snapshot())
        for quantile in ("p50", "p99", "p999"):
            assert f"# TYPE lat_{quantile} gauge" in lines
            assert any(line.startswith(f"lat_{quantile} ") for line in lines)

    def test_empty_histogram_has_no_quantiles(self):
        lines = render_histogram("lat", Histogram("lat").snapshot())
        assert not any("p50" in line for line in lines)
        assert 'lat_bucket{le="+Inf"} 0' in lines


class TestLabeledGauges:
    """Mapping-valued gauges: one labelled series per entry."""

    def test_labelled_series_render_sorted(self):
        lines = render_gauge(
            "fleet.queue_depth",
            {'worker="1"': 5, 'worker="0"': 2},
        )
        assert lines == [
            "# TYPE fleet_queue_depth gauge",
            'fleet_queue_depth{worker="0"} 2',
            'fleet_queue_depth{worker="1"} 5',
        ]

    def test_empty_mapping_still_emits_a_sample(self):
        # a dangling TYPE line with no sample is invalid exposition
        lines = render_gauge("fleet.queue_depth", {})
        assert lines == [
            "# TYPE fleet_queue_depth gauge",
            "fleet_queue_depth 0",
        ]

    def test_labelled_lines_are_wellformed(self):
        text = render_prometheus(
            {},
            {"fleet.queue_depth": {'worker="0"': 1, 'worker="1"': 0.5}},
        )
        lines = parse_metric_lines(text)
        assert 'fleet_queue_depth{worker="0"} 1' in lines
        assert 'fleet_queue_depth{worker="1"} 0.5' in lines

    def test_help_text_applies_to_the_family(self):
        lines = render_gauge(
            "fleet.queue_depth", {'worker="0"': 1}, help_text="depth"
        )
        assert lines[0] == "# HELP fleet_queue_depth depth"


class TestDriftGaugeSeries:
    """DriftDetector.gauges() must plug straight into render_gauge."""

    @pytest.fixture()
    def detector(self):
        from repro.obs.drift import DriftDetector

        det = DriftDetector(min_samples=2, window=8)
        for obs in (2.0, 2.2, 1.9, 2.1):
            det.observe("bcast", 1, obs * 1e-4, 1e-4)
        for obs in (1.0, 1.01):
            det.observe("bcast", 2, obs * 1e-4, 1e-4)
        return det

    def test_label_bodies_key_collective_and_version(self, detector):
        series = detector.gauges()
        assert set(series) == {
            "serve.drift.residual_median",
            "serve.drift.residual_mad",
            "serve.drift.samples",
        }
        for family in series.values():
            assert set(family) == {
                'collective="bcast",version="1"',
                'collective="bcast",version="2"',
            }

    def test_extra_labels_append_to_every_series(self, detector):
        series = detector.gauges(labels='worker="3"')
        body = 'collective="bcast",version="1",worker="3"'
        assert body in series["serve.drift.samples"]
        assert series["serve.drift.samples"][body] == 4.0

    def test_rendered_lines_are_wellformed_and_labelled(self, detector):
        text = render_prometheus({}, detector.gauges(labels='worker="0"'))
        lines = parse_metric_lines(text)
        assert any(
            line.startswith(
                'serve_drift_residual_median{collective="bcast"'
            )
            and ',worker="0"}' in line
            for line in lines
        )
        # one sample per (collective, version) per family
        assert sum(
            line.startswith("serve_drift_samples{") for line in lines
        ) == 2

    def test_median_value_round_trips_through_exposition(self, detector):
        import math

        text = render_prometheus({}, detector.gauges())
        line = next(
            line for line in text.splitlines()
            if line.startswith(
                'serve_drift_residual_median{collective="bcast",version="1"}'
            )
        )
        rendered = float(line.rsplit(" ", 1)[1])
        assert rendered == pytest.approx(math.log(2.05), abs=0.1)


class TestFullRender:
    def test_matches_golden_file(self):
        counters, gauges, histograms, help_texts = _snapshot()
        text = render_prometheus(
            counters, gauges, histograms, help_texts=help_texts
        )
        golden = GOLDEN.read_text().split("# --8<--\n", 1)[1]
        assert text == golden, (
            "exporter output drifted from the golden file; if the change "
            "is intentional, regenerate tests/serve/data/metrics.golden.txt "
            "(see that file's header comment) and review the diff"
        )

    def test_every_metric_line_is_well_formed(self):
        counters, gauges, histograms, help_texts = _snapshot()
        text = render_prometheus(
            counters, gauges, histograms, help_texts=help_texts
        )
        lines = parse_metric_lines(text)
        assert len(lines) > 10

    def test_required_serve_names_present(self):
        counters, gauges, histograms, _ = _snapshot()
        text = render_prometheus(counters, gauges, histograms)
        assert "serve_compiled_hits_total 1203" in text
        assert "fleet_request_latency_us_bucket" in text
        assert text.endswith("# EOF\n")

    def test_sections_sorted_for_stable_diffs(self):
        counters, gauges, histograms, _ = _snapshot()
        text = render_prometheus(counters, gauges, histograms)
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE")
        ]
        counter_metrics = [
            line.split()[2] for line in type_lines
            if line.endswith(" counter")
        ]
        assert counter_metrics == sorted(counter_metrics)

    @pytest.mark.parametrize("value,rendered", [
        (3, "3"), (3.0, "3"), (0.625, "0.625"),
        (float("inf"), "+Inf"), (True, "1"),
    ])
    def test_value_formatting(self, value, rendered):
        assert render_gauge("g", value)[-1] == f"g {rendered}"
