"""Fleet chaos plans and in-worker fault injection.

The plan tests pin the determinism contract (same seed, same campaign
shape -> byte-identical schedule) and the structural guarantees the
smoke harness leans on: every worker killed and crashed exactly once,
strata that never stack faults, the wedge placed exactly at the reload
index, no two events sharing a request index. The worker-op tests
drive ``chaos_garbage``/``chaos_crash`` against a real
:class:`~repro.serve.worker.WorkerState` with ``os._exit`` stubbed —
the real thing is exercised end to end by
``scripts/smoke_fleet_chaos.py``.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.chaos import (
    CHAOS_KINDS,
    CRASH_WINDOW,
    KILL_WINDOW,
    ChaosEvent,
    FleetChaosPlan,
    build_plan,
)
from repro.serve.worker import build_state, handle_chaos_op, serve_worker

from tests.serve.conftest import make_rules_text


class TestChaosPlan:
    def test_same_inputs_same_plan(self):
        assert build_plan(8, 5000, 3) == build_plan(8, 5000, 3)

    def test_different_seed_different_plan(self):
        assert build_plan(1, 5000, 3) != build_plan(2, 5000, 3)

    def test_every_worker_killed_and_crashed_once(self):
        plan = build_plan(8, 5000, 3)
        kills = [e for e in plan.events if e.kind == "kill"]
        crashes = [e for e in plan.events if e.kind == "crash"]
        assert sorted(e.worker for e in kills) == [0, 1, 2]
        assert sorted(e.worker for e in crashes) == [0, 1, 2]

    def test_kills_early_crashes_late(self):
        plan = build_plan(8, 5000, 3)
        n = plan.n_requests
        for event in plan.events:
            if event.kind == "kill":
                assert KILL_WINDOW[0] * n <= event.index < KILL_WINDOW[1] * n
            elif event.kind == "crash":
                assert (
                    CRASH_WINDOW[0] * n <= event.index < CRASH_WINDOW[1] * n
                )

    def test_wedge_lands_exactly_at_reload(self):
        plan = build_plan(8, 5000, 3)
        wedge = plan.at(plan.reload_at)
        assert wedge is not None and wedge.kind == "wedge"

    def test_no_wedge_when_disabled(self):
        plan = build_plan(8, 5000, 3, wedge=False)
        assert all(e.kind != "wedge" for e in plan.events)

    def test_indices_unique_and_sorted(self):
        plan = build_plan(8, 5000, 3)
        indices = [e.index for e in plan.events]
        assert indices == sorted(indices)
        assert len(indices) == len(set(indices))

    def test_at_returns_none_between_events(self):
        plan = build_plan(8, 5000, 3)
        scheduled = {e.index for e in plan.events}
        clean = next(i for i in range(5000) if i not in scheduled)
        assert plan.at(clean) is None

    def test_kinds_summary(self):
        plan = build_plan(8, 5000, 3, garbage_events=2)
        assert plan.kinds() == {
            "kill": 3, "crash": 3, "wedge": 1, "garbage": 2,
        }

    def test_rejects_too_few_requests(self):
        with pytest.raises(ValueError, match="40 requests per worker"):
            build_plan(0, 100, 4)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            build_plan(0, 5000, 0)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32),
        n_workers=st.integers(1, 6),
        scale=st.integers(50, 400),
    )
    def test_invariants_hold_for_any_campaign(self, seed, n_workers, scale):
        n_requests = n_workers * scale
        plan = build_plan(seed, n_requests, n_workers)
        assert plan == build_plan(seed, n_requests, n_workers)
        indices = [e.index for e in plan.events]
        assert len(indices) == len(set(indices))
        assert all(0 <= i < n_requests for i in indices)
        assert all(e.worker < n_workers for e in plan.events)
        kills = sorted(
            e.worker for e in plan.events if e.kind == "kill"
        )
        assert kills == list(range(n_workers))
        wedge = plan.at(plan.reload_at)
        assert wedge is not None and wedge.kind == "wedge"


class TestPlanValidation:
    def test_event_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosEvent(1, "meteor", 0)

    def test_plan_rejects_shared_indices(self):
        events = (ChaosEvent(5, "kill", 0), ChaosEvent(5, "kill", 1))
        with pytest.raises(ValueError, match="share request index"):
            FleetChaosPlan(
                seed=0, n_requests=100, n_workers=2, reload_at=50,
                events=events,
            )

    def test_plan_rejects_out_of_range_event(self):
        with pytest.raises(ValueError, match="outside the request range"):
            FleetChaosPlan(
                seed=0, n_requests=100, n_workers=2, reload_at=50,
                events=(ChaosEvent(100, "kill", 0),),
            )

    def test_plan_rejects_unknown_worker(self):
        with pytest.raises(ValueError, match="outside the fleet"):
            FleetChaosPlan(
                seed=0, n_requests=100, n_workers=2, reload_at=50,
                events=(ChaosEvent(3, "kill", 7),),
            )

    def test_kinds_match_fleet_dispatch(self):
        # Fleet._handle_chaos dispatches exactly these names
        assert set(CHAOS_KINDS) == {"kill", "wedge", "garbage", "crash"}


@pytest.fixture
def chaos_state(tmp_path, library):
    path = tmp_path / "r.conf"
    path.write_text(make_rules_text(library, "bcast", 16, 32, [(0, 1)]))
    return build_state(
        {"worker_id": 5, "machine": "Hydra", "library": "Open MPI",
         "rules": [str(path)], "chaos_ops": True}
    )


class TestWorkerChaosOps:
    def test_gated_off_by_default(self, tmp_path, library):
        path = tmp_path / "r.conf"
        path.write_text(make_rules_text(library, "bcast", 16, 32, [(0, 1)]))
        state = build_state(
            {"worker_id": 0, "machine": "Hydra", "library": "Open MPI",
             "rules": [str(path)]}
        )
        assert state.chaos_ops is False
        out = io.StringIO()
        response = handle_chaos_op(state, {"op": "chaos_garbage"}, out)
        assert response["ok"] is False and "unknown op" in response["error"]
        assert out.getvalue() == ""  # nothing injected

    def test_garbage_emits_unparseable_line_then_answers(self, chaos_state):
        out = io.StringIO()
        response = handle_chaos_op(chaos_state, {"op": "chaos_garbage"}, out)
        assert response["ok"] and response["injected"] == "garbage"
        garbage = out.getvalue()
        assert garbage.endswith("\n")  # skippable: newline-terminated
        with pytest.raises(ValueError):
            json.loads(garbage)

    def test_garbage_through_serve_worker_keeps_rid_sync(self, chaos_state):
        lines = [
            json.dumps({"op": "chaos_garbage", "rid": 1}),
            json.dumps({"op": "ping", "rid": 2}),
            json.dumps({"op": "quit", "rid": 3}),
        ]
        out = io.StringIO()
        serve_worker(chaos_state, lines, out)
        raw = out.getvalue().splitlines()
        parsed, garbage = [], 0
        for line in raw:
            try:
                parsed.append(json.loads(line))
            except ValueError:
                garbage += 1
        assert garbage == 1
        # ready line + three rid-matched answers, all ok
        assert [p.get("rid") for p in parsed] == [None, 1, 2, 3]
        assert all(p["ok"] for p in parsed)

    def test_crash_answers_then_tears_line_then_exits(
        self, chaos_state, monkeypatch
    ):
        import repro.serve.worker as worker_mod

        exits: list[int] = []

        class _Exit(BaseException):
            pass

        def fake_exit(code):
            exits.append(code)
            raise _Exit

        monkeypatch.setattr(worker_mod.os, "_exit", fake_exit)
        out = io.StringIO()
        with pytest.raises(_Exit):
            handle_chaos_op(chaos_state, {"op": "chaos_crash", "rid": 9}, out)
        assert exits == [23]
        full, _, torn = out.getvalue().rpartition("\n")
        # the response went out, rid-stamped, before the death
        response = json.loads(full)
        assert response["ok"] and response["rid"] == 9
        assert response["injected"] == "crash"
        # the tail is a torn, unterminated fragment
        assert torn and not torn.endswith("\n")
        with pytest.raises(ValueError):
            json.loads(torn)

    def test_versions_op_reports_live_registry(self, chaos_state):
        from repro.serve.worker import handle_worker_request

        response = handle_worker_request(chaos_state, {"op": "versions"})
        assert response["ok"]
        assert response["versions"] == {"bcast": 1}
