"""Property: the service is bit-identical to a cold AutoTuner oracle.

For any valid training grid and seed, and any query instance,
``PredictionService.recommend`` (exact mode) must return exactly the
configuration ``AutoTuner.recommend`` returns — cache hit or miss,
serial or threaded. This is the serving layer's core contract: caching
and batching are pure performance, never allowed to change an answer.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import GridSpec
from repro.core.tuner import AutoTuner
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library
from repro.serve import ModelRegistry, PredictionService

GRIDS = [
    ((2, 4), (1, 2), (64, 4096, 262144)),
    ((2, 4, 8), (1, 2), (16, 1024, 65536)),
    ((3, 6), (1, 2, 4), (64, 8192, 1048576)),
]

#: (grid, seed) -> trained AutoTuner; hypothesis revisits combinations,
#: training each oracle once keeps the property affordable
_TUNERS: dict = {}


def oracle(grid_idx: int, seed: int) -> AutoTuner:
    key = (grid_idx, seed)
    tuner = _TUNERS.get(key)
    if tuner is None:
        nodes, ppns, msizes = GRIDS[grid_idx]
        tuner = AutoTuner(
            tiny_testbed,
            get_library("Open MPI"),
            "bcast",
            learner="KNN",
            bench_spec=BenchmarkSpec(max_nreps=3),
            seed=seed,
        )
        tuner.benchmark(GridSpec(nodes, ppns, msizes))
        tuner.train()
        _TUNERS[key] = tuner
    return tuner


instances = st.tuples(
    st.integers(min_value=1, max_value=8),   # nodes
    st.integers(min_value=1, max_value=4),   # ppn
    st.integers(min_value=0, max_value=1 << 22),  # msize
)


@settings(max_examples=12)
@given(
    grid_idx=st.integers(min_value=0, max_value=len(GRIDS) - 1),
    seed=st.integers(min_value=0, max_value=1),
    queries=st.lists(instances, min_size=1, max_size=8),
)
def test_service_bit_identical_to_cold_tuner(grid_idx, seed, queries):
    tuner = oracle(grid_idx, seed)
    registry = ModelRegistry(tiny_testbed, tuner.library)
    registry.publish(tuner.servable(), tag="oracle")
    service = PredictionService(registry)

    expected = [tuner.recommend(n, p, m) for n, p, m in queries]

    # serial, cold cache (first touch = miss)
    for (n, p, m), want in zip(queries, expected, strict=True):
        assert service.recommend("bcast", n, p, m).config == want

    # serial, warm cache (hits must not change the answer)
    for (n, p, m), want in zip(queries, expected, strict=True):
        rec = service.recommend("bcast", n, p, m)
        assert rec.cached
        assert rec.config == want

    # threaded: coalesced/concurrent paths return the same configs
    fresh = PredictionService(registry)  # empty cache -> real batches
    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [
            pool.submit(fresh.recommend, "bcast", n, p, m)
            for n, p, m in queries
        ]
        got = [f.result().config for f in futures]
    assert got == expected

    # and the explicit batch API agrees too
    batch = fresh.recommend_many([("bcast", n, p, m) for n, p, m in queries])
    assert [rec.config for rec in batch] == expected
