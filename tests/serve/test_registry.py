"""ModelRegistry: publish, validate-before-swap, hot-reload, fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives.base import CollectiveKind
from repro.obs import get_telemetry
from repro.serve import (
    ModelRegistry,
    ReloadError,
    RuleSet,
    SelectorModel,
)

from tests.serve.conftest import make_rules_text


class TestPublish:
    def test_versions_are_monotonic(self, registry, library, tmp_path):
        for round_ in (1, 2, 3):
            path = tmp_path / f"r{round_}.conf"
            path.write_text(
                make_rules_text(library, "bcast", 4, 2, [(0, round_)])
            )
            version = registry.load_rules(path)
            assert version.version == round_
        assert registry.get("bcast").version == 3

    def test_publish_selector_model(self, registry, tuned_bcast):
        version = registry.publish(tuned_bcast.servable(), tag="t")
        assert version.source == "selector"
        assert registry.get(CollectiveKind.BCAST) is version

    def test_reload_events_emitted(self, registry, library, tmp_path):
        path = tmp_path / "r.conf"
        path.write_text(make_rules_text(library, "bcast", 4, 2, [(0, 0)]))
        with get_telemetry().capture() as sink:
            registry.load_rules(path)
        reloads = [e for e in sink.events if e.name == "serve_reload"]
        assert len(reloads) == 1
        assert reloads[0].fields["status"] == "ok"
        assert reloads[0].fields["tag"] == "r.conf"

    def test_empty_grid_rejected(self, registry, tuned_bcast):
        model = SelectorModel(
            selector=tuned_bcast.selector_,
            collective=CollectiveKind.BCAST,
            grid_axes=((), (), ()),
        )
        with pytest.raises(ReloadError, match="empty serving grid"):
            registry.publish(model)


class TestRejectedReloads:
    """Invalid candidates must never disturb the live version."""

    @pytest.fixture
    def live(self, registry, library, tmp_path):
        path = tmp_path / "live.conf"
        path.write_text(make_rules_text(library, "bcast", 4, 2, [(0, 0)]))
        return registry.load_rules(path)

    def test_missing_file(self, registry, live, tmp_path):
        with pytest.raises(ReloadError, match="cannot load"):
            registry.load_rules(tmp_path / "nope.conf")
        assert registry.get("bcast") is live

    def test_malformed_file(self, registry, live, tmp_path):
        bad = tmp_path / "bad.conf"
        bad.write_text("this is not a rules file\n")
        with pytest.raises(ReloadError):
            registry.load_rules(bad)
        assert registry.get("bcast") is live

    def test_rule_outside_config_space(self, registry, live, tmp_path):
        bad = tmp_path / "bad.conf"
        bad.write_text("1\n7\n1\n8\n1\n0 99 7 7\n")
        with pytest.raises(ReloadError):
            registry.load_rules(bad)
        assert registry.get("bcast") is live

    def test_rejection_emits_event_and_counter(
        self, registry, live, tmp_path
    ):
        telemetry = get_telemetry()
        before = telemetry.counters_snapshot().get("serve.reload_rejected", 0)
        with telemetry.capture() as sink:
            with pytest.raises(ReloadError):
                registry.load_rules(tmp_path / "nope.conf")
        after = telemetry.counters_snapshot()["serve.reload_rejected"]
        assert after == before + 1
        rejected = [
            e for e in sink.events
            if e.name == "serve_reload" and e.fields["status"] == "rejected"
        ]
        assert rejected


class TestFallback:
    def test_default_config_always_answers(self, registry, library):
        for collective in library.supported_collectives():
            config = registry.default_config(collective, 4, 2, 65536)
            assert config in library.config_space(collective).configs

    def test_get_unpublished_collective_is_none(self, registry):
        assert registry.get("alltoall") is None


class TestSelectorModelProtocol:
    def test_select_matches_selector(self, tuned_bcast):
        model = tuned_bcast.servable()
        nodes = np.asarray([2, 4, 8])
        ppn = np.asarray([1, 2, 1])
        msize = np.asarray([64, 4096, 262144])
        picks = model.select_configs(nodes, ppn, msize)
        for n, p, m, config in zip(nodes, ppn, msize, picks, strict=True):
            assert config == tuned_bcast.selector_.select(
                int(n), int(p), int(m)
            )

    def test_grid_axes_come_from_training_grid(self, tuned_bcast):
        nodes, ppns, msizes = tuned_bcast.servable().grid_axes
        assert nodes == (2, 4, 8)
        assert ppns == (1, 2)
        assert msizes == (64, 4096, 262144)

    def test_surface_shard_matches_recommend_fast(self, tuned_bcast):
        model = tuned_bcast.servable()
        shard = model.build_surface()
        tuned_bcast.build_surface(*model.grid_axes)
        for n, p, m in [(2, 1, 64), (5, 2, 5000), (8, 2, 262144)]:
            assert shard.recommend(n, p, m) == tuned_bcast.recommend_fast(
                n, p, m
            )

    def test_rules_model_allocation_projection(
        self, registry, library, tmp_path
    ):
        # a rules file re-loaded through the registry keeps its table
        text = make_rules_text(
            library, "bcast", 4, 2, [(0, 0), (1024, 3), (65536, 5)]
        )
        path = tmp_path / "t.conf"
        path.write_text(text)
        version = registry.load_rules(path)
        assert version.model.rule_set == RuleSet.parse(text)
