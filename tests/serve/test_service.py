"""PredictionService: cache levels, batching, fallback, surface mode."""

from __future__ import annotations

import pytest

from repro.collectives.base import CollectiveKind
from repro.obs import get_telemetry
from repro.serve import PredictionService
from repro.serve.cache import KeyInterner, LRUCache

from tests.serve.conftest import make_rules_text


def counter(name: str) -> int:
    return get_telemetry().counters_snapshot().get(name, 0)


class TestRecommend:
    def test_matches_oracle_tuner(self, service, tuned_bcast):
        for n, p, m in [(2, 1, 64), (5, 2, 1024), (8, 2, 262144)]:
            rec = service.recommend("bcast", n, p, m)
            assert rec.config == tuned_bcast.recommend(n, p, m)
            assert rec.source == "model"

    def test_second_request_is_a_cache_hit(self, service):
        first = service.recommend("bcast", 4, 2, 4096)
        assert not first.cached
        second = service.recommend("bcast", 4, 2, 4096)
        assert second.cached
        assert second.config == first.config
        assert second.version == first.version

    def test_unpublished_collective_falls_back_to_default(
        self, service, registry
    ):
        before = counter("serve.fallback_default")
        rec = service.recommend("alltoall", 4, 2, 1024)
        assert rec.source == "default"
        assert rec.version == 0
        assert rec.config == registry.default_config("alltoall", 4, 2, 1024)
        assert counter("serve.fallback_default") == before + 1

    def test_msize_zero_and_huge_are_served(self, service):
        assert service.recommend("bcast", 2, 1, 0).config is not None
        assert service.recommend("bcast", 2, 1, 1 << 28).config is not None

    def test_bad_mode_rejected(self, registry):
        with pytest.raises(ValueError, match="mode"):
            PredictionService(registry, mode="warp")


class TestHotReloadInvalidation:
    def test_stale_cache_entries_recomputed_after_swap(
        self, service, registry, library, tmp_path
    ):
        old = service.recommend("bcast", 3, 3, 70000)
        assert service.recommend("bcast", 3, 3, 70000).cached
        # swap in a rules file that forces a fixed selection
        path = tmp_path / "new.conf"
        path.write_text(make_rules_text(library, "bcast", 3, 3, [(0, 2)]))
        new_version = registry.load_rules(path)
        stale_before = counter("serve.l1.stale")
        fresh = service.recommend("bcast", 3, 3, 70000)
        assert fresh.version == new_version.version > old.version
        assert not fresh.cached
        assert counter("serve.l1.stale") == stale_before + 1
        # and the re-served answer now caches under the new version
        assert service.recommend("bcast", 3, 3, 70000).cached


class TestRecommendMany:
    def test_order_and_oracle_equivalence(self, service, tuned_bcast):
        instances = [
            ("bcast", n, p, m)
            for n in (2, 3, 5, 8)
            for p in (1, 2)
            for m in (0, 64, 5000, 262144)
        ]
        recs = service.recommend_many(instances)
        assert len(recs) == len(instances)
        for (_coll, n, p, m), rec in zip(instances, recs, strict=True):
            assert (rec.nodes, rec.ppn, rec.msize) == (n, p, m)
            assert rec.config == tuned_bcast.recommend(n, p, m)

    def test_mixed_collectives_grouped(self, service):
        recs = service.recommend_many(
            [
                ("bcast", 4, 2, 64),
                ("alltoall", 4, 2, 64),
                ("bcast", 4, 2, 1024),
            ]
        )
        assert [str(r.collective) for r in recs] == [
            "bcast", "alltoall", "bcast",
        ]
        assert recs[1].source == "default"

    def test_batch_reuses_cache(self, service):
        service.recommend("bcast", 4, 2, 64)
        recs = service.recommend_many(
            [("bcast", 4, 2, 64), ("bcast", 4, 2, 128)]
        )
        assert recs[0].cached and not recs[1].cached

    def test_one_vectorized_call_per_collective(self, service):
        before = counter("serve.batches")
        service.recommend_many(
            [("bcast", n, 1, 64) for n in range(2, 9)]
        )
        assert counter("serve.batches") == before + 1


class TestSurfaceMode:
    @pytest.fixture
    def surface_service(self, registry, tuned_bcast):
        registry.publish(tuned_bcast.servable(), tag="tuned")
        return PredictionService(registry, mode="surface")

    def test_matches_recommend_fast(self, surface_service, tuned_bcast):
        tuned_bcast.build_surface(
            (2, 4, 8), (1, 2), (64, 4096, 262144)
        )
        for n, p, m in [(2, 1, 64), (3, 2, 900), (8, 2, 1 << 22)]:
            rec = surface_service.recommend("bcast", n, p, m)
            assert rec.config == tuned_bcast.recommend_fast(n, p, m)

    def test_shard_built_lazily_once(self, surface_service):
        before = counter("serve.surface.builds")
        surface_service.recommend("bcast", 2, 1, 64)
        surface_service.recommend("bcast", 4, 2, 4096)
        assert counter("serve.surface.builds") == before + 1

    def test_shard_rebuilt_after_reload(
        self, surface_service, registry, tuned_bcast
    ):
        surface_service.recommend("bcast", 2, 1, 64)
        before = counter("serve.surface.builds")
        registry.publish(tuned_bcast.servable(), tag="v2")
        surface_service.recommend("bcast", 2, 1, 64)
        assert counter("serve.surface.builds") == before + 1

    def test_rules_model_serves_directly_in_surface_mode(
        self, registry, library, tmp_path
    ):
        path = tmp_path / "r.conf"
        path.write_text(make_rules_text(library, "bcast", 4, 2, [(0, 1)]))
        registry.load_rules(path)
        svc = PredictionService(registry, mode="surface")
        before = counter("serve.surface.builds")
        assert svc.recommend("bcast", 4, 2, 64).source == "model"
        assert counter("serve.surface.builds") == before


class TestStats:
    def test_stats_shape(self, service):
        service.recommend("bcast", 2, 1, 64)
        stats = service.stats()
        assert stats["mode"] == "exact"
        assert stats["l1"]["capacity"] == 4096
        assert "bcast" in stats["versions"]
        assert any(k.startswith("serve.") for k in stats["counters"])


class TestCachePrimitives:
    def test_lru_eviction_order(self):
        cache = LRUCache(2, namespace="serve.test")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_lru_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_invalidate_all_and_predicate(self):
        cache = LRUCache(8, namespace="serve.test")
        for i in range(4):
            cache.put(("bcast", i), i)
            cache.put(("alltoall", i), i)
        dropped = cache.invalidate(lambda k: k[0] == "bcast")
        assert dropped == 4
        assert len(cache) == 4
        assert cache.invalidate() == 4
        assert len(cache) == 0

    def test_interner_returns_identical_objects(self):
        interner = KeyInterner()
        k1 = interner.key("bcast", 4, 2, 64)
        k2 = interner.key("bcast", 4, 2, 64)
        assert k1 is k2
        assert k1 == (str(CollectiveKind.BCAST), 4, 2, 64)

    def test_interner_capacity_reset_keeps_correctness(self):
        interner = KeyInterner(capacity=2)
        keys = [interner.key("bcast", n, 1, 0) for n in range(8)]
        again = interner.key("bcast", 7, 1, 0)
        assert again == keys[7]  # equality survives table resets
