"""Fleet: routing, reload barrier, worker protocol, end-to-end socket.

The end-to-end class boots a real 2-worker fleet (subprocesses + socket)
and extends the PR-4/5 reload-under-fire contract to the fleet: client
threads hammer the socket while coordinated reloads flip the live rules
back and forth — zero failed responses, and no response may mix model
versions (every ``recommend_many`` answer is served entirely by one
version, and each client observes versions monotonically).
"""

from __future__ import annotations

import asyncio
import io
import json
import socket
import threading
import time
from collections import Counter

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import get_telemetry
from repro.serve.chaos import (
    strip_provenance,
    verify_bit_identity,
    verify_chaos_invariants,
    verify_reload_contract,
)
from repro.serve.fleet import (
    Fleet,
    FleetSpec,
    FleetThread,
    HashRing,
    WorkerError,
    WorkerHandle,
    _ReloadGate,
    http_get,
)
from repro.serve.registry import ReloadError, StagedModel
from repro.serve.worker import (
    build_state,
    handle_worker_request,
    serve_worker,
)

from tests.serve.conftest import make_rules_text
from tests.serve.test_exporter import parse_metric_lines


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        for n in (1, 2, 4, 8, 16, 32):
            for p in (1, 2, 16, 32):
                assert a.worker_for("bcast", n, p) == b.worker_for(
                    "bcast", n, p
                )

    def test_every_worker_owns_a_share(self):
        ring = HashRing(4)
        owners = Counter(
            ring.worker_for("bcast", nodes, ppn)
            for nodes in range(1, 65)
            for ppn in range(1, 33)
        )
        total = sum(owners.values())
        assert set(owners) == {0, 1, 2, 3}
        # consistent hashing with 64 vnodes/worker: no worker should own
        # a wildly lopsided share of a 2048-key space
        for worker, count in owners.items():
            assert count / total > 0.05, (worker, owners)

    def test_adding_a_worker_moves_a_minority_of_keys(self):
        before, after = HashRing(3), HashRing(4)
        keys = [
            ("bcast", nodes, ppn)
            for nodes in range(1, 65)
            for ppn in range(1, 17)
        ]
        moved = sum(
            1 for key in keys
            if before.worker_for(*key) != after.worker_for(*key)
        )
        # naive modulo routing would move ~3/4 of the keys; consistent
        # hashing moves ~1/4 (the new worker's share)
        assert moved / len(keys) < 0.5

    def test_msize_not_in_routing_key(self):
        # one allocation's whole message-size sweep must share a worker,
        # or compiled tables / LRUs shard pointlessly
        assert "msize" not in HashRing.route_key("bcast", 8, 16)
        ring = HashRing(5)
        workers = {
            ring.worker_for("bcast", 8, 16) for _ in range(3)
        }
        assert len(workers) == 1

    def test_collective_is_in_routing_key(self):
        assert HashRing.route_key("bcast", 8, 16) != HashRing.route_key(
            "allreduce", 8, 16
        )

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            HashRing(0)


class TestFailoverRouting:
    """owners_for: the deterministic failover chain behind self-healing."""

    def test_chain_is_a_full_permutation(self):
        ring = HashRing(4)
        chain = ring.owners_for("bcast", 8, 16)
        assert sorted(chain) == [0, 1, 2, 3]

    def test_chain_head_is_the_home_owner(self):
        ring = HashRing(4)
        assert ring.owners_for("bcast", 8, 16)[0] == ring.worker_for(
            "bcast", 8, 16
        )

    def test_dead_owner_routes_to_next_live_in_chain(self):
        ring = HashRing(4)
        chain = ring.owners_for("bcast", 8, 16)
        alive = [w for w in range(4) if w != chain[0]]
        assert ring.worker_for("bcast", 8, 16, alive=alive) == chain[1]

    def test_key_returns_home_after_respawn(self):
        ring = HashRing(4)
        home = ring.worker_for("bcast", 8, 16)
        without = ring.worker_for(
            "bcast", 8, 16, alive=[w for w in range(4) if w != home]
        )
        assert without != home
        assert ring.worker_for("bcast", 8, 16, alive=range(4)) == home

    def test_no_live_worker_raises(self):
        ring = HashRing(2)
        with pytest.raises(WorkerError, match="no live worker"):
            ring.worker_for("bcast", 8, 16, alive=[])

    @settings(max_examples=50, deadline=None)
    @given(
        collective=st.sampled_from(["bcast", "allreduce", "alltoall"]),
        nodes=st.integers(1, 64),
        ppn=st.integers(1, 64),
        n_workers=st.integers(2, 8),
        data=st.data(),
    )
    def test_failover_deterministic_for_any_liveness(
        self, collective, nodes, ppn, n_workers, data
    ):
        ring = HashRing(n_workers)
        chain = ring.owners_for(collective, nodes, ppn)
        assert sorted(chain) == list(range(n_workers))
        assert chain == ring.owners_for(collective, nodes, ppn)
        dead = data.draw(
            st.sets(
                st.integers(0, n_workers - 1), max_size=n_workers - 1
            )
        )
        alive = [w for w in range(n_workers) if w not in dead]
        owner = ring.worker_for(collective, nodes, ppn, alive=alive)
        # the first live entry of the chain owns the key...
        assert owner == next(w for w in chain if w in alive)
        # ...and the key returns to its home owner on full health
        assert (
            ring.worker_for(collective, nodes, ppn, alive=range(n_workers))
            == chain[0]
        )


class TestReloadGate:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_close_waits_for_inflight_drain(self):
        async def scenario():
            gate = _ReloadGate()
            await gate.acquire()
            order = []

            async def closer():
                await gate.close()
                order.append("closed")

            task = asyncio.create_task(closer())
            await asyncio.sleep(0.01)
            assert not task.done()  # still draining
            order.append("released")
            gate.release()
            await task
            return order

        assert self._run(scenario()) == ["released", "closed"]

    def test_requests_queue_while_closed_and_resume_on_open(self):
        async def scenario():
            gate = _ReloadGate()
            await gate.close()
            admitted = []

            async def request(name):
                await gate.acquire()
                admitted.append(name)
                gate.release()

            tasks = [asyncio.create_task(request(i)) for i in range(3)]
            await asyncio.sleep(0.01)
            assert admitted == []  # queued, not dropped, not admitted
            gate.open()
            await asyncio.gather(*tasks)
            return admitted

        assert sorted(self._run(scenario())) == [0, 1, 2]

    def test_close_with_no_inflight_is_immediate(self):
        async def scenario():
            gate = _ReloadGate()
            await asyncio.wait_for(gate.close(), timeout=1.0)
            gate.open()
            await asyncio.wait_for(gate.acquire(), timeout=1.0)
            gate.release()

        self._run(scenario())


@pytest.fixture
def rules_pair(tmp_path, library):
    """Two distinct valid bcast rules files (reload flips between them)."""
    a = tmp_path / "rules_a.conf"
    b = tmp_path / "rules_b.conf"
    a.write_text(make_rules_text(library, "bcast", 16, 32, [(0, 1), (65536, 2)]))
    b.write_text(make_rules_text(library, "bcast", 16, 32, [(0, 3), (65536, 4)]))
    return str(a), str(b)


@pytest.fixture
def worker_state(rules_pair):
    return build_state(
        {"worker_id": 3, "machine": "Hydra", "library": "Open MPI",
         "rules": [rules_pair[0]]}
    )


class TestRegistryStaging:
    def test_stage_does_not_touch_live(self, registry, library, tmp_path):
        path = tmp_path / "r.conf"
        path.write_text(make_rules_text(library, "bcast", 8, 8, [(0, 1)]))
        staged = registry.stage_rules(path)
        assert isinstance(staged, StagedModel)
        assert registry.get("bcast") is None  # still nothing live

    def test_commit_swaps_staged_in(self, registry, library, tmp_path):
        path = tmp_path / "r.conf"
        path.write_text(make_rules_text(library, "bcast", 8, 8, [(0, 1)]))
        version = registry.commit(registry.stage_rules(path))
        assert registry.get("bcast").version == version.version

    def test_stage_rejects_bad_file_without_side_effects(self, registry):
        with pytest.raises(ReloadError):
            registry.stage_rules("/does/not/exist.conf")
        assert registry.get("bcast") is None

    def test_publish_is_stage_plus_commit(self, registry, tuned_bcast):
        version = registry.publish(tuned_bcast.servable(), tag="t")
        assert registry.get("bcast").version == version.version
        assert version.tag == "t"


class TestWorkerProtocol:
    def test_prepare_then_commit_bumps_version(self, worker_state, rules_pair):
        before = worker_state.registry.get("bcast").version
        prep = handle_worker_request(
            worker_state,
            {"op": "prepare_reload", "path": rules_pair[1], "token": "t1"},
        )
        assert prep["ok"] and prep["collective"] == "bcast"
        # staged only: live version untouched until commit
        assert worker_state.registry.get("bcast").version == before
        commit = handle_worker_request(
            worker_state, {"op": "commit_reload", "token": "t1"}
        )
        assert commit["ok"] and commit["version"] == before + 1

    def test_prepare_bad_path_stages_nothing(self, worker_state):
        response = handle_worker_request(
            worker_state,
            {"op": "prepare_reload", "path": "/nope.conf", "token": "t"},
        )
        assert not response["ok"]
        assert worker_state.staged == {}

    def test_abort_drops_staged(self, worker_state, rules_pair):
        handle_worker_request(
            worker_state,
            {"op": "prepare_reload", "path": rules_pair[1], "token": "t"},
        )
        response = handle_worker_request(
            worker_state, {"op": "abort_reload", "token": "t"}
        )
        assert response["ok"] and response["aborted"]
        assert worker_state.staged == {}

    def test_commit_unknown_token_fails_softly(self, worker_state):
        response = handle_worker_request(
            worker_state, {"op": "commit_reload", "token": "ghost"}
        )
        assert not response["ok"]

    def test_counters_filtered_to_serve_prefixes(self, worker_state):
        handle_worker_request(
            worker_state,
            {"collective": "bcast", "nodes": 8, "ppn": 8, "msize": 1024},
        )
        response = handle_worker_request(worker_state, {"op": "counters"})
        assert response["ok"]
        assert response["counters"]  # served one request, counted it
        assert all(
            name.startswith(("serve.", "bench."))
            for name in response["counters"]
        )

    def test_recommend_delegates_to_loop(self, worker_state):
        response = handle_worker_request(
            worker_state,
            {"op": "recommend", "collective": "bcast", "nodes": 8,
             "ppn": 8, "msize": 1024},
        )
        assert response["ok"] and "algorithm" in response

    def test_serve_worker_emits_ready_line_and_echoes_rid(self, worker_state):
        lines = [
            json.dumps({"op": "ping", "rid": 7}),
            "not json at all",
            json.dumps({"op": "quit", "rid": 8}),
        ]
        out = io.StringIO()
        served = serve_worker(worker_state, lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 3
        assert responses[0]["ready"] is True  # before any request
        assert responses[1] == {
            **responses[1], "ok": True, "rid": 7, "worker": 3,
        }
        assert responses[2]["ok"] is False  # bad line answered, loop lives
        assert responses[3] == {**responses[3], "ok": True, "rid": 8}


class _StubStdin:
    def write(self, data):
        pass

    async def drain(self):
        pass

    def close(self):
        pass


class _StubProcess:
    """Just enough of asyncio.subprocess.Process for WorkerHandle."""

    def __init__(self):
        self.returncode = None
        self.killed = False
        self.stdin = _StubStdin()
        self.stdout = None

    def kill(self):
        self.killed = True
        self.returncode = -9


class TestWorkerHandleFailure:
    """A broken worker must fail its callers, never hang them."""

    def test_call_timeout_kills_worker_and_fails_fast_after(self):
        async def scenario():
            process = _StubProcess()
            handle = WorkerHandle(0, process)
            # no reader, no worker: the response never arrives
            with pytest.raises(WorkerError, match="timed out"):
                await handle.call({"op": "ping"}, timeout=0.05)
            assert process.killed  # a wedged worker is put down
            # later calls raise immediately instead of waiting again
            with pytest.raises(WorkerError, match="timed out"):
                await handle.call({"op": "ping"})

        asyncio.run(scenario())

    def test_reader_overflow_fails_pending_and_marks_dead(self):
        class _OverflowStdout:
            async def readline(self):
                raise ValueError("Separator is not found, chunk exceeds limit")

        async def scenario():
            process = _StubProcess()
            process.stdout = _OverflowStdout()
            handle = WorkerHandle(0, process)
            pending = asyncio.get_running_loop().create_future()
            handle._pending[1] = pending
            await handle._read_loop()
            # the in-flight caller got an error, not an eternal await
            with pytest.raises(WorkerError, match="overflowed"):
                pending.result()
            assert process.killed
            assert not handle.alive
            with pytest.raises(WorkerError, match="overflowed"):
                await handle.call({"op": "ping"})

        asyncio.run(scenario())

    def test_reader_eof_fails_pending(self):
        class _EOFStdout:
            async def readline(self):
                return b""

        async def scenario():
            process = _StubProcess()
            process.stdout = _EOFStdout()
            handle = WorkerHandle(0, process)
            pending = asyncio.get_running_loop().create_future()
            handle._pending[1] = pending
            await handle._read_loop()
            with pytest.raises(WorkerError, match="died"):
                pending.result()

        asyncio.run(scenario())

    def test_death_kicks_the_on_death_callback(self):
        class _EOFStdout:
            async def readline(self):
                return b""

        async def scenario():
            kicked = []
            process = _StubProcess()
            process.stdout = _EOFStdout()
            handle = WorkerHandle(0, process, on_death=lambda: kicked.append(1))
            await handle._read_loop()
            assert kicked == [1]

        asyncio.run(scenario())

    def test_garbage_response_line_skipped_not_fatal(self):
        class _GarbageStdout:
            def __init__(self):
                self._lines = [
                    b'#### chaos garbage: not json\n',
                    b'{"rid": 1, "ok": true}\n',
                    b"",
                ]

            async def readline(self):
                return self._lines.pop(0)

        async def scenario():
            process = _StubProcess()
            process.stdout = _GarbageStdout()
            handle = WorkerHandle(0, process)
            pending = asyncio.get_running_loop().create_future()
            handle._pending[1] = pending
            before = get_telemetry().counters_snapshot().get(
                "fleet.worker_garbage_lines", 0
            )
            await handle._read_loop()
            # the garbage line was skipped; the real answer still landed
            assert pending.result() == {"ok": True}
            after = get_telemetry().counters_snapshot()[
                "fleet.worker_garbage_lines"
            ]
            assert after == before + 1

        asyncio.run(scenario())


class TestStderrQuarantine:
    """A crashed worker's last words survive it (satellite: quarantine)."""

    def test_tail_keeps_only_the_last_lines(self, capsys):
        class _Stream:
            def __init__(self, lines):
                self._lines = lines

            async def readline(self):
                return self._lines.pop(0) if self._lines else b""

        async def scenario():
            process = _StubProcess()
            process.stderr = _Stream(
                [f"line {i}\n".encode() for i in range(30)]
            )
            handle = WorkerHandle(4, process)
            await handle._drain_stderr()
            return handle

        handle = asyncio.run(scenario())
        assert len(handle.stderr_tail) == 20  # bounded buffer
        assert handle.stderr_tail[-1] == "line 29"
        assert handle.stderr_tail[0] == "line 10"
        # the live stream is still forwarded, prefixed per worker
        assert "[worker 4] line 29" in capsys.readouterr().err


# -- end to end ----------------------------------------------------------


@pytest.fixture
def fleet(rules_pair):
    spec = FleetSpec(rules=(rules_pair[0],), workers=2)
    with FleetThread(spec) as running:
        yield running


class _Client:
    """One persistent JSONL connection with request/response framing."""

    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.reader = self.sock.makefile("r", encoding="utf-8")

    def ask(self, payload):
        self.sock.sendall((json.dumps(payload) + "\n").encode())
        line = self.reader.readline()
        if not line:
            raise ConnectionError("fleet dropped the connection")
        return json.loads(line)

    def close(self):
        self.sock.close()


@pytest.mark.slow
class TestFleetEndToEnd:
    def test_recommend_and_batch_order(self, fleet):
        client = _Client(fleet.port)
        try:
            one = client.ask(
                {"op": "recommend", "collective": "bcast", "nodes": 8,
                 "ppn": 16, "msize": 4096, "id": "x"}
            )
            assert one["ok"] and one["id"] == "x" and one["version"] >= 1
            # instances routed to different workers must come back in
            # input order
            instances = [
                {"collective": "bcast", "nodes": nodes, "ppn": ppn,
                 "msize": 1024}
                for nodes in (2, 4, 8, 16, 32)
                for ppn in (1, 4, 16)
            ]
            many = client.ask(
                {"op": "recommend_many", "instances": instances}
            )
            assert many["ok"]
            echoed = [
                (r["nodes"], r["ppn"]) for r in many["results"]
            ]
            assert echoed == [(i["nodes"], i["ppn"]) for i in instances]
        finally:
            client.close()

    def test_large_batch_roundtrip_past_64k_pipe_limit(self, fleet):
        # a ~1200-instance batch makes both the request line (~75 KiB)
        # and the per-worker response lines (hundreds of KiB) exceed
        # asyncio's default 64 KiB stream limit, which used to kill the
        # worker read loop and hang every later request on that worker
        instances = [
            {"collective": "bcast", "nodes": 2 << (i % 5),
             "ppn": 1 << (i % 5), "msize": 1024 * (1 + i % 7)}
            for i in range(1200)
        ]
        client = _Client(fleet.port)
        try:
            response = client.ask(
                {"op": "recommend_many", "instances": instances}
            )
            assert response["ok"], response.get("error")
            assert len(response["results"]) == len(instances)
            echoed = [(r["nodes"], r["ppn"]) for r in response["results"]]
            assert echoed == [(i["nodes"], i["ppn"]) for i in instances]
            # the fleet must still be serving afterwards
            after = client.ask(
                {"op": "recommend", "collective": "bcast", "nodes": 8,
                 "ppn": 16, "msize": 4096}
            )
            assert after["ok"]
        finally:
            client.close()

    def test_oversized_request_line_answers_error(
        self, rules_pair, monkeypatch
    ):
        """A request line over STREAM_LIMIT gets ok:false, not a dropped
        connection (the stream cannot be re-synchronised, so the fleet
        answers once and closes)."""
        import repro.serve.fleet as fleet_mod

        monkeypatch.setattr(fleet_mod, "STREAM_LIMIT", 1024)
        spec = FleetSpec(rules=(rules_pair[0],), workers=1)
        with FleetThread(spec) as running:
            client = _Client(running.port)
            try:
                response = client.ask(
                    {"op": "recommend", "collective": "bcast", "nodes": 8,
                     "ppn": 16, "msize": 4096, "pad": "x" * 4096}
                )
                assert response["ok"] is False
                assert "exceeds" in response["error"]
                assert client.reader.readline() == ""  # then closed
            finally:
                client.close()

    def test_reload_under_fire_drops_and_mixes_nothing(
        self, fleet, rules_pair
    ):
        """The fleet version of the PR-4 reload-under-fire contract."""
        stop = threading.Event()
        failures: list = []
        observed_versions: list[list[int]] = []

        def hammer(seed):
            client = _Client(fleet.port)
            versions = []
            observed_versions.append(versions)
            try:
                n = 0
                while not stop.is_set():
                    n += 1
                    if n % 3 == 0:
                        response = client.ask({
                            "op": "recommend_many",
                            "instances": [
                                {"collective": "bcast", "nodes": 4 << (seed % 3),
                                 "ppn": 8, "msize": 1024 * (1 + n % 5)},
                                {"collective": "bcast", "nodes": 8,
                                 "ppn": 2 << (seed % 4), "msize": 65536},
                            ],
                        })
                        if not response.get("ok"):
                            failures.append(response)
                            continue
                        batch_versions = {
                            r["version"] for r in response["results"]
                        }
                        if len(batch_versions) != 1:  # mixed-version answer
                            failures.append(response)
                        versions.append(max(batch_versions))
                    else:
                        response = client.ask({
                            "op": "recommend", "collective": "bcast",
                            "nodes": 2 << (n % 5), "ppn": 1 + seed,
                            "msize": 512 << (n % 8),
                        })
                        if not response.get("ok"):
                            failures.append(response)
                        else:
                            versions.append(response["version"])
            except Exception as exc:  # any transport failure is a failure
                failures.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        admin = _Client(fleet.port)
        try:
            reloads = 0
            for round_ in range(6):
                response = admin.ask(
                    {"op": "reload", "path": rules_pair[round_ % 2]}
                )
                assert response["ok"], response
                assert response["workers"] == 2
                reloads += 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            admin.close()
        assert failures == []
        # each client saw versions only ever increase (no worker lagging
        # behind the fleet), and the reloads actually landed mid-traffic
        for versions in observed_versions:
            assert versions == sorted(versions)
            assert versions, "hammer thread never completed a request"
        assert max(max(v) for v in observed_versions) > 1

    def test_reload_rejection_leaves_fleet_serving_old_version(self, fleet):
        client = _Client(fleet.port)
        try:
            before = client.ask(
                {"op": "recommend", "collective": "bcast", "nodes": 8,
                 "ppn": 16, "msize": 4096}
            )
            rejected = client.ask({"op": "reload", "path": "/nope.conf"})
            assert not rejected["ok"]
            after = client.ask(
                {"op": "recommend", "collective": "bcast", "nodes": 8,
                 "ppn": 16, "msize": 4096}
            )
            assert after["ok"]
            assert after["version"] == before["version"]
            assert after["label"] == before["label"]
        finally:
            client.close()

    def test_stats_reports_consistent_versions(self, fleet):
        client = _Client(fleet.port)
        try:
            stats = client.ask({"op": "stats"})["stats"]
        finally:
            client.close()
        assert stats["fleet"]["workers"] == 2
        assert stats["fleet"]["versions_consistent"] is True
        assert [w["ok"] for w in stats["workers"]] == [True, True]

    def test_metrics_scrape_is_wellformed_prometheus(self, fleet):
        client = _Client(fleet.port)
        try:
            # drive enough repeats that the compiled tier takes hits
            for _ in range(3):
                client.ask(
                    {"op": "recommend", "collective": "bcast", "nodes": 8,
                     "ppn": 16, "msize": 4096}
                )
        finally:
            client.close()
        status, body = http_get("127.0.0.1", fleet.port, "/metrics")
        assert status == 200
        lines = parse_metric_lines(body)  # asserts per-line wellformedness
        assert lines
        assert any(
            line.startswith("serve_compiled_hits_total ")
            and int(line.split()[-1]) > 0
            for line in lines
        ), body
        assert any(
            line.startswith("fleet_request_latency_us_bucket") for line in lines
        )
        for quantile in ("p50", "p99", "p999"):
            assert f"fleet_request_latency_us_{quantile} " in body
        assert body.endswith("# EOF\n")

    def test_healthz_and_unknown_route(self, fleet):
        status, body = http_get("127.0.0.1", fleet.port, "/healthz")
        assert status == 200 and json.loads(body)["alive"] == 2
        status, _ = http_get("127.0.0.1", fleet.port, "/unknown")
        assert status == 404

    def test_quit_op_answers_then_closes(self, fleet):
        client = _Client(fleet.port)
        try:
            response = client.ask({"op": "quit"})
            assert response["ok"] and response["bye"]
            assert client.reader.readline() == ""  # connection closed
        finally:
            client.close()


# -- chaos verification helpers (the smoke script's assertion core) ------


class TestChaosVerifyHelpers:
    """Unit coverage of the invariants scripts/smoke_fleet_chaos.py runs.

    The smoke script is the CI driver; the *contract* lives in
    repro.serve.chaos so it is testable without booting a 3-worker
    fleet through the CLI.
    """

    def clean_inputs(self):
        return dict(
            n_workers=3, restarts=4.0, garbage=2.0,
            health={"status": "ok", "alive": 3},
            stats={"committed_reloads": 1, "versions_consistent": True},
        )

    def test_clean_campaign_has_no_violations(self):
        assert verify_chaos_invariants(**self.clean_inputs()) == []

    def test_every_broken_invariant_is_reported(self):
        failures = verify_chaos_invariants(
            n_workers=3, restarts=2.0, garbage=0.0,
            health={"status": "degraded", "alive": 2},
            stats={"committed_reloads": 2, "versions_consistent": False},
        )
        assert len(failures) == 5
        text = "\n".join(failures)
        for fragment in ("respawned", "garbage", "healthz", "reload",
                         "version skew"):
            assert fragment in text

    def test_expected_reloads_is_exact_not_minimum(self):
        inputs = self.clean_inputs()
        inputs["stats"] = {"committed_reloads": 2,
                           "versions_consistent": True}
        assert verify_chaos_invariants(**inputs)  # 2 != 1 fails
        assert verify_chaos_invariants(
            **{**inputs, "expected_reloads": 2}
        ) == []

    def test_strip_provenance_removes_cache_tier_fields_only(self):
        answer = {"ok": True, "label": "chain", "version": 2,
                  "cached": True, "compiled": False}
        stripped = strip_provenance(answer)
        assert stripped == {"ok": True, "label": "chain", "version": 2}
        assert "cached" in answer  # input not mutated

    def test_bit_identity_ignores_which_cache_answered(self):
        chaos = [{"ok": True, "label": "chain", "cached": True}]
        clean = [{"ok": True, "label": "chain", "compiled": True}]
        assert verify_bit_identity(chaos, clean) == []

    def test_bit_identity_reports_divergence_with_tally(self):
        chaos = [{"ok": True, "label": "chain"}] * 5
        clean = [{"ok": True, "label": "chain"}] * 4 + [
            {"ok": True, "label": "linear"}
        ]
        failures = verify_bit_identity(chaos, clean)
        assert any("answer 4 diverged" in f for f in failures)
        assert any("1/5 answers diverged" in f for f in failures)

    def test_bit_identity_caps_reported_examples(self):
        chaos = [{"label": f"c{i}"} for i in range(10)]
        clean = [{"label": "x"}] * 10
        failures = verify_bit_identity(chaos, clean, max_reported=3)
        assert len(failures) == 4  # 3 examples + the tally line

    def test_bit_identity_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            verify_bit_identity([{}, {}], [{}])

    def test_reload_contract_compares_version_keys_only(self):
        chaos = {"ok": True, "version": 2, "collective": "bcast",
                 "tag": "r", "workers": 2}
        clean = {"ok": True, "version": 2, "collective": "bcast",
                 "tag": "r", "workers": 3}  # wedged worker sat out
        assert verify_reload_contract(chaos, clean) == []
        assert verify_reload_contract(
            chaos, {**clean, "version": 3}
        ) == ["reload 'version' diverged: chaos=2 clean=3"]


# -- feedback through the fleet: kill mid-flush, reload survives ---------


@pytest.mark.slow
class TestFleetFeedbackClosedLoop:
    """The serve side of the closed loop under a worker kill.

    Every worker appends feedback rows with per-row flushes, so a
    SIGKILL can tear at most the final line of its log — the reader
    must hand back only complete rows, the committed reload must
    survive the respawn, and the drift gauges must appear in the
    Prometheus scrape.
    """

    @pytest.fixture
    def feedback_fleet(self, rules_pair, tmp_path):
        feedback_dir = tmp_path / "feedback"
        spec = FleetSpec(
            rules=(rules_pair[0],), workers=2,
            feedback_dir=str(feedback_dir), feedback_seed=3,
            feedback_shift=2.0,
        )
        with FleetThread(spec) as running:
            yield running, feedback_dir, rules_pair[0]

    def _requests(self, start, count):
        for i in range(start, start + count):
            yield {
                "op": "recommend", "collective": "bcast",
                "nodes": (2, 4, 8, 16)[i % 4], "ppn": (1, 2, 16)[i % 3],
                "msize": 1024 << (i % 6),
            }

    def _wait_healthy(self, port, n_workers, timeout_s=30.0):
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            status, body = http_get("127.0.0.1", port, "/healthz")
            health = json.loads(body)
            if (
                status == 200
                and health.get("alive") == n_workers
                and not health.get("restarting")
            ):
                return
            time.sleep(0.05)
        pytest.fail(f"fleet never re-healed: {health}")

    def test_kill_during_feedback_flush(self, feedback_fleet):
        import os
        import signal

        from repro.core.feedback import read_feedback

        running, feedback_dir, rules_path = feedback_fleet
        get_telemetry().reset()
        client = _Client(running.port)
        try:
            # commit one reload up front: the respawned worker must
            # warm-restore it, not lose it
            reload_response = client.ask(
                {"op": "reload", "path": rules_path}
            )
            assert reload_response["ok"]
            for request in self._requests(0, 40):
                assert client.ask(request)["ok"]
            # SIGKILL one worker while its feedback stream is hot; the
            # hammer keeps running through the outage (failover)
            os.kill(running.worker_pids()[0], signal.SIGKILL)
            for request in self._requests(40, 40):
                assert client.ask(request)["ok"]
            self._wait_healthy(running.port, n_workers=2)
            for request in self._requests(80, 20):
                assert client.ask(request)["ok"]
            stats = client.ask({"op": "stats"})["stats"]["fleet"]
        finally:
            client.close()

        # the committed reload survived the kill: exactly one commit,
        # no version skew between the survivor and the respawn
        assert stats["committed_reloads"] == 1
        assert stats["versions_consistent"] is True

        # every accepted feedback row is complete and valid; a torn
        # final line in the killed worker's log is skipped, not fatal
        rows = read_feedback(feedback_dir)
        assert rows, "the fleet never flushed a feedback row"
        skipped = get_telemetry().counters_snapshot().get(
            "serve.feedback.skipped_lines", 0
        )
        assert skipped <= 1  # at most the torn tail of the killed log
        # observation determinism: the same (site, version) logs a
        # bit-identical row no matter which worker (or respawn) served
        by_site: dict = {}
        for row in rows:
            site = (row.nodes, row.ppn, row.msize, row.config_id,
                    row.version)
            assert by_site.setdefault(site, row) == row
        get_telemetry().reset()

    def test_drift_gauges_reach_the_metrics_scrape(self, feedback_fleet):
        running, _, _ = feedback_fleet
        client = _Client(running.port)
        try:
            for request in self._requests(0, 30):
                assert client.ask(request)["ok"]
        finally:
            client.close()
        status, body = http_get("127.0.0.1", running.port, "/metrics")
        assert status == 200
        parse_metric_lines(body)  # per-line wellformedness
        assert 'serve_drift_residual_median{collective="bcast"' in body
        assert ',worker="' in body  # per-worker series, not merged
        assert "serve_feedback_rows_total" in body


class TestStopLifecycle:
    """stop() is idempotent at every point in the lifecycle (satellite)."""

    def test_stop_before_start_is_a_no_op(self, rules_pair):
        spec = FleetSpec(rules=(rules_pair[0],), workers=1)

        async def scenario():
            fleet_obj = Fleet(spec)
            await fleet_obj.stop()
            await fleet_obj.stop()  # and again

        asyncio.run(scenario())

    @pytest.mark.slow
    def test_stop_twice_after_start(self, rules_pair):
        spec = FleetSpec(rules=(rules_pair[0],), workers=1)

        async def scenario():
            fleet_obj = Fleet(spec)
            await fleet_obj.start()
            await fleet_obj.stop()
            await fleet_obj.stop()  # second stop must not raise

        asyncio.run(scenario())


@pytest.mark.slow
class TestBackpressure:
    """Over the high-water mark the fleet sheds instead of queueing."""

    def test_zero_depth_sheds_requests_and_scrapes(self, rules_pair):
        spec = FleetSpec(rules=(rules_pair[0],), workers=1, queue_depth=0)
        with FleetThread(spec) as running:
            shed_before = get_telemetry().counters_snapshot().get(
                "fleet.shed", 0
            )
            client = _Client(running.port)
            try:
                response = client.ask(
                    {"op": "recommend", "collective": "bcast", "nodes": 8,
                     "ppn": 16, "msize": 4096}
                )
            finally:
                client.close()
            assert response == {"ok": False, "error": "overloaded"}
            # the scrape fan-outs shed too (they pile work on workers)
            assert http_get("127.0.0.1", running.port, "/stats")[0] == 503
            assert http_get("127.0.0.1", running.port, "/metrics")[0] == 503
            # ...but /healthz never fans out: it must answer even when
            # every worker is saturated
            status, body = http_get("127.0.0.1", running.port, "/healthz")
            assert status == 200 and json.loads(body)["status"] == "ok"
            shed_after = get_telemetry().counters_snapshot()["fleet.shed"]
            assert shed_after > shed_before


def _wait_until(predicate, timeout=30.0, message="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {message}")


def _healthz(port):
    return json.loads(http_get("127.0.0.1", port, "/healthz")[1])


@pytest.mark.slow
class TestSelfHealing:
    """Supervision end to end: kill, failover, respawn, warm-restore."""

    def test_kill_respawn_warm_restore(self, rules_pair):
        spec = FleetSpec(
            rules=(rules_pair[0],), workers=2, chaos_ops=True,
            backoff_base_s=0.05,
        )
        with FleetThread(spec) as running:
            client = _Client(running.port)
            try:
                # commit a reload first: the respawned worker must
                # warm-restore to v2, not rejoin the ring at boot v1
                reloaded = client.ask(
                    {"op": "reload", "path": rules_pair[1]}
                )
                assert reloaded["ok"], reloaded
                restarts_before = get_telemetry().counters_snapshot().get(
                    "fleet.worker_restarts", 0
                )
                killed = client.ask(
                    {"op": "chaos", "kind": "kill", "worker": 0}
                )
                assert killed["ok"], killed
                # the hammer runs straight through the outage: failover
                # routes the dead worker's keys to the survivor
                for n in range(40):
                    response = client.ask({
                        "op": "recommend", "collective": "bcast",
                        "nodes": 2 << (n % 5), "ppn": 1 + (n % 4),
                        "msize": 512 << (n % 8),
                    })
                    assert response["ok"], (n, response)
                _wait_until(
                    lambda: get_telemetry().counters_snapshot().get(
                        "fleet.worker_restarts", 0
                    ) > restarts_before,
                    message="the supervisor to respawn worker 0",
                )
                _wait_until(
                    lambda: _healthz(running.port)["status"] == "ok",
                    message="the fleet to re-heal",
                )
                stats = client.ask({"op": "stats"})["stats"]
                assert stats["fleet"]["versions_consistent"] is True
                assert stats["fleet"]["committed_reloads"] == 1
                assert stats["fleet"]["health"]["alive"] == 2
                # warm-restore replayed the committed reload: both
                # workers (including the respawn) serve version 2
                versions = {
                    worker["versions"]["bcast"]["version"]
                    for worker in stats["workers"] if worker["ok"]
                }
                assert versions == {2}
            finally:
                client.close()

    def test_breaker_holds_a_crashing_worker_down(self, rules_pair):
        spec = FleetSpec(
            rules=(rules_pair[0],), workers=2, chaos_ops=True,
            max_worker_restarts=0, backoff_base_s=0.05,
        )
        with FleetThread(spec) as running:
            client = _Client(running.port)
            try:
                killed = client.ask(
                    {"op": "chaos", "kind": "kill", "worker": 0}
                )
                assert killed["ok"], killed
                _wait_until(
                    lambda: _healthz(running.port)["breakers_open"] == [0],
                    message="the breaker to open for worker 0",
                )
                health = _healthz(running.port)
                assert health["status"] == "degraded"
                assert health["alive"] == 1
                # degraded still serves: the survivor owns the whole ring
                response = client.ask(
                    {"op": "recommend", "collective": "bcast", "nodes": 8,
                     "ppn": 16, "msize": 4096}
                )
                assert response["ok"], response
                # now take out the survivor: no live worker owns any key
                killed = client.ask(
                    {"op": "chaos", "kind": "kill", "worker": 1}
                )
                assert killed["ok"], killed
                _wait_until(
                    lambda: http_get(
                        "127.0.0.1", running.port, "/healthz"
                    )[0] == 503,
                    message="healthz to go down",
                )
                status, body = http_get(
                    "127.0.0.1", running.port, "/healthz"
                )
                assert status == 503
                assert json.loads(body)["status"] == "down"
                response = client.ask(
                    {"op": "recommend", "collective": "bcast", "nodes": 8,
                     "ppn": 16, "msize": 4096}
                )
                assert response["ok"] is False
                assert "no live worker" in response["error"]
            finally:
                client.close()

    def test_reload_commits_on_the_survivors(self, rules_pair):
        spec = FleetSpec(
            rules=(rules_pair[0],), workers=2, chaos_ops=True,
            max_worker_restarts=0, backoff_base_s=0.05,
        )
        with FleetThread(spec) as running:
            client = _Client(running.port)
            try:
                killed = client.ask(
                    {"op": "chaos", "kind": "kill", "worker": 0}
                )
                assert killed["ok"], killed
                _wait_until(
                    lambda: _healthz(running.port)["status"] == "degraded",
                    message="the fleet to notice the dead worker",
                )
                # a reload with a dead worker commits on the live set
                reloaded = client.ask(
                    {"op": "reload", "path": rules_pair[1]}
                )
                assert reloaded["ok"], reloaded
                assert reloaded["workers"] == 1
                response = client.ask(
                    {"op": "recommend", "collective": "bcast", "nodes": 8,
                     "ppn": 16, "msize": 4096}
                )
                assert response["ok"] and response["version"] == 2
                stats = client.ask({"op": "stats"})["stats"]
                assert stats["fleet"]["versions_consistent"] is True
                assert stats["fleet"]["committed_reloads"] == 1
            finally:
                client.close()
