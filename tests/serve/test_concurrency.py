"""Serving-layer concurrency: hot-reload under fire, coalescing correctness.

The two hard promises of the serving layer:

* **No torn reads.** A response is internally consistent — the config
  it carries is exactly what the model version it names would select.
  Threads hammering mixed collectives while the registry swaps rule
  sets back and forth (and rejects invalid candidates mid-stream) must
  never observe a version/answer mismatch, and zero requests may fail.
* **Per-caller-correct coalescing.** When concurrent misses merge into
  one vectorised batch, every caller gets the answer for *its own*
  instance, not a neighbour's.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.collectives.base import CollectiveKind
from repro.obs import get_telemetry
from repro.serve import (
    ModelRegistry,
    PredictionService,
    ReloadError,
)
from repro.serve.rules import RuleSet, config_rule_key

from tests.serve.conftest import make_rules_text


def counter(name: str) -> int:
    return get_telemetry().counters_snapshot().get(name, 0)


MSIZES = (0, 512, 16384, 262144, 4 << 20)


def write_rules(tmp_path, library, name, collective, picks):
    path = tmp_path / name
    path.write_text(make_rules_text(library, collective, 4, 2, picks))
    return path


class TestHotReloadUnderFire:
    # the compiled L0 tier must survive the same fire: its per-version
    # tables swap under the registry's version barrier, so torn reads
    # and failed requests stay impossible with the tier enabled
    @pytest.mark.parametrize("compiled", [False, True])
    @pytest.mark.parametrize("n_threads", [8])
    def test_no_torn_reads_and_zero_failures(
        self, registry, library, tmp_path, n_threads, compiled
    ):
        # two distinct valid bcast rule sets to flip between, plus a
        # static allreduce set so threads exercise mixed collectives
        space_len = len(library.config_space("bcast").configs)
        picks_a = [(0, 0), (1024, 1 % space_len), (65536, 2 % space_len)]
        picks_b = [(0, 3 % space_len), (1024, 4 % space_len),
                   (65536, 5 % space_len)]
        path_a = write_rules(tmp_path, library, "a.conf", "bcast", picks_a)
        path_b = write_rules(tmp_path, library, "b.conf", "bcast", picks_b)
        path_ar = write_rules(
            tmp_path, library, "ar.conf", "allreduce", [(0, 0), (4096, 1)]
        )
        bad = tmp_path / "bad.conf"
        bad.write_text("99 bogus\n")

        #: version number -> its RulesModel (the consistency oracle)
        published = {}

        def publish(path):
            version = registry.load_rules(path)
            published[version.version] = version.model
            return version

        publish(path_ar)
        publish(path_a)

        service = PredictionService(
            registry, cache_size=64, compiled=compiled
        )
        observed: list[tuple[str, int, int, object]] = []
        observed_lock = threading.Lock()
        errors: list[BaseException] = []
        stop = threading.Event()

        def hammer(tid: int) -> None:
            rng = np.random.default_rng(tid)
            local = []
            try:
                while not stop.is_set():
                    coll = "bcast" if rng.integers(2) else "allreduce"
                    msize = int(MSIZES[rng.integers(len(MSIZES))])
                    rec = service.recommend(coll, 4, 2, msize)
                    local.append(
                        (coll, msize, rec.version,
                         config_rule_key(rec.config))
                    )
            except BaseException as exc:  # noqa: BLE001 - recorded, fails test
                errors.append(exc)
            with observed_lock:
                observed.extend(local)

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        # flip rule sets while the hammering runs; sprinkle rejected
        # reloads in between — they must not disturb anything
        final_version = None
        for round_ in range(10):
            final_version = publish(path_b if round_ % 2 == 0 else path_a)
            if round_ % 3 == 0:
                with pytest.raises(ReloadError):
                    registry.load_rules(bad)
            time.sleep(0.005)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not errors, f"requests failed during reload: {errors!r}"
        assert observed, "threads served nothing"

        # consistency: every answer matches what its own version selects
        # (dedup first: the hammer loop records the same hot tuples
        # thousands of times, the distinct set is tiny)
        for coll, msize, version, got_key in set(observed):
            model = published.get(version)
            assert model is not None, (
                f"response names unknown version {version}"
            )
            assert model.collective is CollectiveKind(coll)
            (want,) = model.select_configs(
                None, None, np.asarray([msize], dtype=np.int64)
            )
            assert got_key == config_rule_key(want), (
                f"torn read: v{version} {coll} msize={msize} served "
                f"{got_key}, version's table says {config_rule_key(want)}"
            )

        # after the last swap completes: fresh requests must serve the
        # final version only — no stale-model responses
        for msize in MSIZES:
            rec = service.recommend("bcast", 4, 2, msize)
            assert rec.version == final_version.version
            (want,) = final_version.model.select_configs(
                None, None, np.asarray([msize], dtype=np.int64)
            )
            assert config_rule_key(rec.config) == config_rule_key(want)


class _SlowModel:
    """A servable that lingers in select_configs so misses pile up."""

    def __init__(self, inner, delay_s: float) -> None:
        self._inner = inner
        self.delay_s = delay_s
        self.calls = 0
        self.batch_sizes: list[int] = []
        self._lock = threading.Lock()

    @property
    def collective(self):
        return self._inner.collective

    @property
    def grid_axes(self):
        return self._inner.grid_axes

    def describe(self) -> str:
        return f"slow({self._inner.describe()})"

    def select_configs(self, nodes, ppn, msize):
        with self._lock:
            self.calls += 1
            self.batch_sizes.append(int(np.size(msize)))
        time.sleep(self.delay_s)
        return self._inner.select_configs(nodes, ppn, msize)


class TestCoalescing:
    def test_batches_are_per_caller_correct(
        self, registry, library, tmp_path
    ):
        picks = [(0, 0), (1024, 1), (65536, 2), (1 << 20, 3)]
        path = write_rules(tmp_path, library, "r.conf", "bcast", picks)
        inner = RuleSet.load(path).resolve(library)
        slow = _SlowModel(inner, delay_s=0.05)
        registry.publish(slow, tag="slow")
        service = PredictionService(registry)

        n_threads = 8
        queries = [(4, 2, int(m) + tid) for tid, m in
                   zip(range(n_threads), [0, 10, 2000, 3000, 70000,
                                          80000, 2 << 20, 3 << 20],
                       strict=True)]
        barrier = threading.Barrier(n_threads)
        results: dict[int, object] = {}
        errors: list[BaseException] = []

        def caller(tid: int) -> None:
            try:
                barrier.wait(timeout=10)
                n, p, m = queries[tid]
                results[tid] = service.recommend("bcast", n, p, m)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=caller, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors

        # every caller got its own instance's answer
        for tid, (n, p, m) in enumerate(queries):
            rec = results[tid]
            (want,) = inner.select_configs(
                None, None, np.asarray([m], dtype=np.int64)
            )
            assert (rec.nodes, rec.ppn, rec.msize) == (n, p, m)
            assert rec.config == want

        # ... and they were actually coalesced: 8 concurrent misses
        # against a 50 ms model cannot take 8 model calls
        serve_calls = slow.calls - 1  # publish() probes once
        assert serve_calls < n_threads
        assert sum(slow.batch_sizes) - 1 == n_threads
        assert max(slow.batch_sizes) > 1

    def test_error_propagates_to_every_coalesced_caller(
        self, registry, library, tmp_path
    ):
        path = write_rules(tmp_path, library, "r.conf", "bcast", [(0, 0)])
        inner = RuleSet.load(path).resolve(library)

        class Exploding(_SlowModel):
            def select_configs(self, nodes, ppn, msize):
                super().select_configs(nodes, ppn, msize)
                raise RuntimeError("model melted")

        boom = Exploding(inner, delay_s=0.0)
        # publish probes the model, so swap it in around validation:
        # publish a healthy model first, then break it in place
        registry.publish(inner, tag="ok")
        service = PredictionService(registry)
        mv = registry.get("bcast")
        object.__setattr__(mv, "model", boom)

        failures: list[BaseException] = []
        barrier = threading.Barrier(4)

        def caller(msize: int) -> None:
            try:
                barrier.wait(timeout=10)
                service.recommend("bcast", 2, 1, msize)
            except RuntimeError as exc:
                failures.append(exc)

        threads = [
            threading.Thread(target=caller, args=(m,))
            for m in (1, 2, 3, 4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(failures) == 4
        assert all("melted" in str(f) for f in failures)


class TestThreadedOracleEquivalence:
    def test_hammering_threads_match_oracle(self, service, tuned_bcast):
        queries = [
            (n, p, m)
            for n in (2, 3, 5, 8)
            for p in (1, 2)
            for m in (0, 64, 5000, 262144)
        ]
        expected = {
            q: tuned_bcast.recommend(*q) for q in queries
        }
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(50):
                    q = queries[rng.integers(len(queries))]
                    assert service.recommend("bcast", *q).config == expected[q]
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
