"""Two-tier equivalence: the fast evaluators vs the exact engine.

The fast tier is what the datasets are generated from; the engine is
the ground truth that also carries the payloads. For uncontended tree
pipelines (one rank per node) the two must agree to numerical
precision; under NIC contention and for multi-phase algorithms the fast
tier is a documented approximation and must stay inside a bounded
ratio.
"""

import pytest

from repro.collectives.registry import make_algorithm
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))

TREE_BCASTS = [
    ("bcast", "binomial", {"segsize": 4096}),
    ("bcast", "binomial", {"segsize": None}),
    ("bcast", "binary", {"segsize": 4096}),
    ("bcast", "pipeline", {"segsize": 4096}),
    ("bcast", "chain", {"segsize": 4096, "chains": 2}),
    ("bcast", "knomial", {"segsize": 4096, "radix": 4}),
    ("bcast", "linear", {}),
]

ALL_ALGOS = TREE_BCASTS + [
    ("bcast", "split_binary", {"segsize": 4096}),
    ("bcast", "scatter_allgather", {}),
    ("bcast", "scatter_ring_allgather", {}),
    ("allreduce", "linear", {}),
    ("allreduce", "nonoverlapping", {}),
    ("allreduce", "recursive_doubling", {}),
    ("allreduce", "ring", {}),
    ("allreduce", "segmented_ring", {"segsize": 1024}),
    ("allreduce", "rabenseifner", {}),
    ("allreduce", "allgather_reduce", {}),
    ("allreduce", "knomial_reduce_bcast", {"radix": 4}),
    ("alltoall", "linear", {}),
    ("alltoall", "pairwise", {}),
    ("alltoall", "bruck", {}),
    ("alltoall", "linear_sync", {}),
    ("alltoall", "ring", {}),
]


def ratio(kind, name, kw, topo, nbytes):
    algo = make_algorithm(kind, name, **kw)
    if not algo.supported(topo, nbytes):
        pytest.skip("unsupported instance")
    fast = algo.base_time(QUIET, topo, nbytes)
    exact = algo.run_exact(QUIET, topo, nbytes, verify=False).makespan
    if fast == 0.0 and exact == 0.0:
        return 1.0
    return exact / fast


class TestExactAgreementUncontended:
    """One rank per node: tree pipelines must match to ~machine epsilon."""

    @pytest.mark.parametrize("kind,name,kw", TREE_BCASTS)
    @pytest.mark.parametrize("p", [2, 5, 8])
    @pytest.mark.parametrize("nbytes", [0, 777, 65536])
    def test_tree_bcast_exact(self, kind, name, kw, p, nbytes):
        topo = Topology(p, 1)
        assert ratio(kind, name, kw, topo, nbytes) == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_recursive_doubling_exact_power_of_two(self, p):
        topo = Topology(p, 1)
        assert ratio("allreduce", "recursive_doubling", {}, topo, 4096) == (
            pytest.approx(1.0, rel=1e-9)
        )


class TestBoundedAgreementContended:
    """With shared NICs the fast tier is approximate but bounded."""

    @pytest.mark.parametrize("kind,name,kw", ALL_ALGOS)
    @pytest.mark.parametrize("shape", [(2, 2), (4, 2), (2, 4)])
    @pytest.mark.parametrize("nbytes", [100, 65536])
    def test_ratio_within_band(self, kind, name, kw, shape, nbytes):
        topo = Topology(*shape)
        r = ratio(kind, name, kw, topo, nbytes)
        assert 0.45 < r < 2.2, f"engine/fast = {r:.2f}"

    def test_hierarchical_within_band(self):
        topo = Topology(4, 4)
        for name, kw in [
            ("hier_binomial", {"segsize": None}),
            ("hier_ring", {}),
        ]:
            algo = make_algorithm(
                "bcast" if "binomial" in name else "allreduce", name,
                algid=99, **kw,
            )
            fast = algo.base_time(QUIET, topo, 65536)
            exact = algo.run_exact(QUIET, topo, 65536, verify=False).makespan
            assert 0.45 < exact / fast < 2.2


class TestRankingPreserved:
    """What matters for selection: the fast tier must rank algorithms
    like the engine does at the extremes."""

    def test_large_message_bcast_ranking(self):
        topo = Topology(8, 1)
        nbytes = 1 << 21
        candidates = [
            ("linear", {}),
            ("binomial", {"segsize": None}),
            ("pipeline", {"segsize": 16384}),
        ]
        fast, exact = {}, {}
        for name, kw in candidates:
            algo = make_algorithm("bcast", name, **kw)
            fast[name] = algo.base_time(QUIET, topo, nbytes)
            exact[name] = algo.run_exact(QUIET, topo, nbytes, verify=False).makespan
        fast_order = sorted(fast, key=fast.get)
        exact_order = sorted(exact, key=exact.get)
        assert fast_order == exact_order
        assert fast_order[0] == "pipeline"  # segmentation wins at 2 MiB

    def test_small_message_bcast_ranking(self):
        # Trees beat the linear flood once (p-1)*o exceeds depth*(a+2o);
        # at 32 nodes on Hydra both tiers must agree that they do.
        from repro.machine.zoo import hydra

        quiet_hydra = hydra.with_noise(
            NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0)
        )
        topo = Topology(32, 1)
        nbytes = 8
        lin = make_algorithm("bcast", "linear")
        binom = make_algorithm("bcast", "binomial", segsize=None)
        assert binom.base_time(quiet_hydra, topo, nbytes) < lin.base_time(
            quiet_hydra, topo, nbytes
        )
        assert (
            binom.run_exact(quiet_hydra, topo, nbytes, verify=False).makespan
            < lin.run_exact(quiet_hydra, topo, nbytes, verify=False).makespan
        )
