"""Fast-tier evaluators: segments, pipeline scan, rounds, linear sweeps."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import trees
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed
from repro.simulator.fastsim import (
    Round,
    contention_counts,
    linear_time,
    pipeline_tree_time,
    round_time,
    segment_sizes,
)
from repro.simulator.fastsim import _pipeline_scan

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))


class TestSegmentSizes:
    def test_unsegmented(self):
        np.testing.assert_array_equal(segment_sizes(1000, None), [1000])

    def test_exact_division(self):
        np.testing.assert_array_equal(segment_sizes(4096, 1024), [1024] * 4)

    def test_remainder(self):
        np.testing.assert_array_equal(segment_sizes(4100, 1024), [1024] * 4 + [4])

    def test_zero_bytes(self):
        np.testing.assert_array_equal(segment_sizes(0, 1024), [0])

    def test_segment_larger_than_message(self):
        np.testing.assert_array_equal(segment_sizes(10, 1024), [10])

    def test_invalid(self):
        with pytest.raises(ValueError):
            segment_sizes(-1, 10)
        with pytest.raises(ValueError):
            segment_sizes(10, 0)

    @given(
        st.integers(min_value=0, max_value=10**7),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_sum_preserved(self, nbytes, seg):
        sizes = segment_sizes(nbytes, seg)
        assert sizes.sum() == max(nbytes, 0)
        assert (sizes[:-1] == seg).all() or nbytes <= seg
        assert len(sizes) == max(1, -(-nbytes // seg) if nbytes else 1)


class TestPipelineScan:
    @staticmethod
    def brute_force(ready, busy):
        end = np.empty_like(ready)
        prev = -np.inf
        for s in range(len(ready)):
            prev = max(prev, ready[s]) + busy[s]
            end[s] = prev
        return end

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        st.data(),
    )
    def test_matches_brute_force(self, ready_list, data):
        # `ready` must be nondecreasing (arrivals from an in-order
        # upstream), which the evaluator relies on.
        ready = np.cumsum(np.asarray(ready_list))
        busy = np.asarray(
            data.draw(
                st.lists(
                    st.floats(min_value=0, max_value=1e3, allow_nan=False),
                    min_size=len(ready),
                    max_size=len(ready),
                )
            )
        )
        start, end = _pipeline_scan(ready, busy)
        np.testing.assert_allclose(end, self.brute_force(ready, busy), rtol=1e-12)
        np.testing.assert_allclose(end - busy, start, rtol=1e-12)


class TestContentionCounts:
    def test_single_node_no_inter_edges(self):
        topo = Topology(1, 4)
        parent, _ = trees.binomial_tree(4)
        inject, drain = contention_counts(topo, parent)
        np.testing.assert_array_equal(inject, [1])
        np.testing.assert_array_equal(drain, [1])

    def test_chain_across_nodes(self):
        # Chain 0-1-2-3 over 2 nodes: one inter edge (1 -> 2).
        topo = Topology(2, 2)
        parent, _ = trees.pipeline_tree(4)
        inject, drain = contention_counts(topo, parent)
        np.testing.assert_array_equal(inject, [1, 1])
        np.testing.assert_array_equal(drain, [1, 1])

    def test_counts_at_least_one(self):
        topo = Topology(3, 2)
        parent, _ = trees.binomial_tree(6)
        inject, drain = contention_counts(topo, parent)
        assert (inject >= 1).all() and (drain >= 1).all()


class TestPipelineTreeTime:
    def test_single_rank_zero(self):
        topo = Topology(1, 1)
        parent = np.array([-1])
        assert pipeline_tree_time(QUIET, topo, parent, [[]], 1024, None) == 0.0

    def test_requires_spanning_by_default(self):
        topo = Topology(1, 3)
        parent = np.array([-1, 0, -2])
        with pytest.raises(ValueError, match="span"):
            pipeline_tree_time(QUIET, topo, parent, [[1], [], []], 10, None)

    def test_non_spanning_allowed_when_requested(self):
        topo = Topology(1, 3)
        parent = np.array([-1, 0, -2])
        t = pipeline_tree_time(
            QUIET, topo, parent, [[1], [], []], 10, None, require_spanning=False
        )
        assert t > 0

    def test_two_roots_rejected(self):
        topo = Topology(1, 2)
        parent = np.array([-1, -1])
        with pytest.raises(ValueError, match="root"):
            pipeline_tree_time(QUIET, topo, parent, [[], []], 10, None)

    def test_segmentation_helps_deep_chain_large_message(self):
        topo = Topology(8, 1)
        parent, children = trees.pipeline_tree(8)
        big = 1 << 20
        unseg = pipeline_tree_time(QUIET, topo, parent, children, big, None)
        seg = pipeline_tree_time(QUIET, topo, parent, children, big, 16384)
        assert seg < unseg * 0.5  # pipelining must pay off massively

    def test_segmentation_hurts_small_message(self):
        topo = Topology(8, 1)
        parent, children = trees.binomial_tree(8)
        t_one = pipeline_tree_time(QUIET, topo, parent, children, 64, None)
        t_many = pipeline_tree_time(QUIET, topo, parent, children, 64, 16)
        assert t_many > t_one  # per-segment overheads dominate

    def test_monotone_in_message_size(self):
        topo = Topology(4, 2)
        parent, children = trees.binomial_tree(8)
        times = [
            pipeline_tree_time(QUIET, topo, parent, children, m, 4096)
            for m in (0, 100, 10**4, 10**6)
        ]
        assert all(a < b for a, b in zip(times, times[1:], strict=False))

    def test_reduce_up_includes_gamma(self):
        topo = Topology(4, 1)
        parent, children = trees.binomial_tree(4)
        down = pipeline_tree_time(QUIET, topo, parent, children, 10**6, None)
        up = pipeline_tree_time(
            QUIET, topo, parent, children, 10**6, None, reduce_up=True
        )
        assert up > down  # reduction work on the way up


class TestRoundTime:
    def test_empty_rounds(self):
        assert round_time(QUIET, Topology(2, 1), []) == 0.0

    def test_rounds_additive(self):
        topo = Topology(2, 1)
        one = Round.make([0], [1], 1000)
        t1 = round_time(QUIET, topo, [one])
        t2 = round_time(QUIET, topo, [one, one])
        assert t2 == pytest.approx(2 * t1)

    def test_intra_cheaper_than_inter(self):
        intra = round_time(QUIET, Topology(1, 2), [Round.make([0], [1], 4096)])
        inter = round_time(QUIET, Topology(2, 1), [Round.make([0], [1], 4096)])
        assert intra < inter

    def test_nic_contention_scales_round(self):
        # 4 ranks on one node all sending to a second node.
        topo = Topology(2, 4)
        srcs, dsts = [0, 1, 2, 3], [4, 5, 6, 7]
        m = 10**6
        t = round_time(QUIET, topo, [Round.make(srcs, dsts, m)])
        t_single = round_time(QUIET, topo, [Round.make([0], [4], m)])
        assert t > 3 * t_single  # injections share the NIC

    def test_overlap_compute(self):
        topo = Topology(2, 1)
        m = 10**6
        summed = Round.make([0], [1], m, m)
        overlapped = Round.make([0], [1], m, m, overlap_compute=True)
        assert round_time(QUIET, topo, [overlapped]) < round_time(
            QUIET, topo, [summed]
        )

    def test_extra_seconds(self):
        topo = Topology(2, 1)
        base = Round.make([0], [1], 10)
        extra = Round.make([0], [1], 10, extra_seconds=1.0)
        assert round_time(QUIET, topo, [extra]) == pytest.approx(
            round_time(QUIET, topo, [base]) + 1.0
        )

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            round_time(
                QUIET, Topology(2, 1),
                [Round.make([0, 1], [1], 10)],
            )


class TestLinearTime:
    def test_no_peers_zero(self):
        assert linear_time(QUIET, Topology(2, 1), 0, [], 100) == 0.0

    def test_scatter_grows_with_peers(self):
        topo = Topology(4, 2)
        t2 = linear_time(QUIET, topo, 0, [1, 2], 10**5)
        t6 = linear_time(QUIET, topo, 0, list(range(1, 8)), 10**5)
        assert t6 > t2

    def test_gather_with_reduce_slower(self):
        topo = Topology(4, 1)
        peers = [1, 2, 3]
        plain = linear_time(QUIET, topo, 0, peers, 10**6, gather=True)
        reduced = linear_time(
            QUIET, topo, 0, peers, 10**6, gather=True, reduce_at_root=True
        )
        assert reduced > plain

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            linear_time(QUIET, Topology(2, 1), 0, [1], -1)
