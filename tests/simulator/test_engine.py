"""Exact engine semantics: matching, blocking, resources, timing."""

import numpy as np
import pytest

from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed
from repro.simulator.engine import (
    Compute,
    DeadlockError,
    Engine,
    Irecv,
    Isend,
    Recv,
    Reduce,
    Send,
    Wait,
)

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))


def idle():
    """Empty rank program (a generator that yields nothing)."""
    return
    yield  # pragma: no cover - makes this a generator function


def run(programs, nodes=1, ppn=None, machine=QUIET, rng=None):
    ppn = ppn if ppn is not None else len(programs) // nodes
    engine = Engine(machine, Topology(nodes, ppn), rng=rng)
    return engine.run([lambda r, p=p: p() for p in programs])


class TestBasicMessaging:
    def test_payload_delivered(self):
        def sender():
            yield Send(1, 100, {"hello": "world"})

        def receiver():
            data = yield Recv(0)
            return data

        result = run([sender, receiver])
        assert result.outputs[1] == {"hello": "world"}
        assert result.num_messages == 1
        assert result.total_bytes == 100

    def test_fifo_per_channel(self):
        def sender():
            for i in range(5):
                yield Send(1, 10, i)

        def receiver():
            got = []
            for _ in range(5):
                got.append((yield Recv(0)))
            return got

        result = run([sender, receiver])
        assert result.outputs[1] == [0, 1, 2, 3, 4]

    def test_tags_disambiguate(self):
        def sender():
            yield Send(1, 10, "a", tag=1)
            yield Send(1, 10, "b", tag=2)

        def receiver():
            b = yield Recv(0, tag=2)
            a = yield Recv(0, tag=1)
            return (a, b)

        result = run([sender, receiver])
        assert result.outputs[1] == ("a", "b")

    def test_recv_before_send_posted(self):
        # Receiver arrives at Recv long before the sender sends.
        def sender():
            yield Compute(1e-3)
            yield Send(1, 10, "late")

        def receiver():
            data = yield Recv(0)
            return data

        result = run([sender, receiver])
        assert result.outputs[1] == "late"
        assert result.finish_times[1] > 1e-3

    def test_isend_irecv_wait(self):
        def sender():
            h = yield Isend(1, 10, "x")
            yield Wait(h)

        def receiver():
            h = yield Irecv(0)
            data = yield Wait(h)
            return data

        result = run([sender, receiver])
        assert result.outputs[1] == "x"


class TestTiming:
    def test_intra_node_cost(self):
        m = QUIET
        nbytes = 4096

        def sender():
            yield Send(1, nbytes, None)

        def receiver():
            yield Recv(0)

        result = run([sender, receiver], nodes=1)
        expected = (
            m.cpu_overhead  # send overhead
            + m.alpha_intra
            + nbytes * m.beta_intra
            + m.cpu_overhead  # recv overhead
        )
        assert result.finish_times[1] == pytest.approx(expected)

    def test_inter_node_cost(self):
        m = QUIET
        nbytes = 4096

        def sender():
            yield Send(1, nbytes, None)

        def receiver():
            yield Recv(0)

        result = run([sender, receiver], nodes=2)
        expected = (
            m.cpu_overhead
            + m.alpha_inter
            + nbytes * max(m.beta_inter, m.nic_gap)
            + m.cpu_overhead
        )
        assert result.finish_times[1] == pytest.approx(expected)

    def test_compute_advances_clock(self):
        def prog():
            yield Compute(5e-3)

        result = run([prog, prog])
        np.testing.assert_allclose(result.finish_times, 5e-3)

    def test_reduce_uses_gamma(self):
        def prog():
            yield Reduce(10000)

        result = run([prog, prog])
        np.testing.assert_allclose(
            result.finish_times, 10000 * QUIET.gamma_reduce
        )

    def test_nic_serialises_two_senders_same_node(self):
        nbytes = 10**6

        def sender(dst):
            def prog():
                yield Send(dst, nbytes, None)
            return prog

        def receiver():
            yield Recv(0)

        def receiver1():
            yield Recv(1)

        # Ranks 0,1 on node 0 send to ranks 2 and 4 on nodes 1 and 2.
        engine = Engine(QUIET, Topology(3, 2))

        def factory(rank):
            if rank == 0:
                return sender(2)()
            if rank == 1:
                return sender(4)()
            if rank == 2:
                return receiver()
            if rank == 4:
                return receiver1()
            return idle()

        result = engine.run(factory)
        # Two 1MB injections through one NIC: second arrival is pushed
        # past the serialisation of both.
        later = max(result.finish_times[2], result.finish_times[4])
        assert later > 2 * nbytes * QUIET.nic_gap

    def test_butterfly_symmetric_finish(self):
        # Symmetric exchange must give identical finish times — the
        # regression that motivated the preemption horizon.
        def prog_factory(rank):
            def prog():
                for i, dist in enumerate((1, 2)):
                    peer = rank ^ dist
                    h = yield Irecv(peer, tag=i)
                    yield Send(peer, 0, None, tag=i)
                    yield Wait(h)
            return prog()

        engine = Engine(QUIET, Topology(4, 1))
        result = engine.run(prog_factory)
        assert np.ptp(result.finish_times) == pytest.approx(0.0, abs=1e-12)


class TestErrors:
    def test_deadlock_detected(self):
        def both():
            yield Recv(0)

        def both1():
            yield Recv(1)

        with pytest.raises(DeadlockError):
            run([both1, both])

    def test_self_send_rejected(self):
        def prog():
            yield Send(0, 10, None)

        with pytest.raises(ValueError, match="itself"):
            run([prog, idle])

    def test_bad_peer_rejected(self):
        def prog():
            yield Send(7, 10, None)

        with pytest.raises(ValueError, match="out of range"):
            run([prog, idle])

    def test_negative_size_rejected(self):
        def prog():
            yield Send(1, -5, None)

        with pytest.raises(ValueError, match="negative"):
            run([prog, idle])

    def test_unknown_wait_handle(self):
        def prog():
            yield Wait(99)

        with pytest.raises(ValueError, match="unknown request"):
            run([prog, idle])

    def test_non_op_yield_rejected(self):
        def prog():
            yield "not an op"

        with pytest.raises(TypeError):
            run([prog, idle])

    def test_wrong_program_count(self):
        engine = Engine(QUIET, Topology(2, 1))
        with pytest.raises(ValueError, match="programs"):
            engine.run([lambda r: iter(())] * 3)


class TestNoise:
    def test_noise_determinism(self):
        def sender():
            for _ in range(10):
                yield Send(1, 1000, None)

        def receiver():
            for _ in range(10):
                yield Recv(0)

        results = [
            run([sender, receiver], nodes=2, machine=tiny_testbed, rng=99)
            for _ in range(2)
        ]
        assert results[0].makespan == results[1].makespan

    def test_noise_changes_with_seed(self):
        def sender():
            for _ in range(10):
                yield Send(1, 1000, None)

        def receiver():
            for _ in range(10):
                yield Recv(0)

        a = run([sender, receiver], nodes=2, machine=tiny_testbed, rng=1)
        b = run([sender, receiver], nodes=2, machine=tiny_testbed, rng=2)
        assert a.makespan != b.makespan
