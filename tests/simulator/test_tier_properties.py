"""Property-based equivalence of the two simulation tiers.

For *random* trees (not just the library's constructors) and random
message/segment sizes at one rank per node, the pipelined-tree DP must
match the exact engine bit for bit. This is the strongest guarantee we
have that the fast tier computes the same schedule semantics the engine
executes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.patterns import tree_bcast_program, tree_reduce_program
from repro.machine.model import NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed
from repro.simulator.engine import Engine
from repro.simulator.fastsim import pipeline_tree_time, segment_sizes

QUIET = tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))


@st.composite
def random_tree(draw):
    """A random rooted tree over p ranks (parent[i] < i for i > 0)."""
    p = draw(st.integers(min_value=2, max_value=8))
    parent = np.full(p, -1, dtype=np.int64)
    children = [[] for _ in range(p)]
    for r in range(1, p):
        par = draw(st.integers(min_value=0, max_value=r - 1))
        parent[r] = par
        children[par].append(r)
    # Random child ordering (send order matters for pipelining).
    for r in range(p):
        if len(children[r]) > 1 and draw(st.booleans()):
            children[r] = children[r][::-1]
    return p, parent, children


@st.composite
def random_rounds(draw):
    """Random synchronous rounds: each a permutation without fixed points."""
    p = draw(st.integers(min_value=2, max_value=8))
    n_rounds = draw(st.integers(min_value=1, max_value=4))
    rounds = []
    for _ in range(n_rounds):
        # A cyclic shift is the simplest fixed-point-free permutation;
        # random shift per round varies the pattern.
        shift = draw(st.integers(min_value=1, max_value=p - 1))
        srcs = np.arange(p)
        dsts = (srcs + shift) % p
        nbytes = draw(st.integers(min_value=0, max_value=100_000))
        rounds.append((srcs, dsts, nbytes))
    return p, rounds


class TestRandomRoundEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(data=random_rounds())
    def test_round_time_tracks_engine(self, data):
        from repro.collectives.patterns import exchange
        from repro.simulator.fastsim import Round, round_time

        p, rounds = data
        topo = Topology(p, 1)
        fast = round_time(
            QUIET, topo,
            [Round.make(s, d, n) for s, d, n in rounds],
        )

        def factory(rank):
            def prog():
                for tag, (_srcs, dsts, nbytes) in enumerate(rounds):
                    send_to = int(dsts[rank])
                    recv_from = int(np.flatnonzero(dsts == rank)[0])
                    yield from exchange(
                        send_to, recv_from, nbytes_send=nbytes,
                        payload=None, tag=tag,
                    )

            return prog()

        result = Engine(QUIET, topo).run(factory)
        # round_time assumes a barrier per round (upper-bound-ish); the
        # engine may pipeline across rounds. Bounded band.
        assert result.makespan <= fast * 1.05 + 1e-12
        assert result.makespan >= fast * 0.45

    def test_single_round_exact(self):
        from repro.collectives.patterns import exchange
        from repro.simulator.fastsim import Round, round_time

        p = 6
        topo = Topology(p, 1)
        srcs = np.arange(p)
        dsts = (srcs + 1) % p
        nbytes = 4096
        fast = round_time(QUIET, topo, [Round.make(srcs, dsts, nbytes)])

        def factory(rank):
            def prog():
                yield from exchange(
                    (rank + 1) % p, (rank - 1) % p,
                    nbytes_send=nbytes, payload=None, tag=0,
                )

            return prog()

        result = Engine(QUIET, topo).run(factory)
        assert result.makespan == pytest.approx(fast, rel=1e-9)


class TestRandomTreeEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        tree=random_tree(),
        nbytes=st.integers(min_value=0, max_value=200_000),
        seg_exp=st.integers(min_value=6, max_value=17),
    )
    def test_bcast_dp_matches_engine(self, tree, nbytes, seg_exp):
        p, parent, children = tree
        seg = 1 << seg_exp
        topo = Topology(p, 1)
        fast = pipeline_tree_time(QUIET, topo, parent, children, nbytes, seg)

        sizes = segment_sizes(nbytes, seg)
        payloads = [("s", i) for i in range(len(sizes))]

        def factory(rank):
            return tree_bcast_program(rank, parent, children, sizes, payloads)

        result = Engine(QUIET, topo).run(factory)
        # Semantics: everyone got every segment.
        for output in result.outputs:
            assert output == payloads
        # Timing: exact agreement at one rank per node.
        assert result.makespan == pytest.approx(fast, rel=1e-9, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        tree=random_tree(),
        nbytes=st.integers(min_value=0, max_value=100_000),
    )
    def test_reduce_dp_tracks_engine(self, tree, nbytes):
        p, parent, children = tree
        topo = Topology(p, 1)
        fast = pipeline_tree_time(
            QUIET, topo, parent, children, nbytes, None, reduce_up=True
        )

        sizes = segment_sizes(nbytes, None)

        def factory(rank):
            def merge(a, b):
                return a | b

            return tree_reduce_program(
                rank, parent, children, sizes,
                [frozenset({rank})] * len(sizes), merge,
            )

        result = Engine(QUIET, topo).run(factory)
        root = int(np.flatnonzero(parent == -1)[0])
        assert result.outputs[root][0] == frozenset(range(p))
        # The up-direction DP serialises fold batches slightly
        # differently from the engine's interleaving: bounded band.
        if fast > 0:
            assert 0.6 < result.makespan / fast < 1.5
