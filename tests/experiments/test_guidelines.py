"""Performance-guideline checking (PGMPITuneLib-style)."""

import pytest

from repro.experiments.guidelines import (
    GUIDELINES,
    check_guidelines,
    guidelines_table,
)
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library

INSTANCES = [(4, 2, 64), (4, 2, 65536), (8, 4, 1 << 20)]


@pytest.fixture(scope="module")
def lib():
    return get_library("Open MPI")


class TestCheckGuidelines:
    def test_all_guidelines_checked(self, lib):
        checks = check_guidelines(tiny_testbed, lib, INSTANCES, "default")
        names = {c.guideline for c in checks}
        assert len(names) == len(GUIDELINES)
        assert len(checks) == len(GUIDELINES) * len(INSTANCES)

    def test_severity_definition(self, lib):
        checks = check_guidelines(tiny_testbed, lib, INSTANCES, "default")
        for c in checks:
            assert c.severity == pytest.approx(c.target_time / c.emulation_time)
            assert c.violated == (c.severity > 1.0)

    def test_best_strategy_bounded_by_default(self, lib):
        # Exhaustive best can never be slower than the default choice.
        default = check_guidelines(tiny_testbed, lib, INSTANCES, "default")
        best = check_guidelines(tiny_testbed, lib, INSTANCES, "best")
        d = {(c.guideline, c.nodes, c.ppn, c.msize): c for c in default}
        for c in best:
            key = (c.guideline, c.nodes, c.ppn, c.msize)
            assert c.target_time <= d[key].target_time + 1e-15

    def test_unknown_strategy(self, lib):
        with pytest.raises(ValueError):
            check_guidelines(tiny_testbed, lib, INSTANCES, "oracle")

    def test_intel_library_skips_missing_collectives(self):
        # Intel exposes only the paper's three collectives, so only
        # guidelines fully expressible there are checked (G3 needs just
        # bcast+allreduce).
        intel = get_library("Intel MPI")
        checks = check_guidelines(tiny_testbed, intel, INSTANCES[:1], "default")
        names = {c.guideline for c in checks}
        assert names == {"G3: bcast<=allreduce"}


class TestGuidelinesTable:
    def test_default_violations_exceed_best(self, lib):
        table = guidelines_table(tiny_testbed, lib, INSTANCES)
        total_default = sum(row[2] for row in table.rows)
        total_best = sum(row[4] for row in table.rows)
        # The tuned portfolio repairs (most) violations of the default
        # decision logic — PGMPITuneLib's raison d'etre.
        assert total_default >= total_best

    def test_table_structure(self, lib):
        table = guidelines_table(tiny_testbed, lib, INSTANCES)
        assert len(table.rows) == len(GUIDELINES)
        rendered = table.render()
        assert "violations_default" in rendered
