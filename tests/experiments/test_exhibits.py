"""Integration: regenerate every paper exhibit at CI scale.

These are the end-to-end checks that the reproduction works: each
driver must run, produce structurally correct data, and show the
paper's qualitative findings. Marked slow — they benchmark real
(CI-scale) datasets on first use and share them through the disk cache.
"""

import numpy as np
import pytest

from repro.experiments import figures, tables
from repro.experiments.cache import dataset_cached
from repro.experiments.datasets import Scale

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module", autouse=True)
def shared_cache(tmp_path_factory, request):
    """Datasets cached under results/datasets so runs stay fast."""
    # Use the workspace cache if writable; fall back to tmp.
    import os

    os.environ.setdefault("REPRO_CACHE_DIR", "results/datasets")
    yield


class TestFigure2:
    def test_chain_speedup_shape(self):
        fig = figures.figure2(Scale.CI)
        speedups = fig.column("speedup")
        msizes = fig.column("msize")
        # Large messages: order-of-magnitude gains for good configs.
        at_4mib = speedups[msizes == msizes.max()]
        assert at_4mib.max() > 8.0
        # Small messages: chains cannot beat linear by much.
        at_1b = speedups[msizes == msizes.min()]
        assert at_1b.max() < 8.0

    def test_parameters_matter(self):
        fig = figures.figure2(Scale.CI)
        msizes = fig.column("msize")
        speedups = fig.column("speedup")
        at_big = speedups[msizes == msizes.max()]
        # The paper's Figure 2 point: the spread across configurations
        # at 4 MiB is large (10..50x there; >3x relative spread here).
        assert at_big.max() / at_big.min() > 3.0


class TestStrategyFigures:
    @pytest.mark.parametrize("driver", [figures.figure4, figures.figure7])
    def test_prediction_beats_default_ompi(self, driver):
        fig = driver(Scale.CI)
        pred = fig.column("norm_predicted")
        default = fig.column("norm_default")
        # Predicted strategy close to the oracle and ahead of default.
        assert np.median(pred) < 1.3
        assert np.mean(default) > np.mean(pred)

    def test_intel_default_hard_to_beat(self):
        fig = figures.figure6(Scale.CI)
        default = fig.column("norm_default")
        pred = fig.column("norm_predicted")
        # Figure 6 finding: Intel's default is already near-optimal;
        # prediction must keep up (tie within tolerance).
        assert np.median(default) < 1.6
        assert np.mean(pred) < np.mean(default) * 1.25

    def test_supermuc_bcast(self):
        fig = figures.figure8(Scale.CI)
        assert len(fig.rows) > 0
        assert np.median(fig.column("norm_predicted")) < 1.5

    def test_normalisation_lower_bound(self):
        fig = figures.figure4(Scale.CI)
        assert (fig.column("norm_predicted") >= 1.0 - 1e-9).all()
        assert (fig.column("norm_default") >= 1.0 - 1e-9).all()


class TestFigure5:
    def test_all_learners_present(self):
        fig = figures.figure5(Scale.CI)
        learners = set(fig.column("learner"))
        assert learners == {"KNN", "GAM", "XGBoost"}

    def test_multiple_algorithms_selected(self):
        fig = figures.figure5(Scale.CI)
        algids = set(int(a) for a in fig.column("algid"))
        assert len(algids) >= 3  # the predictors use a real portfolio

    def test_learners_disagree_somewhere(self):
        fig = figures.figure5(Scale.CI)
        by_key = {}
        for learner, n, ppn, m, algid, _ in fig.rows:
            by_key.setdefault((n, ppn, m), {})[learner] = algid
        disagreements = sum(
            1 for votes in by_key.values() if len(set(votes.values())) > 1
        )
        assert disagreements > 0


class TestTables:
    def test_table2_rows(self):
        table = tables.table2(Scale.CI)
        assert len(table.rows) == 8
        samples = [row[-1] for row in table.rows]
        assert all(s > 0 for s in samples)

    def test_table4_speedups(self):
        table = tables.table4(Scale.CI, dids=("d1", "d6"))
        assert len(table.rows) == 3  # one per learner
        for row in table.rows:
            mean = row[-1]
            assert mean > 0.8  # never catastrophically worse than default

    def test_table4_small_split(self):
        large = tables.table4(Scale.CI, dids=("d1",))
        small = tables.table4(Scale.CI, dids=("d1",), small=True)
        # The paper's Table IVb finding: little is lost with the small
        # training set.
        for row_l, row_s in zip(large.rows, small.rows, strict=True):
            assert row_s[-1] > row_l[-1] * 0.7


class TestE1OnlineVsOffline:
    """E1 with the closed-loop strategy from the serve→retrain loop."""

    @pytest.fixture(scope="class")
    def table(self):
        from repro.experiments.extensions import online_vs_offline

        return online_vs_offline(Scale.CI, num_calls=200)

    def test_all_three_strategies_reported(self, table):
        strategies = [row[0] for row in table.rows]
        assert strategies == [
            "offline ML (paper)",
            "online STAR-MPI",
            "closed loop (feedback retrain)",
        ]

    def test_closed_loop_regret_between_offline_and_online(self, table):
        rows = {row[0]: row for row in table.rows}
        offline = rows["offline ML (paper)"][1]
        online = rows["online STAR-MPI"][1]
        closed = rows["closed loop (feedback retrain)"][1]
        # The closed loop explores only where the analytical prior
        # disagrees with the learned pick, so per-call cost must stay
        # far below full online tuning...
        assert closed < online
        # ...and within a bounded insurance premium over the pure
        # offline pick in this drift-free world (the payoff under an
        # actual shift is measured by retrain_metrics in bench_report).
        assert closed < offline * 1.5

    def test_waste_shares_sum_to_100(self, table):
        assert sum(row[2] for row in table.rows) == pytest.approx(100.0)

    def test_exploration_budget_reported_and_bounded(self, table):
        import re

        match = re.search(r"explored (\d+(?:\.\d+)?)% of its calls",
                          table.note)
        assert match, table.note
        assert float(match.group(1)) < 50.0


class TestCache:
    def test_disk_round_trip(self, tmp_path, monkeypatch):
        from repro.experiments import cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache_mod.clear_memory_cache()
        a = dataset_cached("d6", Scale.CI, seed=123)
        assert (tmp_path / "d6-ci-s123.npz").exists()
        cache_mod.clear_memory_cache()
        b = dataset_cached("d6", Scale.CI, seed=123)
        np.testing.assert_array_equal(a.time, b.time)
        cache_mod.clear_memory_cache()

    def test_corrupt_cache_regenerated(self, tmp_path, monkeypatch):
        from repro.experiments import cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache_mod.clear_memory_cache()
        a = dataset_cached("d6", Scale.CI, seed=7)
        # Simulate a torn write from an interrupted campaign.
        (tmp_path / "d6-ci-s7.npz").write_bytes(b"\x00not a zipfile")
        cache_mod.clear_memory_cache()
        b = dataset_cached("d6", Scale.CI, seed=7)
        np.testing.assert_array_equal(a.time, b.time)
        # The repaired archive must now load cleanly.
        cache_mod.clear_memory_cache()
        c = dataset_cached("d6", Scale.CI, seed=7)
        np.testing.assert_array_equal(a.time, c.time)
        cache_mod.clear_memory_cache()

    def test_memory_cache_keyed_by_dir(self, tmp_path, monkeypatch):
        from repro.experiments import cache as cache_mod

        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        cache_mod.clear_memory_cache()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(dir_a))
        a = dataset_cached("d6", Scale.CI, seed=7)
        # Switching the cache dir mid-process must NOT serve dir_a's
        # in-memory object for dir_b.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(dir_b))
        b = dataset_cached("d6", Scale.CI, seed=7)
        assert a is not b
        assert (dir_a / "d6-ci-s7.npz").exists()
        assert (dir_b / "d6-ci-s7.npz").exists()
        cache_mod.clear_memory_cache()
