"""ASCII rendering helpers."""

import pytest

from repro.experiments.report import render_bar, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["name", "value"], [("a", 1.5), ("bb", 2.0)], floatfmt=".1f"
        )
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "-+-" in lines[1]
        assert "1.5" in lines[2]

    def test_title(self):
        text = render_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_column_alignment(self):
        text = render_table(["col"], [("x",), ("longer",)])
        data_lines = text.splitlines()[2:]
        assert len({len(line) for line in data_lines}) == 1


class TestRenderBar:
    def test_full_bar(self):
        assert render_bar(2.0, scale=1.0, width=10) == "#" * 10

    def test_half_bar(self):
        assert render_bar(0.5, scale=1.0, width=10) == "#" * 5 + "." * 5

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            render_bar(1.0, scale=0.0)
