"""Dataset specs (Table II) and node splits (Table III)."""

import numpy as np
import pytest

from repro.collectives.base import CollectiveKind
from repro.experiments.datasets import (
    DATASETS,
    MSIZES_8,
    MSIZES_10,
    Scale,
    generate_dataset,
)
from repro.experiments.splits import SPLITS, split_dataset
from repro.machine.zoo import get_machine


class TestTable2Specs:
    def test_eight_datasets(self):
        assert sorted(DATASETS) == [f"d{i}" for i in range(1, 9)]

    def test_routines_match_paper(self):
        expected = {
            "d1": (CollectiveKind.BCAST, "Open MPI", "Hydra"),
            "d2": (CollectiveKind.ALLREDUCE, "Open MPI", "Hydra"),
            "d3": (CollectiveKind.BCAST, "Open MPI", "Jupiter"),
            "d4": (CollectiveKind.ALLREDUCE, "Open MPI", "Jupiter"),
            "d5": (CollectiveKind.ALLREDUCE, "Intel MPI", "Hydra"),
            "d6": (CollectiveKind.ALLTOALL, "Intel MPI", "Hydra"),
            "d7": (CollectiveKind.BCAST, "Intel MPI", "Hydra"),
            "d8": (CollectiveKind.BCAST, "Open MPI", "SuperMUC-NG"),
        }
        for did, (kind, lib, machine) in expected.items():
            spec = DATASETS[did]
            assert (spec.collective, spec.library, spec.machine) == (
                kind, lib, machine,
            )

    def test_broken_bcast_excluded_in_ompi_datasets(self):
        for did in ("d1", "d3", "d8"):
            assert 8 in DATASETS[did].exclude_algids
        assert DATASETS["d7"].exclude_algids == ()  # Intel bcast unaffected

    def test_grids_fit_machines(self):
        for spec in DATASETS.values():
            machine = get_machine(spec.machine)
            for scale in Scale:
                grid = spec.grid(scale)
                assert max(grid.nodes) <= machine.max_nodes
                assert max(grid.ppns) <= machine.max_ppn

    def test_message_grids(self):
        assert len(MSIZES_10) == 10
        assert len(MSIZES_8) == 8
        assert MSIZES_10[-1] == 4 << 20  # up to 4 MiB, as in §IV-C

    def test_paper_grid_axes_match_table2(self):
        g1 = DATASETS["d1"].grid(Scale.PAPER)
        assert len(g1.ppns) == 10
        assert len(g1.msizes) == 10
        g8 = DATASETS["d8"].grid(Scale.PAPER)
        assert len(g8.nodes) == 5 and len(g8.ppns) == 5 and len(g8.msizes) == 8


class TestExtensionDatasets:
    def test_lookup(self):
        from repro.experiments.datasets import EXTENSION_DATASETS, dataset_spec

        assert dataset_spec("d1") is DATASETS["d1"]
        assert dataset_spec("dx1") is EXTENSION_DATASETS["dx1"]
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset_spec("d99")

    def test_extension_specs(self):
        from repro.experiments.datasets import EXTENSION_DATASETS

        assert EXTENSION_DATASETS["dx1"].collective is CollectiveKind.REDUCE
        assert EXTENSION_DATASETS["dx2"].collective is CollectiveKind.ALLGATHER

    def test_extension_generation_tiny(self):
        from repro.bench.repro_mpi import BenchmarkSpec

        ds = generate_dataset(
            "dx2", Scale.CI, seed=0, spec=BenchmarkSpec(max_nreps=2)
        )
        assert ds.collective is CollectiveKind.ALLGATHER
        assert len(ds) > 0


class TestTable3Splits:
    def test_paper_splits_match_table3(self):
        hydra = SPLITS[("Hydra", Scale.PAPER)]
        assert hydra.full_train == (4, 8, 16, 20, 24, 32, 36)
        assert hydra.small_train == (4, 16, 36)
        assert hydra.test == (7, 13, 19, 27, 35)
        smuc = SPLITS[("SuperMUC-NG", Scale.PAPER)]
        assert smuc.full_train == smuc.small_train == (20, 32, 48)

    @pytest.mark.parametrize("scale", list(Scale))
    def test_train_test_disjoint(self, scale):
        for (_machine, s), spec in SPLITS.items():
            if s is not scale:
                continue
            assert not set(spec.full_train) & set(spec.test)
            assert set(spec.small_train) <= set(spec.full_train)

    @pytest.mark.parametrize("scale", list(Scale))
    def test_split_nodes_present_in_grids(self, scale):
        for spec in DATASETS.values():
            split = SPLITS[(spec.machine, scale)]
            grid_nodes = set(spec.grid(scale).nodes)
            assert set(split.full_train) <= grid_nodes
            assert set(split.test) <= grid_nodes


class TestGeneration:
    @pytest.fixture(scope="class")
    def mini_d6(self):
        # d6 (alltoall) has the smallest config space: cheap to generate.
        from repro.bench.repro_mpi import BenchmarkSpec

        return generate_dataset(
            "d6", Scale.CI, seed=0, spec=BenchmarkSpec(max_nreps=3)
        )

    def test_dataset_metadata(self, mini_d6):
        assert mini_d6.machine == "Hydra"
        assert mini_d6.library.startswith("Intel MPI")
        assert mini_d6.num_algorithms == 5

    def test_grid_covered(self, mini_d6):
        spec = DATASETS["d6"]
        grid = spec.grid(Scale.CI)
        assert set(np.unique(mini_d6.nodes)) == set(grid.nodes)
        assert set(np.unique(mini_d6.msize)) == set(grid.msizes)

    def test_split_dataset(self, mini_d6):
        train, test = split_dataset(mini_d6, Scale.CI)
        assert set(np.unique(train.nodes)) == {4, 8, 16}
        assert set(np.unique(test.nodes)) == {7, 13}
        train_small, _ = split_dataset(mini_d6, Scale.CI, small=True)
        assert set(np.unique(train_small.nodes)) == {4, 16}

    def test_split_missing_nodes_raises(self, mini_d6):
        only7 = mini_d6.filter_nodes([7])
        with pytest.raises(ValueError, match="split nodes"):
            split_dataset(only7, Scale.CI)

    def test_generation_deterministic(self):
        from repro.bench.repro_mpi import BenchmarkSpec

        spec = BenchmarkSpec(max_nreps=2)
        a = generate_dataset("d6", Scale.CI, seed=5, spec=spec)
        b = generate_dataset("d6", Scale.CI, seed=5, spec=spec)
        np.testing.assert_array_equal(a.time, b.time)
