"""Cache observability: corrupt cached datasets announce themselves.

Satellite of the telemetry PR: a torn ``.npz`` or mangled JSON sidecar
must emit a structured ``cache_corrupt`` event (with the offending path
and the exception) before being regenerated, and hit/miss counters must
track where datasets actually came from.
"""

import json

import numpy as np
import pytest

from repro.experiments import cache as cache_mod
from repro.experiments.cache import dataset_cached
from repro.experiments.datasets import Scale
from repro.obs import get_telemetry


@pytest.fixture
def workspace(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache_mod.clear_memory_cache()
    yield tmp_path
    cache_mod.clear_memory_cache()


class TestCacheCorruptEvent:
    def test_torn_npz_emits_structured_event(self, workspace):
        a = dataset_cached("d6", Scale.CI, seed=5)
        (workspace / "d6-ci-s5.npz").write_bytes(b"\x00not a zipfile")
        cache_mod.clear_memory_cache()
        with get_telemetry().capture() as sink:
            b = dataset_cached("d6", Scale.CI, seed=5)
        (event,) = sink.named("cache_corrupt")
        assert event.kind == "event"
        assert event.fields["path"].endswith("d6-ci-s5")
        assert "Error" in event.fields["error"] or ":" in event.fields["error"]
        assert event.fields["action"] == "regenerate"
        np.testing.assert_array_equal(a.time, b.time)

    def test_mangled_sidecar_emits_event(self, workspace):
        dataset_cached("d6", Scale.CI, seed=6)
        (workspace / "d6-ci-s6.json").write_text('{"name": "d6"')  # torn
        cache_mod.clear_memory_cache()
        with get_telemetry().capture() as sink:
            dataset_cached("d6", Scale.CI, seed=6)
        assert len(sink.named("cache_corrupt")) == 1

    def test_clean_cache_stays_silent(self, workspace):
        dataset_cached("d6", Scale.CI, seed=7)
        cache_mod.clear_memory_cache()
        with get_telemetry().capture() as sink:
            dataset_cached("d6", Scale.CI, seed=7)
        assert sink.named("cache_corrupt") == []

    def test_corrupt_counter_incremented(self, workspace):
        telemetry = get_telemetry()
        dataset_cached("d6", Scale.CI, seed=8)
        (workspace / "d6-ci-s8.npz").write_bytes(b"junk")
        cache_mod.clear_memory_cache()
        before = telemetry.counters_snapshot().get("cache.corrupt", 0)
        dataset_cached("d6", Scale.CI, seed=8)
        after = telemetry.counters_snapshot().get("cache.corrupt", 0)
        assert after == before + 1


class TestCacheCounters:
    def _count(self, name):
        return get_telemetry().counters_snapshot().get(name, 0)

    def test_miss_then_memory_hit_then_disk_hit(self, workspace):
        misses = self._count("cache.misses")
        dataset_cached("d6", Scale.CI, seed=9)
        assert self._count("cache.misses") == misses + 1

        memory_hits = self._count("cache.memory_hits")
        dataset_cached("d6", Scale.CI, seed=9)
        assert self._count("cache.memory_hits") == memory_hits + 1

        cache_mod.clear_memory_cache()
        disk_hits = self._count("cache.disk_hits")
        dataset_cached("d6", Scale.CI, seed=9)
        assert self._count("cache.disk_hits") == disk_hits + 1

    def test_regenerated_archive_loads_cleanly(self, workspace):
        a = dataset_cached("d6", Scale.CI, seed=10)
        stem = workspace / "d6-ci-s10"
        stem.with_suffix(".json").write_text(json.dumps({"bogus": 1}))
        cache_mod.clear_memory_cache()
        dataset_cached("d6", Scale.CI, seed=10)
        cache_mod.clear_memory_cache()
        with get_telemetry().capture() as sink:
            c = dataset_cached("d6", Scale.CI, seed=10)
        assert sink.named("cache_corrupt") == []
        np.testing.assert_array_equal(a.time, c.time)
