"""High-level AutoTuner pipeline."""

import pytest

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import GridSpec
from repro.core.tuner import AutoTuner
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library


@pytest.fixture(scope="module")
def tuned():
    tuner = AutoTuner(
        tiny_testbed,
        get_library("Open MPI"),
        "bcast",
        learner="KNN",
        bench_spec=BenchmarkSpec(max_nreps=5),
        seed=1,
    )
    tuner.benchmark(
        GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=(64, 4096, 262144)),
        exclude_algids=(8,),
    )
    tuner.train()
    return tuner


class TestPipeline:
    def test_requires_benchmark_first(self):
        tuner = AutoTuner(tiny_testbed, get_library("Open MPI"), "bcast")
        with pytest.raises(RuntimeError, match="benchmark"):
            tuner.train()

    def test_requires_train_before_recommend(self):
        tuner = AutoTuner(tiny_testbed, get_library("Open MPI"), "bcast")
        with pytest.raises(RuntimeError, match="train"):
            tuner.recommend(2, 1, 64)

    def test_unknown_learner(self):
        with pytest.raises(ValueError, match="unknown learner"):
            AutoTuner(
                tiny_testbed, get_library("Open MPI"), "bcast", learner="SVM"
            )

    def test_recommendation_from_space(self, tuned):
        cfg = tuned.recommend(5, 2, 1024)  # unseen node count
        assert cfg in tuned.library.config_space("bcast").configs

    def test_excluded_algid_never_recommended(self, tuned):
        for m in (1, 1024, 262144):
            assert tuned.recommend(5, 2, m).algid != 8

    def test_write_rules_ompi(self, tuned, tmp_path):
        path = tmp_path / "rules.conf"
        text = tuned.write_rules(str(path), nodes=5, ppn=2)
        assert path.read_text() == text
        assert "comm size" in text

    def test_write_rules_json(self, tuned, tmp_path):
        path = tmp_path / "rules.json"
        text = tuned.write_rules(str(path), nodes=5, ppn=2, fmt="json")
        assert '"rules"' in text

    def test_write_rules_bad_format(self, tuned, tmp_path):
        with pytest.raises(ValueError):
            tuned.write_rules(str(tmp_path / "x"), nodes=5, ppn=2, fmt="yaml")

    def test_custom_learner_factory(self):
        from repro.ml import RidgeRegressor

        tuner = AutoTuner(
            tiny_testbed,
            get_library("Open MPI"),
            "alltoall",
            learner=lambda: RidgeRegressor(log_target=True),
            bench_spec=BenchmarkSpec(max_nreps=3),
        )
        tuner.benchmark(
            GridSpec(nodes=(2, 4), ppns=(1,), msizes=(64, 1024, 4096, 65536))
        )
        tuner.train()
        tuner.recommend(3, 1, 1024)
