"""Online (STAR-MPI-style) selection baseline."""

import numpy as np
import pytest

from repro.core.online import OnlineSelector, Policy
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library


@pytest.fixture(scope="module")
def lib():
    return get_library("Open MPI")


def make(lib, policy="star", **kw):
    return OnlineSelector(
        tiny_testbed, lib, "alltoall", policy=policy, rng=0, **kw
    )


class TestValidation:
    def test_bad_epsilon(self, lib):
        with pytest.raises(ValueError):
            make(lib, epsilon=1.5)

    def test_bad_num_calls(self, lib):
        with pytest.raises(ValueError):
            make(lib).run(Topology(2, 2), 1024, 0)

    def test_unsupported_instance(self, lib):
        sel = OnlineSelector(
            tiny_testbed, lib, "allgather",
            exclude_algids=(1, 2, 3, 4, 5, 6), rng=0,
        )
        with pytest.raises(ValueError, match="no supported"):
            sel.run(Topology(3, 1), 10, 5)


class TestStarPolicy:
    def test_explores_every_candidate_once(self, lib):
        topo = Topology(4, 2)
        result = make(lib).run(topo, 1024, 30)
        k = len({c.label for c in result.choices[:5]})
        assert k == 5  # the alltoall space has 5 configs

    def test_commits_after_sweep(self, lib):
        topo = Topology(4, 2)
        result = make(lib).run(topo, 1024, 40)
        post = {c.label for c in result.choices[5:]}
        assert len(post) == 1  # pure exploitation afterwards

    def test_converges_under_low_noise(self, lib):
        topo = Topology(4, 2)
        result = make(lib).run(topo, 65536, 50)
        assert result.converged_to_best

    def test_regret_positive_and_bounded(self, lib):
        topo = Topology(4, 2)
        result = make(lib).run(topo, 65536, 100)
        assert result.regret >= 0.0
        # After convergence per-call regret is only noise.
        tail = result.call_times[20:]
        assert tail.mean() < result.oracle_times[0] * 1.2

    def test_exploration_cost_front_loaded(self, lib):
        topo = Topology(4, 2)
        result = make(lib).run(topo, 65536, 60)
        head = result.call_times[:5].mean()
        tail = result.call_times[30:].mean()
        assert head > tail  # the STAR-MPI downside the paper avoids


class TestOtherPolicies:
    @pytest.mark.parametrize("policy", ["epsilon", "ucb"])
    def test_runs_and_converges(self, lib, policy):
        topo = Topology(4, 2)
        result = make(lib, policy=policy).run(topo, 65536, 80)
        assert result.converged_to_best
        assert len(result.call_times) == 80

    def test_epsilon_keeps_exploring(self, lib):
        topo = Topology(4, 2)
        result = make(lib, policy="epsilon", epsilon=0.5).run(topo, 1024, 200)
        post = {c.label for c in result.choices[50:]}
        assert len(post) > 1  # still sampling alternatives

    def test_determinism_per_seed(self, lib):
        topo = Topology(4, 2)
        a = OnlineSelector(tiny_testbed, lib, "alltoall", rng=5).run(
            topo, 1024, 30
        )
        b = OnlineSelector(tiny_testbed, lib, "alltoall", rng=5).run(
            topo, 1024, 30
        )
        np.testing.assert_array_equal(a.call_times, b.call_times)

    def test_policy_enum_coercion(self, lib):
        assert make(lib, policy=Policy.UCB).policy is Policy.UCB
        with pytest.raises(ValueError):
            make(lib, policy="thompson")
