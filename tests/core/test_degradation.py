"""Graceful degradation: fit quarantine, inf fallbacks, rules validation."""

import json

import numpy as np
import pytest

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import GridSpec
from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.config_gen import (
    RulesValidationError,
    parse_ompi_rules,
    render_json,
    render_ompi_rules,
    selection_table,
    validate_rules,
)
from repro.core.dataset import CorruptDatasetError, PerfDataset
from repro.core.selector import AlgorithmSelector, NoModelError
from repro.core.surface import DecisionSurface
from repro.core.tuner import AutoTuner
from repro.machine.zoo import tiny_testbed
from repro.ml import KNNRegressor
from repro.ml.base import Regressor
from repro.mpilib import get_library
from repro.obs import get_telemetry

from .test_selector import crossover_dataset


class ExplodingRegressor(Regressor):
    """fit() always raises — a deliberately broken learner."""

    def fit(self, X, y):
        raise RuntimeError("numerical meltdown")

    def predict(self, X):  # pragma: no cover - never fitted
        raise AssertionError("predict on an unfitted exploding regressor")


class NaNRegressor(Regressor):
    """Fits fine, predicts NaN everywhere — a model gone bad quietly."""

    def fit(self, X, y):
        self._fitted = True
        return self

    def predict(self, X):
        self._check_fitted()
        return np.full(len(np.atleast_2d(X)), np.nan)


def one_bad_factory(bad_calls: set[int]):
    """Factory whose Nth call (0-based) yields an exploding regressor.

    Model creation is serial and in configuration order (documented in
    AlgorithmSelector.fit), so call index == eligible-config index.
    """
    calls = {"n": 0}

    def factory():
        i = calls["n"]
        calls["n"] += 1
        return ExplodingRegressor() if i in bad_calls else KNNRegressor()

    return factory


class TestSelectorQuarantine:
    def test_one_failing_config_trains_the_rest(self):
        ds = crossover_dataset()
        telemetry = get_telemetry()
        before = telemetry.counters_snapshot().get("selector.fit_failures", 0)
        with telemetry.capture() as sink:
            sel = AlgorithmSelector(one_bad_factory({1})).fit(ds)
        assert sel.quarantined_ == {1}
        assert sorted(sel.models_) == [0]
        after = telemetry.counters_snapshot().get("selector.fit_failures", 0)
        assert after - before == 1
        events = [e for e in sink.events if e.name == "selector_fit_failure"]
        assert len(events) == 1
        assert events[0].fields["cid"] == 1
        assert "meltdown" in events[0].fields["error"]
        # the quarantined config can never win
        times = sel.predict_times(4, 1, 64)
        assert np.isinf(times[0, 1]) and np.isfinite(times[0, 0])
        assert sel.select(4, 1, 64).name == "latency"

    def test_all_failing_raises_with_quarantine_count(self):
        with pytest.raises(ValueError, match="failed to fit"):
            AlgorithmSelector(lambda: ExplodingRegressor()).fit(
                crossover_dataset()
            )

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_quarantine_deterministic_across_jobs(self, n_jobs):
        sel = AlgorithmSelector(one_bad_factory({0})).fit(
            crossover_dataset(), n_jobs=n_jobs
        )
        assert sel.quarantined_ == {0}
        assert sorted(sel.models_) == [1]


class TestNaNPredictions:
    def test_sanitized_to_inf_with_counter(self):
        telemetry = get_telemetry()
        sel = AlgorithmSelector(lambda: NaNRegressor()).fit(crossover_dataset())
        before = telemetry.counters_snapshot().get(
            "selector.predictions_sanitized", 0
        )
        times = sel.predict_times([4, 8], [1, 1], [64, 128])
        assert np.isinf(times).all()  # NaN never reaches the argmin
        after = telemetry.counters_snapshot().get(
            "selector.predictions_sanitized", 0
        )
        assert after - before == times.size

    def test_select_ids_sentinel_and_scalar_error(self):
        sel = AlgorithmSelector(lambda: NaNRegressor()).fit(crossover_dataset())
        assert sel.select_ids([4, 8], [1, 1], [64, 128]).tolist() == [-1, -1]
        with pytest.raises(NoModelError):
            sel.select(4, 1, 64)
        assert sel.ranked(4, 1, 64) == []


class TestSelectionTableFallback:
    def test_fallback_fills_uncovered_rows(self):
        sel = AlgorithmSelector(lambda: NaNRegressor()).fit(crossover_dataset())
        default = AlgorithmConfig.make("bcast", 99, "default")
        table = selection_table(
            sel, 4, 1, (64, 1024), fallback=lambda m: default
        )
        assert [m for m, _ in table] == [64, 1024]
        assert all(cfg is default for _, cfg in table)

    def test_no_fallback_raises(self):
        sel = AlgorithmSelector(lambda: NaNRegressor()).fit(crossover_dataset())
        with pytest.raises(NoModelError, match="no fallback"):
            selection_table(sel, 4, 1, (64,))


class TestSurfaceDegradation:
    def test_uncovered_cells_sentinel_and_counter(self):
        telemetry = get_telemetry()
        sel = AlgorithmSelector(lambda: NaNRegressor()).fit(crossover_dataset())
        before = telemetry.counters_snapshot().get("surface.uncovered_cells", 0)
        surface = DecisionSurface.from_selector(sel, (4, 8), (1,), (64, 1024))
        after = telemetry.counters_snapshot().get("surface.uncovered_cells", 0)
        assert (surface.best_cid == -1).all()
        assert after - before == surface.num_cells
        with pytest.raises(NoModelError):
            surface.recommend(4, 1, 64)

    def test_partially_covered_surface(self):
        sel = AlgorithmSelector(one_bad_factory({1})).fit(crossover_dataset())
        surface = DecisionSurface.from_selector(sel, (4,), (1,), (64, 1 << 20))
        # config 0 still has a model, so every cell is covered by it
        assert (surface.best_cid == 0).all()


def make_tuner(learner) -> AutoTuner:
    return AutoTuner(
        machine=tiny_testbed,
        library=get_library("Open MPI"),
        collective="bcast",
        learner=learner,
        bench_spec=BenchmarkSpec(max_nreps=5),
        seed=0,
    )


TINY_GRID = GridSpec((2, 4), (1, 2), (1, 1024))


class TestTunerFallback:
    def test_recommend_falls_back_to_library_default(self):
        tuner = make_tuner(lambda: NaNRegressor())
        tuner.benchmark(TINY_GRID, name="fb")
        tuner.train()
        telemetry = get_telemetry()
        before = telemetry.counters_snapshot().get("tuner.fallback_default", 0)
        with telemetry.capture() as sink:
            config = tuner.recommend(4, 2, 1024)
        assert config == tuner.default_config(4, 2, 1024)
        after = telemetry.counters_snapshot().get("tuner.fallback_default", 0)
        assert after - before == 1
        events = [e for e in sink.events if e.name == "tuner_fallback"]
        assert events and events[0].fields["source"] == "recommend"

    def test_recommend_fast_falls_back_on_uncovered_surface(self):
        tuner = make_tuner(lambda: NaNRegressor())
        tuner.benchmark(TINY_GRID, name="fbf")
        tuner.train()
        tuner.build_surface((2, 4), (1, 2), (1, 1024))
        with get_telemetry().capture() as sink:
            config = tuner.recommend_fast(4, 2, 1024)
        assert config == tuner.default_config(4, 2, 1024)
        events = [e for e in sink.events if e.name == "tuner_fallback"]
        assert events and events[0].fields["source"] == "recommend_fast"

    def test_healthy_tuner_never_falls_back(self):
        tuner = make_tuner("KNN")
        tuner.benchmark(TINY_GRID, name="ok")
        tuner.train()
        with get_telemetry().capture() as sink:
            tuner.recommend(4, 2, 1024)
        assert not [e for e in sink.events if e.name == "tuner_fallback"]


class TestWriteRules:
    @pytest.mark.parametrize("fmt", ["ompi", "json"])
    def test_degraded_tuner_still_emits_complete_valid_file(
        self, fmt, tmp_path
    ):
        """Every model NaN -> every row from the library default, file
        still parses back clean. The ISSUE's acceptance scenario."""
        tuner = make_tuner(lambda: NaNRegressor())
        tuner.benchmark(TINY_GRID, name="wr")
        tuner.train()
        path = tmp_path / f"rules.{fmt}"
        msizes = (0, 1024, 65536)
        text = tuner.write_rules(str(path), 4, 2, msizes=msizes, fmt=fmt)
        assert path.read_text() == text
        validate_rules(text, fmt, "bcast")  # idempotent round trip
        if fmt == "ompi":
            kind, comm, rules = parse_ompi_rules(text)
            assert kind is CollectiveKind.BCAST
            assert comm == 8 and len(rules) == len(msizes)
        else:
            payload = json.loads(text)
            assert len(payload["rules"]) == len(msizes)
        # atomic write leaves no droppings behind
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_write_is_atomic_under_validation_failure(self, tmp_path):
        """Validation rejects before anything reaches disk."""
        tuner = make_tuner("KNN")
        tuner.benchmark(TINY_GRID, name="at")
        tuner.train()
        path = tmp_path / "rules.txt"
        with pytest.raises(ValueError, match="unknown format"):
            tuner.write_rules(str(path), 4, 2, fmt="yaml")
        assert not list(tmp_path.iterdir())


class TestValidateRules:
    def test_ompi_wrong_collective(self):
        cfg = AlgorithmConfig.make("bcast", 1, "linear")
        text = render_ompi_rules("bcast", 4, 2, [(0, cfg)])
        with pytest.raises(RulesValidationError, match="expected"):
            validate_rules(text, "ompi", "allreduce")

    def test_ompi_negative_field(self):
        cfg = AlgorithmConfig.make("bcast", 1, "linear")
        text = render_ompi_rules("bcast", 4, 2, [(0, cfg)])
        broken = text.replace("0 1 0 0", "-4 1 0 0")
        with pytest.raises(RulesValidationError, match="negative"):
            validate_rules(broken, "ompi", "bcast")

    def test_ompi_truncated(self):
        with pytest.raises(RulesValidationError, match="parse back"):
            validate_rules("1\n7\n", "ompi", "bcast")

    def test_json_nan_constant(self):
        cfg = AlgorithmConfig.make("bcast", 1, "linear")
        text = render_json("bcast", 4, 2, [(0, cfg)])
        broken = text.replace('"algid": 1', '"algid": 1, "x": NaN')
        with pytest.raises(RulesValidationError, match="[Nn]on-finite"):
            validate_rules(broken, "json", "bcast")

    def test_json_negative_msize(self):
        cfg = AlgorithmConfig.make("bcast", 1, "linear")
        text = render_json("bcast", 4, 2, [(0, cfg)])
        broken = text.replace('"msize": 0', '"msize": -1')
        with pytest.raises(RulesValidationError, match="msize"):
            validate_rules(broken, "json", "bcast")

    def test_unknown_format(self):
        with pytest.raises(RulesValidationError, match="unknown"):
            validate_rules("{}", "toml", "bcast")


def toy_dataset(times) -> PerfDataset:
    configs = (AlgorithmConfig.make("bcast", 1, "linear"),)
    n = len(times)
    return PerfDataset(
        name="toy",
        collective=CollectiveKind.BCAST,
        library="l",
        machine="m",
        configs=configs,
        config_id=np.zeros(n, np.int64),
        nodes=np.full(n, 2, np.int64),
        ppn=np.ones(n, np.int64),
        msize=np.full(n, 64, np.int64),
        time=np.asarray(times, dtype=float),
    )


class TestDatasetGuard:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf, -1e-6])
    def test_validate_rejects_bad_times(self, bad):
        with pytest.raises(CorruptDatasetError, match="row"):
            toy_dataset([1e-5, bad, 2e-5]).validate()

    def test_validate_accepts_clean(self):
        ds = toy_dataset([1e-5, 2e-5])
        assert ds.validate() is ds

    def test_merge_validates_both_operands(self):
        clean = toy_dataset([1e-5])
        corrupt = toy_dataset([np.nan])
        with pytest.raises(CorruptDatasetError):
            clean.merge(corrupt)
        with pytest.raises(CorruptDatasetError):
            corrupt.merge(clean)

    def test_merge_concatenates(self):
        merged = toy_dataset([1e-5]).merge(toy_dataset([2e-5]), name="m")
        assert len(merged) == 2 and merged.name == "m"

    def test_load_rejects_corrupt_archive_with_event(self, tmp_path):
        ds = toy_dataset([1e-5, 2e-5])
        ds.time[1] = np.nan  # poison after construction, then save
        ds.save(tmp_path / "bad")
        telemetry = get_telemetry()
        before = telemetry.counters_snapshot().get("dataset.corrupt", 0)
        with telemetry.capture() as sink:
            with pytest.raises(CorruptDatasetError):
                PerfDataset.load(tmp_path / "bad")
        assert telemetry.counters_snapshot().get("dataset.corrupt", 0) > before
        assert any(e.name == "dataset_corrupt" for e in sink.events)
