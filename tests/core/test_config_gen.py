"""Selection-table rendering (Open MPI rules file + JSON)."""

import json

import numpy as np
import pytest

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.config_gen import (
    render_json,
    render_ompi_rules,
    selection_table,
)
from repro.core.dataset import PerfDataset
from repro.core.selector import AlgorithmSelector
from repro.ml import KNNRegressor


@pytest.fixture(scope="module")
def selector():
    configs = (
        AlgorithmConfig.make("bcast", 6, "binomial", segsize=None),
        AlgorithmConfig.make("bcast", 2, "chain", segsize=16384, chains=4),
    )
    n = 40
    rng = np.random.default_rng(0)
    cid = np.tile([0, 1], n // 2)
    msize = np.repeat(np.logspace(0, 22, n // 2, base=2).astype(np.int64), 2)
    time = np.where(
        cid == 0, 1e-6 + msize * 1e-9, 20e-6 + msize * 0.05e-9
    ) * rng.lognormal(0, 0.01, n)
    ds = PerfDataset(
        name="x",
        collective=CollectiveKind.BCAST,
        library="l",
        machine="m",
        configs=configs,
        config_id=cid,
        nodes=np.full(n, 8),
        ppn=np.full(n, 4),
        msize=msize,
        time=time,
    )
    return AlgorithmSelector(lambda: KNNRegressor(k=1)).fit(ds)


class TestSelectionTable:
    def test_table_covers_msizes(self, selector):
        table = selection_table(selector, 8, 4, msizes=(1, 1024, 1 << 22))
        assert [m for m, _ in table] == [1, 1024, 1 << 22]
        assert table[0][1].name == "binomial"  # latency regime
        assert table[-1][1].name == "chain"  # bandwidth regime


class TestOmpiRules:
    def test_format(self, selector):
        table = selection_table(selector, 8, 4, msizes=(1, 1 << 22))
        text = render_ompi_rules("bcast", 8, 4, table)
        lines = [line for line in text.splitlines() if line]
        assert lines[0].startswith("1")  # one collective
        assert "7" in lines[1]  # Open MPI bcast collective id
        assert "32" in lines[3]  # comm size 8*4
        # Rule lines: msize algid fanout segsize
        rule = lines[-1].split("#")[0].split()
        assert len(rule) == 4
        assert int(rule[0]) == 1 << 22

    def test_chain_encodes_fanout_and_segsize(self, selector):
        table = selection_table(selector, 8, 4, msizes=(1 << 22,))
        text = render_ompi_rules("bcast", 8, 4, table)
        rule = text.splitlines()[-1].split("#")[0].split()
        assert rule[1] == "2"  # algid chain
        assert rule[2] == "4"  # chains -> fanout column
        assert rule[3] == "16384"


class TestParseRoundTrip:
    def test_render_parse_round_trip(self, selector):
        from repro.core.config_gen import parse_ompi_rules

        msizes = (1, 1024, 65536, 1 << 22)
        table = selection_table(selector, 8, 4, msizes=msizes)
        text = render_ompi_rules("bcast", 8, 4, table)
        kind, comm_size, rules = parse_ompi_rules(text)
        assert str(kind) == "bcast"
        assert comm_size == 32
        assert [r[0] for r in rules] == list(msizes)
        for (m, cfg), (rm, algid, _fanout, seg) in zip(table, rules, strict=True):
            assert rm == m and algid == cfg.algid
            params = cfg.param_dict
            assert seg == (params.get("segsize") or 0)

    def test_parse_rejects_garbage(self):
        from repro.core.config_gen import parse_ompi_rules

        with pytest.raises(ValueError, match="truncated"):
            parse_ompi_rules("1\n7\n")

    def test_parse_rejects_unknown_collective(self):
        from repro.core.config_gen import parse_ompi_rules

        with pytest.raises(ValueError, match="unknown"):
            parse_ompi_rules("1\n99\n1\n32\n1\n8 1 0 0\n")

    def test_parse_rejects_multi_collective(self):
        from repro.core.config_gen import parse_ompi_rules

        with pytest.raises(ValueError, match="single-collective"):
            parse_ompi_rules("2\n7\n1\n32\n1\n8 1 0 0\n")


class TestJson:
    def test_parses_and_round_trips(self, selector):
        table = selection_table(selector, 8, 4, msizes=(1, 1024))
        payload = json.loads(render_json("bcast", 8, 4, table))
        assert payload["collective"] == "bcast"
        assert payload["nodes"] == 8 and payload["ppn"] == 4
        assert len(payload["rules"]) == 2
        assert payload["rules"][0]["algorithm"] == "binomial"


class TestBatchedSelection:
    def test_single_predict_times_call(self, selector):
        """The whole table is scored in ONE batched ensemble query."""
        calls = []
        original = selector.predict_times

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        selector.predict_times = spy
        try:
            table = selection_table(
                selector, 8, 4, msizes=(1, 64, 4096, 262144, 1 << 22)
            )
        finally:
            del selector.predict_times
        assert len(calls) == 1
        assert len(table) == 5

    def test_batched_matches_per_msize_select(self, selector):
        msizes = (1, 256, 16384, 1 << 20, 1 << 22)
        table = selection_table(selector, 8, 4, msizes=msizes)
        for m, cfg in table:
            assert cfg == selector.select(8, 4, m)

    def test_empty_msizes(self, selector):
        assert selection_table(selector, 8, 4, msizes=()) == []
