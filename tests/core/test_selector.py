"""Per-configuration regression selection (the contribution)."""

import numpy as np
import pytest

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.dataset import PerfDataset
from repro.core.selector import AlgorithmSelector
from repro.ml import GAMRegressor, KNNRegressor


def crossover_dataset() -> PerfDataset:
    """Two synthetic algorithms with a known crossover in msize.

    * config 0 'latency' costs 10us + m * 1ns  (wins for small m)
    * config 1 'bandwidth' costs 50us + m * 0.1ns (wins for large m)

    Crossover at m ~ 44.4 KB.
    """
    configs = (
        AlgorithmConfig.make("bcast", 1, "latency"),
        AlgorithmConfig.make("bcast", 2, "bandwidth"),
    )
    nodes_grid = [2, 4, 8, 16]
    msizes = [2**k for k in range(0, 23, 2)]
    rows = {k: [] for k in ("cid", "n", "ppn", "m", "t")}
    for n in nodes_grid:
        for m in msizes:
            rows["cid"] += [0, 1]
            rows["n"] += [n, n]
            rows["ppn"] += [1, 1]
            rows["m"] += [m, m]
            rows["t"] += [10e-6 + m * 1e-9, 50e-6 + m * 0.1e-9]
    return PerfDataset(
        name="crossover",
        collective=CollectiveKind.BCAST,
        library="synthetic",
        machine="synthetic",
        configs=configs,
        config_id=np.array(rows["cid"]),
        nodes=np.array(rows["n"]),
        ppn=np.array(rows["ppn"]),
        msize=np.array(rows["m"]),
        time=np.array(rows["t"]),
    )


class TestFitting:
    def test_unfitted_raises(self):
        sel = AlgorithmSelector(lambda: KNNRegressor())
        with pytest.raises(RuntimeError):
            sel.select(2, 1, 64)

    def test_models_per_config(self):
        sel = AlgorithmSelector(lambda: KNNRegressor()).fit(crossover_dataset())
        assert sel.num_models == 2

    def test_min_samples_leaves_config_unmodelled(self):
        ds = crossover_dataset()
        # Starve config 1 of samples.
        keep = (ds.config_id == 0) | (np.arange(len(ds)) < 4)
        sel = AlgorithmSelector(lambda: KNNRegressor(), min_samples=8)
        sel.fit(ds.subset(keep))
        assert 1 not in sel.models_
        times = sel.predict_times(4, 1, 10**6)
        assert np.isinf(times[0, 1])

    def test_all_starved_raises(self):
        ds = crossover_dataset()
        tiny = ds.subset(np.arange(len(ds)) < 4)
        with pytest.raises(ValueError, match="enough samples"):
            AlgorithmSelector(lambda: KNNRegressor(), min_samples=50).fit(tiny)


class TestSelection:
    @pytest.mark.parametrize(
        "learner", [lambda: KNNRegressor(), lambda: GAMRegressor()]
    )
    def test_crossover_learned(self, learner):
        sel = AlgorithmSelector(learner).fit(crossover_dataset())
        # Far below / above the 44 KB crossover, on unseen node counts.
        assert sel.select(6, 1, 64).name == "latency"
        assert sel.select(6, 1, 4 << 20).name == "bandwidth"

    def test_select_ids_vectorised(self):
        sel = AlgorithmSelector(lambda: KNNRegressor()).fit(crossover_dataset())
        ids = sel.select_ids([4, 4], [1, 1], [64, 4 << 20])
        assert ids.tolist() == [0, 1]

    def test_ranked_sorted(self):
        sel = AlgorithmSelector(lambda: KNNRegressor()).fit(crossover_dataset())
        ranked = sel.ranked(4, 1, 64)
        assert len(ranked) == 2
        assert ranked[0][1] <= ranked[1][1]
        assert ranked[0][0].name == "latency"

    def test_predicted_times_close_to_truth(self):
        sel = AlgorithmSelector(lambda: GAMRegressor()).fit(crossover_dataset())
        times = sel.predict_times(8, 1, 1 << 14)[0]
        truth = [10e-6 + (1 << 14) * 1e-9, 50e-6 + (1 << 14) * 0.1e-9]
        np.testing.assert_allclose(times, truth, rtol=0.3)


class TestParallelFit:
    """fit(n_jobs=N) must reproduce the serial models bit-for-bit."""

    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_predict_times_identical(self, n_jobs):
        from repro.ml.boosting import GradientBoostingRegressor

        ds = crossover_dataset()
        factory = lambda: GradientBoostingRegressor(n_rounds=20, rng=9)
        serial = AlgorithmSelector(factory).fit(ds, n_jobs=1)
        parallel = AlgorithmSelector(factory).fit(ds, n_jobs=n_jobs)
        grid_m = np.array([2**k for k in range(0, 23)])
        t_serial = serial.predict_times(8, 1, grid_m)
        t_parallel = parallel.predict_times(8, 1, grid_m)
        np.testing.assert_array_equal(t_serial, t_parallel)

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        sel = AlgorithmSelector(lambda: KNNRegressor()).fit(crossover_dataset())
        assert sel.num_models == 2

    def test_model_ids_stable(self):
        ds = crossover_dataset()
        sel = AlgorithmSelector(lambda: KNNRegressor()).fit(ds, n_jobs=4)
        assert sorted(sel.models_) == [0, 1]
