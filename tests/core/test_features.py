"""Instance feature encoding."""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, instance_features


class TestInstanceFeatures:
    def test_single_instance_shape(self):
        X = instance_features(4, 8, 1024)
        assert X.shape == (1, len(FEATURE_NAMES))

    def test_values(self):
        X = instance_features(4, 8, 1023)
        np.testing.assert_allclose(X[0], [10.0, 4.0, 8.0, 32.0])

    def test_vectorised(self):
        X = instance_features([2, 4], [1, 2], [0, 15])
        assert X.shape == (2, 4)
        np.testing.assert_allclose(X[0], [0.0, 2.0, 1.0, 2.0])
        np.testing.assert_allclose(X[1], [4.0, 4.0, 2.0, 8.0])

    def test_broadcasting(self):
        X = instance_features(4, 8, [1, 1024, 4096])
        assert X.shape == (3, 4)
        assert (X[:, 1] == 4).all()

    def test_zero_message_ok(self):
        X = instance_features(1, 1, 0)
        assert X[0, 0] == 0.0

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            instance_features(0, 1, 1)

    def test_invalid_msize(self):
        with pytest.raises(ValueError):
            instance_features(1, 1, -5)

    def test_procs_is_product(self):
        X = instance_features([3, 5], [7, 11], 1)
        np.testing.assert_allclose(X[:, 3], [21.0, 55.0])
