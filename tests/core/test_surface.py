"""Precomputed decision surface (argmin lookup grid)."""

import numpy as np
import pytest

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.dataset import PerfDataset
from repro.core.selector import AlgorithmSelector
from repro.core.surface import DecisionSurface, _nearest
from repro.ml import KNNRegressor

NODES = (2, 4, 8, 16)
PPNS = (1, 4)
MSIZES = tuple(int(2**k) for k in range(0, 23, 2))


@pytest.fixture(scope="module")
def selector():
    configs = (
        AlgorithmConfig.make("bcast", 6, "binomial", segsize=None),
        AlgorithmConfig.make("bcast", 2, "chain", segsize=16384, chains=4),
    )
    n = 60
    rng = np.random.default_rng(5)
    cid = np.tile([0, 1], n // 2)
    msize = np.repeat(np.logspace(0, 22, n // 2, base=2).astype(np.int64), 2)
    time = np.where(
        cid == 0, 1e-6 + msize * 1e-9, 20e-6 + msize * 0.05e-9
    ) * rng.lognormal(0, 0.01, n)
    ds = PerfDataset(
        name="x",
        collective=CollectiveKind.BCAST,
        library="l",
        machine="m",
        configs=configs,
        config_id=cid,
        nodes=np.full(n, 8),
        ppn=np.full(n, 4),
        msize=msize,
        time=time,
    )
    return AlgorithmSelector(lambda: KNNRegressor(k=1)).fit(ds)


@pytest.fixture(scope="module")
def surface(selector):
    return DecisionSurface.from_selector(selector, NODES, PPNS, MSIZES)


class TestNearest:
    def test_exact_hits(self):
        axis = np.array([1.0, 4.0, 9.0])
        assert _nearest(axis, np.array([1.0, 4.0, 9.0])).tolist() == [0, 1, 2]

    def test_between(self):
        axis = np.array([0.0, 10.0])
        assert _nearest(axis, np.array([2.0, 8.0])).tolist() == [0, 1]

    def test_out_of_range_clamps(self):
        axis = np.array([5.0, 6.0])
        assert _nearest(axis, np.array([-3.0, 99.0])).tolist() == [0, 1]

    def test_singleton_axis(self):
        assert _nearest(np.array([7.0]), np.array([1.0, 100.0])).tolist() == [
            0,
            0,
        ]


class TestSurface:
    def test_shape_and_cells(self, surface):
        assert surface.best_cid.shape == (
            len(NODES), len(PPNS), len(MSIZES),
        )
        assert surface.num_cells == len(NODES) * len(PPNS) * len(MSIZES)

    def test_on_grid_matches_selector(self, selector, surface):
        for n in NODES:
            for ppn in PPNS:
                for m in MSIZES:
                    assert (
                        surface.recommend(n, ppn, m)
                        == selector.select(n, ppn, m)
                    )

    def test_crossover_regimes(self, surface):
        # Latency regime picks binomial, bandwidth regime picks chain.
        assert surface.recommend(8, 4, 1).name == "binomial"
        assert surface.recommend(8, 4, 1 << 22).name == "chain"

    def test_msize_snaps_in_log_space(self, surface):
        # Between grid neighbours a = 2^20 and 4a = 2^22 the linear
        # midpoint is 2.5a but the log midpoint is 2a. A query at 2.2a
        # is linearly closer to a, yet log-closer to 4a — the surface
        # must side with the log scale (message-size grids are
        # geometric) and return the 2^22 cell's answer.
        q = int(2.2 * (1 << 20))
        i, j, k = surface.cell_of(8, 4, q)
        assert surface.msize_axis[k[0]] == 1 << 22

    def test_predicted_time_positive(self, surface):
        assert surface.predicted_time(8, 4, 4096) > 0

    def test_vector_queries(self, surface):
        ids = surface.select_ids(
            np.array([2, 16]), np.array([1, 4]), np.array([1, 1 << 22])
        )
        assert ids.shape == (2,)

    def test_empty_axis_rejected(self, selector):
        with pytest.raises(ValueError):
            DecisionSurface.from_selector(selector, (), PPNS, MSIZES)

    def test_single_batched_predict(self, selector):
        calls = []
        original = selector.predict_times

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        selector.predict_times = spy
        try:
            DecisionSurface.from_selector(selector, NODES, PPNS, MSIZES)
        finally:
            del selector.predict_times
        assert len(calls) == 1
