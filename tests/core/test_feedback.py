"""Feedback logging: JSONL schema, torn-line tolerance, merge, logger.

The feedback log is the *measure* step of the serve→retrain loop
(docs/online-learning.md). These tests pin its three contracts:

* the row schema round-trips bit-exactly through JSONL (hypothesis);
* the reader never raises — torn/garbage lines are counted and
  skipped, exactly like the ``repro.obs`` event-log reader;
* the logger is a pure function of ``(seed, site)`` so a respawned
  worker re-logs bit-identical rows, and it can never fail a request.
"""

from __future__ import annotations

import json
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feedback import (
    FEEDBACK_SCHEMA,
    FeedbackConfig,
    FeedbackLogger,
    FeedbackRow,
    FeedbackWriter,
    WorldShift,
    feedback_dataset,
    merge_feedback,
    read_feedback,
)
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library
from repro.obs import get_telemetry
from repro.obs.sinks import MemorySink
from repro.serve.service import Recommendation


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Counter deltas in these tests start from zero."""
    get_telemetry().reset()
    yield
    get_telemetry().reset()


@pytest.fixture(scope="module")
def library():
    return get_library("Open MPI")


@pytest.fixture(scope="module")
def bcast_configs(library):
    return library.config_space("bcast").configs


def counter(name: str) -> int:
    return get_telemetry().counters_snapshot().get(name, 0)


def make_row(**overrides) -> FeedbackRow:
    base = dict(
        collective="bcast", nodes=8, ppn=2, msize=65536,
        config_id=7, config="chain[seg=8192,chains=4]",
        observed_time=1.2e-4, predicted_time=1.1e-4,
        version=1, source="model",
    )
    base.update(overrides)
    return FeedbackRow(**base)


# ---------------------------------------------------------------------------
class TestWorldShift:
    def test_identity_by_default(self):
        shift = WorldShift()
        assert shift.identity
        assert shift.scale(3) == 1.0

    def test_scales_only_selected_algids(self):
        shift = WorldShift(factor=2.0, algids=(3, 7))
        assert shift.scale(3) == 2.0
        assert shift.scale(7) == 2.0
        assert shift.scale(1) == 1.0

    def test_empty_algids_scales_everything(self):
        shift = WorldShift(factor=1.5)
        assert shift.scale(0) == shift.scale(99) == 1.5
        assert not shift.identity

    @pytest.mark.parametrize("factor", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_degenerate_factor(self, factor):
        with pytest.raises(ValueError):
            WorldShift(factor=factor)


# ---------------------------------------------------------------------------
row_strategy = st.builds(
    FeedbackRow,
    collective=st.sampled_from(["bcast", "reduce", "allgather"]),
    nodes=st.integers(min_value=1, max_value=1024),
    ppn=st.integers(min_value=1, max_value=128),
    msize=st.integers(min_value=0, max_value=1 << 30),
    config_id=st.integers(min_value=0, max_value=500),
    config=st.text(
        alphabet=st.characters(blacklist_characters="\n\r"), max_size=40
    ),
    observed_time=st.floats(
        min_value=1e-12, max_value=1e3,
        allow_nan=False, allow_infinity=False,
    ),
    predicted_time=st.floats(
        min_value=1e-12, max_value=1e3,
        allow_nan=False, allow_infinity=False,
    ),
    version=st.integers(min_value=0, max_value=1000),
    source=st.sampled_from(["model", "default"]),
)


class TestRowSchema:
    @given(row=row_strategy)
    def test_json_round_trip_is_bit_exact(self, row):
        assert FeedbackRow.from_dict(json.loads(row.to_json())) == row

    @given(rows=st.lists(row_strategy, max_size=20))
    @settings(max_examples=25)
    def test_jsonl_file_round_trip(self, rows, tmp_path_factory):
        path = tmp_path_factory.mktemp("fb") / "log.jsonl"
        with FeedbackWriter(path) as writer:
            for row in rows:
                writer.append(row)
        assert read_feedback(path) == rows

    def test_residual_is_log_ratio(self):
        row = make_row(observed_time=2e-4, predicted_time=1e-4)
        assert row.residual == pytest.approx(math.log(2.0))

    def test_unknown_schema_rejected(self):
        payload = make_row().to_dict()
        payload["schema"] = FEEDBACK_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            FeedbackRow.from_dict(payload)

    @pytest.mark.parametrize("overrides", [
        {"nodes": 0}, {"ppn": 0}, {"msize": -1}, {"config_id": -1},
        {"version": -1}, {"observed_time": 0.0},
        {"observed_time": float("nan")}, {"predicted_time": -1.0},
        {"predicted_time": float("inf")},
    ])
    def test_invalid_fields_rejected(self, overrides):
        with pytest.raises(ValueError):
            make_row(**overrides)


# ---------------------------------------------------------------------------
class TestReader:
    def test_missing_file_is_empty_log(self, tmp_path):
        assert read_feedback(tmp_path / "never-written.jsonl") == []

    def test_torn_final_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "log.jsonl"
        rows = [make_row(msize=m) for m in (64, 4096)]
        text = "".join(r.to_json() + "\n" for r in rows)
        path.write_text(text + rows[0].to_json()[: len(rows[0].to_json()) // 2])
        sink = get_telemetry().add_sink(MemorySink())
        assert read_feedback(path) == rows
        assert counter("serve.feedback.skipped_lines") == 1
        assert sink.named("feedback_skipped_lines")

    @given(garbage=st.lists(
        st.text(
            alphabet=st.characters(blacklist_characters="\n\r"), max_size=60
        ).filter(lambda s: not s.strip().startswith("{")),
        min_size=1, max_size=6,
    ))
    @settings(max_examples=30)
    def test_garbage_lines_never_crash_the_reader(self, garbage, tmp_path_factory):
        path = tmp_path_factory.mktemp("fb") / "log.jsonl"
        rows = [make_row(msize=m) for m in (64, 1024, 65536)]
        lines = [rows[0].to_json(), *garbage, rows[1].to_json(),
                 rows[2].to_json()]
        path.write_text("\n".join(lines) + "\n")
        assert read_feedback(path) == rows

    def test_blank_lines_are_not_skip_counted(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(f"\n{make_row().to_json()}\n\n")
        assert len(read_feedback(path)) == 1
        assert counter("serve.feedback.skipped_lines") == 0

    def test_wrong_schema_row_is_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        stale = make_row().to_dict()
        stale["schema"] = 999
        path.write_text(json.dumps(stale) + "\n" + make_row().to_json() + "\n")
        assert len(read_feedback(path)) == 1
        assert counter("serve.feedback.skipped_lines") == 1

    def test_directory_reads_every_worker_file_sorted(self, tmp_path):
        for worker, msize in ((1, 4096), (0, 64)):
            with FeedbackWriter(tmp_path / f"feedback-w{worker}.jsonl") as w:
                w.append(make_row(msize=msize))
        (tmp_path / "notes.txt").write_text("not a log\n")
        rows = read_feedback(tmp_path)
        # sorted by file name: w0 before w1, other files ignored
        assert [r.msize for r in rows] == [64, 4096]


# ---------------------------------------------------------------------------
class TestWriter:
    def test_append_after_close_raises(self, tmp_path):
        writer = FeedbackWriter(tmp_path / "log.jsonl")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append(make_row())

    def test_close_is_idempotent(self, tmp_path):
        writer = FeedbackWriter(tmp_path / "log.jsonl")
        writer.close()
        writer.close()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "log.jsonl"
        with FeedbackWriter(path) as writer:
            writer.append(make_row())
        assert len(read_feedback(path)) == 1

    def test_concurrent_appends_never_tear(self, tmp_path):
        path = tmp_path / "log.jsonl"
        per_thread, n_threads = 50, 8
        with FeedbackWriter(path) as writer:
            def hammer(tid: int) -> None:
                for i in range(per_thread):
                    writer.append(make_row(nodes=tid + 1, version=i))

            threads = [
                threading.Thread(target=hammer, args=(tid,))
                for tid in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        rows = read_feedback(path)
        assert len(rows) == per_thread * n_threads
        assert counter("serve.feedback.skipped_lines") == 0


# ---------------------------------------------------------------------------
class TestDatasetMerge:
    def real_rows(self, configs, msizes=(64, 4096)):
        return [
            make_row(
                msize=m, config_id=cid, config=configs[cid].label,
                observed_time=1e-4 * (cid + 1),
            )
            for m in msizes
            for cid in (0, 5, 9)
        ]

    def test_rows_become_validated_dataset(self, library, bcast_configs):
        rows = self.real_rows(bcast_configs)
        ds = feedback_dataset(rows, library=library, collective="bcast")
        assert len(ds) == len(rows)
        assert sorted(set(ds.msize.tolist())) == [64, 4096]

    def test_other_collectives_ignored(self, library, bcast_configs):
        rows = self.real_rows(bcast_configs)
        rows.append(make_row(collective="reduce"))
        ds = feedback_dataset(rows, library=library, collective="bcast")
        assert len(ds) == len(rows) - 1
        # silently skipping a *foreign* collective is not staleness
        assert counter("serve.feedback.stale_rows") == 0

    def test_stale_rows_skipped_and_counted(self, library, bcast_configs):
        rows = self.real_rows(bcast_configs)
        stale = [
            make_row(config_id=len(bcast_configs) + 3),  # out of space
            make_row(config_id=2, config="label-from-older-library"),
        ]
        ds = feedback_dataset(rows + stale, library=library, collective="bcast")
        assert len(ds) == len(rows)
        assert counter("serve.feedback.stale_rows") == 2

    def test_merge_extends_base_campaign(self, library, bcast_configs):
        from repro.bench.repro_mpi import BenchmarkSpec
        from repro.bench.runner import DatasetRunner, GridSpec

        runner = DatasetRunner(
            tiny_testbed, library, BenchmarkSpec(max_nreps=3), seed=5
        )
        base = runner.run(
            "bcast",
            GridSpec(nodes=(2, 4), ppns=(1,), msizes=(64, 4096)),
            name="base",
        )
        rows = self.real_rows(bcast_configs, msizes=(1024,))
        merged = merge_feedback(base, rows, library=library)
        merged.validate()
        assert len(merged) == len(base) + len(rows)

    def test_merge_with_no_surviving_rows_returns_base(self, library):
        from repro.bench.repro_mpi import BenchmarkSpec
        from repro.bench.runner import DatasetRunner, GridSpec

        runner = DatasetRunner(
            tiny_testbed, library, BenchmarkSpec(max_nreps=3), seed=5
        )
        base = runner.run(
            "bcast", GridSpec(nodes=(2,), ppns=(1,), msizes=(64,)),
            name="base",
        )
        merged = merge_feedback(
            base, [make_row(collective="reduce")], library=library
        )
        assert merged is base


# ---------------------------------------------------------------------------
class TestFeedbackConfig:
    def test_spec_round_trip(self):
        config = FeedbackConfig(
            path="/tmp/fb.jsonl", seed=3, shift=2.0, shift_algids=(1, 7)
        )
        assert FeedbackConfig.from_spec(config.to_spec()) == config
        assert json.dumps(config.to_spec())  # plain data, JSON-shippable

    def test_world_shift_built_from_knobs(self):
        config = FeedbackConfig(path="x.jsonl", shift=2.0, shift_algids=(7,))
        assert config.world_shift() == WorldShift(factor=2.0, algids=(7,))

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError, match="path"):
            FeedbackConfig(path="")


# ---------------------------------------------------------------------------
def rec_for(configs, cid: int, nodes=4, ppn=2, msize=4096, version=1):
    return Recommendation(
        collective="bcast", nodes=nodes, ppn=ppn, msize=msize,
        config=configs[cid], source="model", version=version,
    )


class TestLogger:
    def make_logger(self, tmp_path, library, **knobs) -> FeedbackLogger:
        config = FeedbackConfig(
            path=str(tmp_path / "fb.jsonl"), **knobs
        )
        return FeedbackLogger(config, tiny_testbed, library)

    def test_rows_are_bit_identical_across_logger_lifetimes(
        self, tmp_path, library, bcast_configs
    ):
        recs = [rec_for(bcast_configs, cid) for cid in (0, 5, 9)]
        for sub in ("a", "b"):
            (tmp_path / sub).mkdir()
            logger = self.make_logger(tmp_path / sub, library, seed=3)
            logger.record_many(recs)
            logger.close()
        first = (tmp_path / "a" / "fb.jsonl").read_bytes()
        assert first == (tmp_path / "b" / "fb.jsonl").read_bytes()
        assert first  # actually wrote something

    def test_observation_keyed_by_site_not_call_order(
        self, tmp_path, library, bcast_configs
    ):
        logger = self.make_logger(tmp_path, library, seed=3)
        rec = rec_for(bcast_configs, 5)
        logger.record_many([rec, rec])
        logger.close()
        rows = read_feedback(logger.path)
        assert len(rows) == 2
        # same site, same seed -> same simulated observation: a
        # respawned worker replays identical rows (chaos bit-identity)
        assert rows[0] == rows[1]

    def test_shift_scales_only_the_target_algid(
        self, tmp_path, library, bcast_configs
    ):
        quiet = tiny_testbed.with_noise(
            tiny_testbed.noise.__class__(sigma=0.0, spike_prob=0.0, floor=0.0)
        )
        target = bcast_configs[9].algid
        other = next(
            cid for cid, cfg in enumerate(bcast_configs)
            if cfg.algid != target
        )
        config = FeedbackConfig(
            path=str(tmp_path / "fb.jsonl"), shift=2.0,
            shift_algids=(target,),
        )
        logger = FeedbackLogger(config, quiet, library)
        observed, predicted = logger.observe(bcast_configs[9], 4, 2, 4096)
        assert observed == pytest.approx(2.0 * predicted)
        observed, predicted = logger.observe(bcast_configs[other], 4, 2, 4096)
        assert observed == pytest.approx(predicted)
        logger.close()

    def test_record_never_raises(self, tmp_path, library):
        logger = self.make_logger(tmp_path, library)
        sink = get_telemetry().add_sink(MemorySink())

        class Bogus:
            collective = "bcast"

        logger.record(Bogus())  # missing every other field
        logger.close()
        assert counter("serve.feedback.errors") == 1
        assert sink.named("feedback_error")
        assert read_feedback(logger.path) == []

    def test_detector_fed_per_row(self, tmp_path, library, bcast_configs):
        logger = self.make_logger(tmp_path, library, seed=1)
        logger.record_many([rec_for(bcast_configs, cid) for cid in (0, 5)])
        stats = logger.detector.stats()
        assert sum(s.n for s in stats) == 2
        logger.close()

    def test_guideline_tripwire_runs_once_per_distinct_instance(
        self, tmp_path, library, bcast_configs, monkeypatch
    ):
        import repro.experiments.guidelines as guidelines

        calls: list[list] = []

        def fake_check(machine, lib, instances, **kwargs):
            calls.append(list(instances))
            return []

        monkeypatch.setattr(guidelines, "check_guidelines", fake_check)
        logger = self.make_logger(tmp_path, library)
        logger.record_many([
            rec_for(bcast_configs, 0, msize=64),
            rec_for(bcast_configs, 5, msize=64),   # same instance
            rec_for(bcast_configs, 0, msize=4096),  # new instance
        ])
        logger.close()
        assert calls == [[(4, 2, 64)], [(4, 2, 4096)]]


# ---------------------------------------------------------------------------
class TestServiceIntegration:
    """The service records one row per resolved recommendation."""

    @pytest.fixture()
    def serving(self, tmp_path, library):
        from repro.bench.repro_mpi import BenchmarkSpec
        from repro.bench.runner import GridSpec
        from repro.core.tuner import AutoTuner
        from repro.serve import ModelRegistry, PredictionService

        tuner = AutoTuner(
            tiny_testbed, library, "bcast",
            learner="KNN", bench_spec=BenchmarkSpec(max_nreps=3), seed=1,
        )
        tuner.benchmark(
            GridSpec(nodes=(2, 4), ppns=(1, 2), msizes=(64, 4096))
        )
        tuner.train()
        registry = ModelRegistry(tiny_testbed, library)
        registry.publish(tuner.servable(), tag="t")
        logger = FeedbackLogger(
            FeedbackConfig(path=str(tmp_path / "fb.jsonl"), seed=2),
            tiny_testbed, library,
        )
        yield PredictionService(registry, feedback=logger), logger
        logger.close()

    def test_single_and_cached_requests_both_logged(self, serving):
        service, logger = serving
        cold = service.recommend("bcast", 4, 2, 4096)
        warm = service.recommend("bcast", 4, 2, 4096)
        assert warm.cached
        logger.close()
        rows = read_feedback(logger.path)
        assert len(rows) == 2
        assert rows[0] == rows[1]  # L1 hit logs the same site row
        assert rows[0].config == cold.config.label

    def test_batch_requests_logged_per_instance(self, serving):
        service, logger = serving
        instances = [("bcast", n, p, 4096) for n in (2, 4) for p in (1, 2)]
        service.recommend_many(instances)
        logger.close()
        rows = read_feedback(logger.path)
        assert len(rows) == len(instances)
        assert counter("serve.feedback.rows") == len(instances)

    def test_feedback_rows_align_with_config_space(self, serving, library):
        service, logger = serving
        service.recommend("bcast", 2, 1, 64)
        logger.close()
        (row,) = read_feedback(logger.path)
        configs = library.config_space("bcast").configs
        assert configs[row.config_id].label == row.config
