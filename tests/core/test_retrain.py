"""Drift detection + retraining: trigger properties and the closed loop.

Two layers of guarantees:

* **Detector properties** (hypothesis): stationary residuals never
  trigger, an injected median shift past the threshold always does,
  and a rebase absorbs exactly the corrected shift — the trigger can
  neither false-positive on noise nor miss a real drift.
* **Closed-loop end-to-end** (the ISSUE-10 acceptance scenario,
  deterministic for a fixed seed): a served model's hot path slows 2x,
  the feedback log trips the detector, and the active-sampling retrain
  restores ≥95% selection agreement against the shifted oracle while
  measuring ≤50% of what the naive full-grid refit would.
"""

from __future__ import annotations

import math
import threading
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import GridSpec
from repro.core.feedback import (
    FeedbackConfig,
    FeedbackLogger,
    FeedbackRow,
    FeedbackWriter,
    WorldShift,
    read_feedback,
)
from repro.core.retrain import (
    RetrainPolicy,
    Retrainer,
    oracle_ids,
    selection_agreement,
    shifted_times,
)
from repro.core.tuner import AutoTuner
from repro.machine.zoo import tiny_testbed
from repro.mpilib import get_library
from repro.obs.drift import DriftDetector, ResidualStats
from repro.serve.service import Recommendation

MARGIN = 0.10


@pytest.fixture(scope="module")
def library():
    return get_library("Open MPI")


# ---------------------------------------------------------------------------
class TestDriftDetectorProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_stationary_residuals_never_trigger(self, seed):
        detector = DriftDetector(threshold=0.25, min_samples=30, window=256)
        rng = np.random.default_rng(seed)
        predicted = 1e-4
        for residual in rng.normal(0.0, 0.05, size=200):
            detector.observe("bcast", 1, predicted * math.exp(residual),
                             predicted)
        assert detector.drifting() == []

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        delta=st.floats(min_value=0.35, max_value=1.5),
    )
    @settings(max_examples=30)
    def test_median_shift_past_threshold_always_triggers(self, seed, delta):
        detector = DriftDetector(threshold=0.25, min_samples=30, window=256)
        rng = np.random.default_rng(seed)
        predicted = 1e-4
        for residual in rng.normal(delta, 0.02, size=40):
            detector.observe("bcast", 1, predicted * math.exp(residual),
                             predicted)
        drifting = detector.drifting()
        assert len(drifting) == 1
        assert drifting[0].collective == "bcast"
        assert abs(drifting[0].median - delta) < 0.05

    def test_no_trigger_below_min_samples(self):
        detector = DriftDetector(threshold=0.25, min_samples=30, window=256)
        for _ in range(29):
            detector.observe("bcast", 1, 2e-4, 1e-4)  # residual ~0.69
        assert detector.drifting() == []
        detector.observe("bcast", 1, 2e-4, 1e-4)
        assert detector.drifting()

    def test_rebase_absorbs_corrected_shift_only(self):
        detector = DriftDetector(threshold=0.25, min_samples=5, window=64)
        shift = math.log(2.0)
        for _ in range(10):
            detector.observe("bcast", 1, 2e-4, 1e-4)
        assert detector.drifting()
        detector.rebase("bcast", shift)
        assert detector.drifting() == []
        # a FURTHER 2x on top of the corrected one re-triggers
        for _ in range(10):
            detector.observe("bcast", 2, 4e-4, 1e-4)
        (stats,) = detector.drifting()
        assert stats.version == 2
        assert stats.excess == pytest.approx(shift, abs=0.01)

    def test_window_evicts_old_residuals(self):
        detector = DriftDetector(threshold=0.25, min_samples=5, window=10)
        for _ in range(50):
            detector.observe("bcast", 1, 2e-4, 1e-4)  # old drifted world
        for _ in range(10):
            detector.observe("bcast", 1, 1e-4, 1e-4)  # world healed
        assert detector.drifting() == []

    def test_versions_tracked_separately(self):
        detector = DriftDetector(threshold=0.25, min_samples=5, window=64)
        for _ in range(10):
            detector.observe("bcast", 1, 2e-4, 1e-4)
            detector.observe("bcast", 2, 1e-4, 1e-4)
        drifting = detector.drifting()
        assert [s.version for s in drifting] == [1]

    @pytest.mark.parametrize("observed,predicted", [
        (0.0, 1e-4), (-1e-4, 1e-4), (float("nan"), 1e-4),
        (1e-4, 0.0), (1e-4, float("inf")),
    ])
    def test_degenerate_observations_rejected(self, observed, predicted):
        detector = DriftDetector()
        with pytest.raises(ValueError):
            detector.observe("bcast", 1, observed, predicted)

    def test_stats_payload_round_trips(self):
        detector = DriftDetector(threshold=0.25, min_samples=2, window=16)
        for _ in range(4):
            detector.observe("bcast", 3, 2e-4, 1e-4)
        detector.record_violations("bcast", 2)
        payload = detector.payload()
        assert payload["violations"] == {"bcast": 2}
        (stats,) = [ResidualStats.from_dict(s) for s in payload["stats"]]
        assert stats == detector.stats()[0]
        assert stats.drifting


# ---------------------------------------------------------------------------
class TestCalibration:
    @pytest.fixture(scope="class")
    def retrainer(self, library):
        tuner = AutoTuner(
            tiny_testbed, library, "bcast",
            learner="KNN", bench_spec=BenchmarkSpec(max_nreps=3), seed=1,
        )
        base = tuner.benchmark(
            GridSpec(nodes=(2, 4), ppns=(1, 2), msizes=(64, 4096))
        )
        return Retrainer(
            tiny_testbed, library, "bcast", base, seed=1, learner="KNN",
        )

    def row(self, library, cid, ratio):
        configs = library.config_space("bcast").configs
        return FeedbackRow(
            collective="bcast", nodes=4, ppn=1, msize=4096,
            config_id=cid, config=configs[cid].label,
            observed_time=ratio * 1e-4, predicted_time=1e-4, version=1,
        )

    def test_median_ratio_per_algid(self, retrainer, library):
        configs = library.config_space("bcast").configs
        cid = 5
        rows = [self.row(library, cid, r) for r in (1.8, 2.0, 2.4)]
        calib = retrainer.calibration(rows)
        assert calib == {configs[cid].algid: pytest.approx(2.0)}

    def test_foreign_and_stale_rows_ignored(self, retrainer, library):
        good = self.row(library, 5, 2.0)
        foreign = FeedbackRow(
            collective="reduce", nodes=4, ppn=1, msize=64,
            config_id=1, config="x", observed_time=9e-4,
            predicted_time=1e-4, version=1,
        )
        stale = FeedbackRow(
            collective="bcast", nodes=4, ppn=1, msize=64,
            config_id=10_000, config="gone", observed_time=9e-4,
            predicted_time=1e-4, version=1,
        )
        assert retrainer.calibration([good, foreign, stale]) == \
            retrainer.calibration([good])


# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def closed_loop(library, tmp_path_factory):
    """The deterministic drift scenario shared by the e2e tests.

    A GAM selector trained on the tiny testbed serves a traffic mix;
    the dominant chosen algorithm family then slows down 2x (the
    injected WorldShift). Weighting the serve stream 3x toward the hot
    instances makes the shifted rows the majority of traffic, which is
    what lets the *median* residual cross the trigger.
    """
    msizes = (64, 1024, 4096, 65536, 262144, 1048576)
    tuner = AutoTuner(
        tiny_testbed, library, "bcast",
        learner="GAM", bench_spec=BenchmarkSpec(max_nreps=30), seed=1,
    )
    base = tuner.benchmark(
        GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=msizes)
    )
    selector = tuner.train()
    configs = library.config_space("bcast").configs
    instances = [
        (n, p, m) for n in (2, 4, 8) for p in (1, 2) for m in msizes
    ]
    chosen = {
        inst: int(selector.select_ids(*inst)[0]) for inst in instances
    }
    dominant = Counter(
        configs[cid].algid for cid in chosen.values() if cid >= 0
    ).most_common(1)[0][0]
    shift = WorldShift(factor=2.0, algids=(dominant,))
    hot = [
        inst for inst in instances
        if configs[chosen[inst]].algid == dominant
    ]
    feedback_dir = tmp_path_factory.mktemp("closed-loop")
    logger = FeedbackLogger(
        FeedbackConfig(
            path=str(feedback_dir / "feedback.jsonl"),
            seed=3, shift=2.0, shift_algids=(dominant,),
        ),
        tiny_testbed, library,
    )
    for n, p, m in list(instances) + 3 * hot:
        logger.record(Recommendation(
            collective="bcast", nodes=n, ppn=p, msize=m,
            config=configs[chosen[(n, p, m)]], source="model", version=1,
        ))
    logger.close()
    return {
        "base": base,
        "instances": instances,
        "shift": shift,
        "rows": read_feedback(logger.path),
        "feedback_path": logger.path,
    }


def make_retrainer(world, library, **policy_knobs) -> Retrainer:
    policy = RetrainPolicy(**{"margin": MARGIN, **policy_knobs})
    return Retrainer(
        tiny_testbed, library, "bcast", world["base"],
        seed=1, learner="GAM", shift=world["shift"], policy=policy,
    )


class TestClosedLoopEndToEnd:
    def test_drift_fires_on_the_hot_path_shift(self, closed_loop, library):
        retrainer = make_retrainer(closed_loop, library)
        drifting = retrainer.scan(closed_loop["rows"])
        assert drifting, "2x hot-path shift must trip the detector"
        assert drifting[0].collective == "bcast"
        assert drifting[0].excess > retrainer.policy.threshold

    def test_active_sampling_restores_agreement_on_half_the_budget(
        self, closed_loop, library
    ):
        retrainer = make_retrainer(closed_loop, library)
        retrainer.scan(closed_loop["rows"])
        result = retrainer.retrain(closed_loop["rows"])
        # the acceptance bar: <=50% of the naive full-grid refit...
        assert 0.0 < result.budget_frac <= 0.5
        assert result.disagreements < result.instances
        # ...at >=95% time-based agreement with the shifted oracle
        agreement = selection_agreement(
            result.selector, tiny_testbed, library, "bcast",
            closed_loop["instances"], shift=closed_loop["shift"],
            margin=MARGIN,
        )
        assert agreement >= 0.95
        # and the detector is rebased: the same shift cannot re-trigger
        assert retrainer.scan(closed_loop["rows"]) == []
        assert result.log_shift > 0.25

    def test_matches_exhaustive_agreement_at_fraction_of_cost(
        self, closed_loop, library
    ):
        active = make_retrainer(closed_loop, library)
        exhaustive = make_retrainer(closed_loop, library, exhaustive=True)
        got = active.retrain(closed_loop["rows"])
        full = exhaustive.retrain(closed_loop["rows"])
        assert full.budget_frac == 1.0
        assert got.budget_frac <= 0.5 * full.budget_frac
        agree = selection_agreement(
            got.selector, tiny_testbed, library, "bcast",
            closed_loop["instances"], shift=closed_loop["shift"],
            margin=MARGIN,
        )
        agree_full = selection_agreement(
            full.selector, tiny_testbed, library, "bcast",
            closed_loop["instances"], shift=closed_loop["shift"],
            margin=MARGIN,
        )
        assert agree == pytest.approx(agree_full)

    def test_base_model_is_actually_stale_under_the_shift(
        self, closed_loop, library
    ):
        """Sanity: without retraining, agreement is below the bar."""
        retrainer = make_retrainer(closed_loop, library)
        before = selection_agreement(
            retrainer._base_selector, tiny_testbed, library, "bcast",
            closed_loop["instances"], shift=closed_loop["shift"],
            margin=MARGIN,
        )
        assert before < 0.95

    def test_retrain_is_bit_reproducible(self, closed_loop, library):
        results = [
            make_retrainer(closed_loop, library).retrain(closed_loop["rows"])
            for _ in range(2)
        ]
        a, b = (r.dataset for r in results)
        np.testing.assert_array_equal(a.config_id, b.config_id)
        np.testing.assert_array_equal(a.nodes, b.nodes)
        np.testing.assert_array_equal(a.ppn, b.ppn)
        np.testing.assert_array_equal(a.msize, b.msize)
        np.testing.assert_array_equal(a.time, b.time)
        nodes = np.asarray([i[0] for i in closed_loop["instances"]])
        ppn = np.asarray([i[1] for i in closed_loop["instances"]])
        msize = np.asarray([i[2] for i in closed_loop["instances"]])
        np.testing.assert_array_equal(
            results[0].selector.select_ids(nodes, ppn, msize),
            results[1].selector.select_ids(nodes, ppn, msize),
        )

    def test_merged_dataset_replaces_stale_sites(self, closed_loop, library):
        retrainer = make_retrainer(closed_loop, library)
        result = retrainer.retrain(closed_loop["rows"])
        result.dataset.validate()
        # measured + feedback rows joined the base campaign, and the
        # stale base rows at re-measured instances were dropped — the
        # merged set can only have grown by at most the fresh rows
        fresh = result.measured_samples + len(closed_loop["rows"])
        base_len = len(closed_loop["base"])
        assert base_len < len(result.dataset) <= base_len + fresh


# ---------------------------------------------------------------------------
class TestOracleHelpers:
    def test_shifted_times_scales_only_target_family(self, library):
        instance = (4, 2, 4096)
        plain = shifted_times(tiny_testbed, library, "bcast", instance)
        shifted = shifted_times(
            tiny_testbed, library, "bcast", instance,
            shift=WorldShift(factor=2.0, algids=(7,)),
        )
        configs = library.config_space("bcast").configs
        for cid, cfg in enumerate(configs):
            if not math.isfinite(plain[cid]):
                assert not math.isfinite(shifted[cid])
            elif cfg.algid == 7:
                assert shifted[cid] == pytest.approx(2.0 * plain[cid])
            else:
                assert shifted[cid] == plain[cid]

    def test_oracle_ids_track_the_shift(self, library):
        instances = [(4, 2, 1 << 20)]
        base = oracle_ids(tiny_testbed, library, "bcast", instances)[0]
        configs = library.config_space("bcast").configs
        assert base >= 0
        # penalise the winner's whole family 100x: the oracle must move
        shifted = oracle_ids(
            tiny_testbed, library, "bcast", instances,
            shift=WorldShift(factor=100.0, algids=(configs[base].algid,)),
        )[0]
        assert configs[shifted].algid != configs[base].algid

    def test_agreement_is_tie_robust(self, library):
        """Any config tied with the optimum counts as agreeing."""
        instances = [(4, 2, 4096)]
        times = shifted_times(tiny_testbed, library, "bcast", instances[0])
        best = float(np.min(times))
        tied = [cid for cid, t in enumerate(times) if t == best]
        assert len(tied) > 1  # segsize >= msize behave identically

        class Pinned:
            def __init__(self, cid):
                self.cid = cid

            def select_ids(self, nodes, ppn, msize):
                return np.full(np.asarray(nodes).size, self.cid)

        for cid in tied:
            assert selection_agreement(
                Pinned(cid), tiny_testbed, library, "bcast", instances,
            ) == 1.0

    def test_agreement_empty_instances_is_vacuous(self, library):
        class Never:
            def select_ids(self, nodes, ppn, msize):  # pragma: no cover
                raise AssertionError("must not be called")

        assert selection_agreement(
            Never(), tiny_testbed, library, "bcast", [],
        ) == 1.0


# ---------------------------------------------------------------------------
class TestWatch:
    def test_one_shot_round_triggers_and_publishes(
        self, closed_loop, library
    ):
        retrainer = make_retrainer(closed_loop, library)
        published = []
        results = retrainer.watch(
            closed_loop["feedback_path"], interval_s=0.01, max_rounds=1,
            on_result=published.append,
        )
        assert len(results) == 1
        assert published == results
        assert results[0].budget_frac <= 0.5

    def test_stop_event_exits_without_retraining(self, closed_loop, library):
        retrainer = make_retrainer(closed_loop, library)
        stop = threading.Event()
        stop.set()
        assert retrainer.watch(
            closed_loop["feedback_path"], interval_s=0.01, stop=stop,
        ) == []

    def test_quiet_log_never_triggers(self, tmp_path, library):
        """Unshifted feedback on a fresh log must not cause a retrain."""
        tuner = AutoTuner(
            tiny_testbed, library, "bcast",
            learner="KNN", bench_spec=BenchmarkSpec(max_nreps=3), seed=1,
        )
        base = tuner.benchmark(
            GridSpec(nodes=(2, 4), ppns=(1, 2), msizes=(64, 4096))
        )
        retrainer = Retrainer(
            tiny_testbed, library, "bcast", base, seed=1, learner="KNN",
        )
        configs = library.config_space("bcast").configs
        path = tmp_path / "quiet.jsonl"
        with FeedbackWriter(path) as writer:
            for i in range(40):
                writer.append(FeedbackRow(
                    collective="bcast", nodes=4, ppn=1, msize=4096,
                    config_id=5, config=configs[5].label,
                    observed_time=1.02e-4, predicted_time=1e-4,
                    version=1,
                ))
        assert retrainer.scan(read_feedback(path)) == []
