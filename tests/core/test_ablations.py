"""Rejected selector designs (ablation A2 machinery)."""

import numpy as np
import pytest

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import DatasetRunner, GridSpec
from repro.core.ablations import BestLabelSelector, SpeedupRatioSelector
from repro.core.evaluation import evaluate_selector
from repro.core.selector import AlgorithmSelector
from repro.machine.zoo import tiny_testbed
from repro.ml import KNNRegressor
from repro.mpilib import get_library


@pytest.fixture(scope="module")
def data():
    lib = get_library("Open MPI")
    runner = DatasetRunner(tiny_testbed, lib, BenchmarkSpec(max_nreps=8), seed=9)
    train = runner.run(
        "bcast",
        GridSpec(
            nodes=(2, 4, 8), ppns=(1, 2),
            msizes=(16, 256, 4096, 65536, 262144, 2 << 20),
        ),
        name="train", exclude_algids=(8,),
    )
    test = runner.run(
        "bcast",
        GridSpec(nodes=(3, 5), ppns=(1, 2), msizes=(64, 4096, 262144)),
        name="test", exclude_algids=(8,),
    )
    return lib, train, test


class TestSpeedupRatioSelector:
    def test_fits_and_selects(self, data):
        lib, train, test = data
        sel = SpeedupRatioSelector(
            lambda: KNNRegressor(), lib, tiny_testbed
        ).fit(train)
        result = evaluate_selector(sel, test, lib, tiny_testbed)
        assert len(result) > 0
        assert result.mean_speedup > 0.3  # it works, just worse

    def test_unfitted_raises(self, data):
        lib, *_ = data
        sel = SpeedupRatioSelector(lambda: KNNRegressor(), lib, tiny_testbed)
        with pytest.raises(RuntimeError):
            sel.predict_times(2, 1, 64)


class TestBestLabelSelector:
    def test_label_histogram_imbalanced(self, data):
        _, train, _ = data
        sel = BestLabelSelector().fit(train)
        # The paper's §III-A point: a handful of *algorithms* win almost
        # every instance, so label learning is badly imbalanced.
        algid_counts: dict[int, int] = {}
        for cid, count in sel.label_histogram_.items():
            algid = train.configs[cid].algid
            algid_counts[algid] = algid_counts.get(algid, 0) + count
        counts = np.array(sorted(algid_counts.values(), reverse=True))
        assert counts[0] >= counts.sum() * 0.25
        assert len(counts) < len(train.configs) / 2

    def test_selects_measured_configs(self, data):
        lib, train, test = data
        sel = BestLabelSelector().fit(train)
        result = evaluate_selector(sel, test, lib, tiny_testbed)
        assert len(result) > 0

    def test_direct_regression_not_worse(self, data):
        # The paper's chosen design should do at least as well as the
        # label classifier on held-out instances.
        lib, train, test = data
        direct = AlgorithmSelector(lambda: KNNRegressor()).fit(train)
        label = BestLabelSelector().fit(train)
        r_direct = evaluate_selector(direct, test, lib, tiny_testbed)
        r_label = evaluate_selector(label, test, lib, tiny_testbed)
        assert r_direct.mean_speedup >= r_label.mean_speedup * 0.9
