"""PerfDataset container."""

import numpy as np
import pytest

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.dataset import PerfDataset


def make_dataset() -> PerfDataset:
    configs = (
        AlgorithmConfig.make("bcast", 1, "linear"),
        AlgorithmConfig.make("bcast", 2, "chain", segsize=1024, chains=2),
        AlgorithmConfig.make("bcast", 2, "chain", segsize=4096, chains=2),
    )
    # 2 instances x 3 configs.
    return PerfDataset(
        name="toy",
        collective=CollectiveKind.BCAST,
        library="Open MPI 4.0.2",
        machine="TinyTestbed",
        configs=configs,
        config_id=np.array([0, 1, 2, 0, 1, 2]),
        nodes=np.array([2, 2, 2, 4, 4, 4]),
        ppn=np.array([1, 1, 1, 2, 2, 2]),
        msize=np.array([64, 64, 64, 64, 64, 64]),
        time=np.array([1e-5, 2e-5, 3e-5, 4e-5, 2e-5, 1e-5]),
    )


class TestValidation:
    def test_mismatched_columns(self):
        with pytest.raises(ValueError, match="length"):
            PerfDataset(
                name="bad",
                collective=CollectiveKind.BCAST,
                library="l",
                machine="m",
                configs=(AlgorithmConfig.make("bcast", 1, "linear"),),
                config_id=np.array([0]),
                nodes=np.array([1, 2]),
                ppn=np.array([1]),
                msize=np.array([1]),
                time=np.array([1.0]),
            )

    def test_config_id_out_of_range(self):
        with pytest.raises(ValueError, match="config_id"):
            PerfDataset(
                name="bad",
                collective=CollectiveKind.BCAST,
                library="l",
                machine="m",
                configs=(AlgorithmConfig.make("bcast", 1, "linear"),),
                config_id=np.array([3]),
                nodes=np.array([1]),
                ppn=np.array([1]),
                msize=np.array([1]),
                time=np.array([1.0]),
            )


class TestQueries:
    def test_len_and_algorithms(self):
        ds = make_dataset()
        assert len(ds) == 6
        assert ds.num_algorithms == 2  # algids {1, 2}

    def test_filter_nodes(self):
        ds = make_dataset().filter_nodes([2])
        assert len(ds) == 3
        assert (ds.nodes == 2).all()

    def test_subset_preserves_configs(self):
        ds = make_dataset()
        sub = ds.subset(ds.config_id == 1, name="chains-only")
        assert sub.configs == ds.configs
        assert sub.name == "chains-only"

    def test_instances(self):
        inst = make_dataset().instances()
        np.testing.assert_array_equal(inst, [[2, 1, 64], [4, 2, 64]])

    def test_instance_table(self):
        table = make_dataset().instance_table()
        assert table[(2, 1, 64)] == {0: 1e-5, 1: 2e-5, 2: 3e-5}
        assert min(table[(4, 2, 64)], key=table[(4, 2, 64)].get) == 2

    def test_rows_of_config(self):
        ds = make_dataset()
        assert ds.rows_of_config(0).sum() == 2

    def test_summary(self):
        s = make_dataset().summary()
        assert s["routine"] == "MPI_Bcast"
        assert s["#algorithms"] == 2
        assert s["#nodes"] == 2
        assert s["#samples"] == 6


class TestPersistence:
    def test_csv_export(self, tmp_path):
        ds = make_dataset()
        path = tmp_path / "toy.csv"
        ds.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("config_id,algid,algorithm")
        assert len(lines) == len(ds) + 1
        first = lines[1].split(",")
        assert first[2] == "linear"
        assert first[4:7] == ["2", "1", "64"]

    def test_save_load_round_trip(self, tmp_path):
        ds = make_dataset()
        stem = tmp_path / "toy"
        ds.save(stem)
        back = PerfDataset.load(stem)
        assert back.name == ds.name
        assert back.configs == ds.configs
        np.testing.assert_array_equal(back.time, ds.time)
        np.testing.assert_array_equal(back.config_id, ds.config_id)
        assert back.collective is CollectiveKind.BCAST

    def test_save_is_atomic_no_droppings(self, tmp_path):
        ds = make_dataset()
        stem = tmp_path / "toy"
        ds.save(stem)
        # Only the two final artifacts remain — no temp files.
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["toy.json", "toy.npz"]

    def test_save_overwrites_corrupt_file(self, tmp_path):
        ds = make_dataset()
        stem = tmp_path / "toy"
        (tmp_path / "toy.npz").write_bytes(b"torn write from a dead run")
        ds.save(stem)
        back = PerfDataset.load(stem)
        np.testing.assert_array_equal(back.time, ds.time)

    def test_save_failure_leaves_previous_file(self, tmp_path, monkeypatch):
        ds = make_dataset()
        stem = tmp_path / "toy"
        ds.save(stem)
        before = (tmp_path / "toy.npz").read_bytes()

        import numpy as _np

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(_np, "savez_compressed", boom)
        with pytest.raises(OSError):
            ds.save(stem)
        # Interrupted save: the previous complete archive is untouched.
        assert (tmp_path / "toy.npz").read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "toy.json", "toy.npz",
        ]
