"""Strategy evaluation against measured datasets."""

import numpy as np
import pytest

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import DatasetRunner, GridSpec
from repro.core.evaluation import EvaluationResult, evaluate_selector
from repro.core.selector import AlgorithmSelector
from repro.machine.zoo import tiny_testbed
from repro.ml import KNNRegressor
from repro.mpilib import get_library


@pytest.fixture(scope="module")
def setting():
    lib = get_library("Open MPI")
    runner = DatasetRunner(tiny_testbed, lib, BenchmarkSpec(max_nreps=8), seed=3)
    grid_train = GridSpec(nodes=(2, 4, 8), ppns=(1, 2), msizes=(64, 4096, 262144))
    grid_test = GridSpec(nodes=(3, 5), ppns=(1, 2), msizes=(64, 4096, 262144))
    train = runner.run("allreduce", grid_train, name="train")
    test = runner.run("allreduce", grid_test, name="test")
    selector = AlgorithmSelector(lambda: KNNRegressor()).fit(train)
    result = evaluate_selector(selector, test, lib, tiny_testbed)
    return lib, test, selector, result


class TestEvaluateSelector:
    def test_covers_all_instances(self, setting):
        _, test, _, result = setting
        assert len(result) + result.skipped == len(test.instances())
        assert result.skipped == 0

    def test_best_bounds_everything(self, setting):
        _, _, _, result = setting
        assert (result.best_time <= result.default_time + 1e-15).all()
        assert (result.best_time <= result.predicted_time + 1e-15).all()

    def test_normalisation(self, setting):
        _, _, _, result = setting
        assert (result.normalized_default >= 1.0 - 1e-12).all()
        assert (result.normalized_predicted >= 1.0 - 1e-12).all()

    def test_predicted_times_are_measured_values(self, setting):
        _, test, _, result = setting
        table = test.instance_table()
        for i in range(len(result)):
            key = (int(result.nodes[i]), int(result.ppn[i]), int(result.msize[i]))
            assert result.predicted_time[i] == table[key][int(result.predicted_id[i])]

    def test_speedup_definition(self, setting):
        _, _, _, result = setting
        np.testing.assert_allclose(
            result.speedup_vs_default,
            result.default_time / result.predicted_time,
        )

    def test_prediction_not_much_worse_than_default(self, setting):
        _, _, _, result = setting
        # The headline property (on the tiny testbed, just sanity).
        assert result.mean_speedup > 0.8

    def test_filter(self, setting):
        _, _, _, result = setting
        sub = result.filter(nodes=3, ppn=2)
        assert (sub.nodes == 3).all() and (sub.ppn == 2).all()
        assert len(sub) == 3  # one per message size


class TestEvaluationResultBasics:
    def test_empty_result_properties(self):
        empty = EvaluationResult(
            nodes=np.empty(0, np.int64),
            ppn=np.empty(0, np.int64),
            msize=np.empty(0, np.int64),
            best_time=np.empty(0),
            default_time=np.empty(0),
            predicted_time=np.empty(0),
            best_id=np.empty(0, np.int64),
            default_id=np.empty(0, np.int64),
            predicted_id=np.empty(0, np.int64),
        )
        assert len(empty) == 0
