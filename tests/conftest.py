"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

try:  # keep property-based tests deadline-free on loaded CI runners
    from hypothesis import settings as _hyp_settings

    _hyp_settings.register_profile("ci", deadline=None)
    _hyp_settings.load_profile("ci")
except ImportError:  # pragma: no cover - hypothesis is optional
    pass

from repro.machine.model import MachineModel, NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import tiny_testbed


@pytest.fixture
def machine() -> MachineModel:
    """Small deterministic machine used across the suite."""
    return tiny_testbed


@pytest.fixture
def quiet_machine() -> MachineModel:
    """Machine with noise fully disabled (exact comparisons)."""
    return tiny_testbed.with_noise(NoiseModel(sigma=0.0, spike_prob=0.0, floor=0.0))


@pytest.fixture
def topo() -> Topology:
    return Topology(4, 2)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration tests (deselect with -m 'not slow')"
    )
