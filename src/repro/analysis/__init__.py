"""Repo-aware static analysis for the reproduction's own invariants.

The runtime enforces determinism (every RNG flows from ``stable_seed``),
atomic persistence (tmp + ``os.replace``), and a never-blocked asyncio
front-end — but only at runtime, where a regression can hide until a
campaign or a p99 chart goes wrong. ``repro.analysis`` checks the same
invariants mechanically at the AST level:

- REP001 determinism — no unseeded ``random.*`` / ``np.random`` global
  state or wall-clock reads on bench/simulator/ml/serve paths
- REP002 atomic-write — no bare write-mode ``open`` outside the
  tmp + ``os.replace`` idiom
- REP003 asyncio-safety — no blocking calls inside ``async def``, no
  dropped ``create_task`` results
- REP004 lock-discipline — known shared attributes mutated only under
  their ``with <lock>`` block
- REP005 obs-naming — metric/event names snake_case under registered
  prefixes
- REP006 exception-hygiene — no bare/blind ``except`` in serve and
  checkpoint paths

Entry points: ``mpicollpred lint`` and ``scripts/repro_lint.py``; see
``docs/static-analysis.md`` for the baseline and suppression workflow.
"""

from repro.analysis.core import (
    Analyzer,
    Checker,
    FileContext,
    Finding,
    iter_python_files,
)

__all__ = [
    "Analyzer",
    "Checker",
    "FileContext",
    "Finding",
    "iter_python_files",
]
