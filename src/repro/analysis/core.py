"""Framework core: findings model, per-file context, checker base, analyzer.

A :class:`Checker` is an ``ast.NodeVisitor`` bound to one rule id. The
:class:`Analyzer` parses each file once into a :class:`FileContext`,
runs every applicable checker over the shared tree, and filters the
raw findings through inline suppressions (``# repro: allow REP00X``).

Findings carry a line-independent *fingerprint* (hash of rule, path and
the stripped source line) so a committed baseline survives unrelated
edits that merely shift line numbers.
"""

from __future__ import annotations

import ast
import hashlib
import re
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\s+(?P<rules>REP\d{3}(?:\s*,\s*REP\d{3})*)"
    r"(?:\s*--\s*(?P<why>.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    severity: str
    path: str  # repo-relative posix path
    line: int
    col: int
    message: str
    fix_hint: str = ""
    fingerprint: str = ""

    def render(self) -> str:
        loc = f"{self.path}:{self.line}:{self.col}"
        text = f"{loc}: {self.rule} [{self.severity}] {self.message}"
        if self.fix_hint:
            text += f" (fix: {self.fix_hint})"
        return text

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint,
        }


class FileContext:
    """A parsed source file plus everything checkers need to inspect it."""

    def __init__(self, rel: str, source: str, *, path: Path | None = None) -> None:
        self.rel = rel.replace("\\", "/")
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(source, filename=self.rel)
        except SyntaxError as exc:
            self.parse_error = exc
        self.suppressions = self._collect_suppressions()

    @classmethod
    def from_path(cls, path: Path, root: Path) -> "FileContext":
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(rel, path.read_text(encoding="utf-8"), path=path)

    def _collect_suppressions(self) -> dict[int, set[str]]:
        """Map 1-based line number -> set of rule ids allowed on that line."""
        out: dict[int, set[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group("rules").split(",")}
            out.setdefault(lineno, set()).update(rules)
        return out

    def is_suppressed(self, finding: Finding) -> bool:
        allowed = self.suppressions.get(finding.line)
        return allowed is not None and finding.rule in allowed

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Checker(ast.NodeVisitor):
    """Base class for one rule. Subclasses set ``rule``/``severity`` and
    call :meth:`report` from their ``visit_*`` methods."""

    rule = "REP000"
    severity = "error"
    default_fix_hint = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        """Whether this rule is in scope for the file (path-based)."""
        return True

    def run(self) -> list[Finding]:
        if self.ctx.tree is not None:
            self.visit(self.ctx.tree)
        return self.findings

    def report(
        self,
        node: ast.AST,
        message: str,
        *,
        fix_hint: str | None = None,
    ) -> None:
        self.findings.append(
            Finding(
                rule=self.rule,
                severity=self.severity,
                path=self.ctx.rel,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                fix_hint=self.default_fix_hint if fix_hint is None else fix_hint,
            )
        )


def dotted_name(node: ast.AST) -> str | None:
    """Unparse a Name/Attribute chain like ``np.random.seed``; None for
    anything with calls or subscripts in the chain."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _fingerprint(rule: str, path: str, line_text: str, occurrence: int) -> str:
    payload = f"{rule}|{path}|{line_text.strip()}|{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def fingerprint_findings(
    findings: Sequence[Finding], ctx_by_path: dict[str, FileContext]
) -> list[Finding]:
    """Attach stable fingerprints; duplicate identical lines get an
    occurrence index so each keeps a distinct fingerprint."""
    seen: Counter[tuple[str, str, str]] = Counter()
    out: list[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        ctx = ctx_by_path.get(finding.path)
        text = ctx.line_text(finding.line) if ctx is not None else ""
        key = (finding.rule, finding.path, text.strip())
        occurrence = seen[key]
        seen[key] += 1
        out.append(
            replace(
                finding,
                fingerprint=_fingerprint(finding.rule, finding.path, text, occurrence),
            )
        )
    return out


_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules", ".repro_cache"}


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if any(part in _SKIP_DIR_NAMES for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


@dataclass
class AnalysisResult:
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    def by_rule(self) -> dict[str, int]:
        counts: Counter[str] = Counter(f.rule for f in self.findings)
        return dict(sorted(counts.items()))


class Analyzer:
    """Run a set of checkers over files and collect fingerprinted findings."""

    def __init__(
        self,
        checkers: Sequence[type[Checker]],
        *,
        select: Sequence[str] | None = None,
    ) -> None:
        if select:
            wanted = set(select)
            checkers = [c for c in checkers if c.rule in wanted]
        self.checkers = list(checkers)

    def analyze_context(self, ctx: FileContext) -> list[Finding]:
        """Raw (un-fingerprinted, un-suppressed) findings for one file."""
        if ctx.parse_error is not None:
            exc = ctx.parse_error
            return [
                Finding(
                    rule="REP000",
                    severity="error",
                    path=ctx.rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"syntax error: {exc.msg}",
                    fix_hint="file must parse before it can be analyzed",
                )
            ]
        findings: list[Finding] = []
        for checker_cls in self.checkers:
            if checker_cls.applies_to(ctx):
                findings.extend(checker_cls(ctx).run())
        return findings

    def analyze_paths(self, paths: Sequence[Path], root: Path) -> AnalysisResult:
        result = AnalysisResult()
        raw: list[Finding] = []
        ctx_by_path: dict[str, FileContext] = {}
        for file_path in iter_python_files(paths):
            ctx = FileContext.from_path(file_path, root)
            ctx_by_path[ctx.rel] = ctx
            result.files_scanned += 1
            for finding in self.analyze_context(ctx):
                if ctx.is_suppressed(finding):
                    result.suppressed.append(finding)
                else:
                    raw.append(finding)
        result.findings = fingerprint_findings(raw, ctx_by_path)
        return result


CheckerFactory = Callable[[], Sequence[type[Checker]]]
