"""Committed-baseline support: grandfathered findings that don't fail CI.

The baseline is a small JSON document listing fingerprints of findings
we have decided to live with, each with a human justification. New
findings (not in the baseline) fail the lint run; stale entries (in the
baseline but no longer produced) are reported so the file shrinks over
time. The file itself is written atomically — the tool practices the
REP002 idiom it preaches.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.analysis.core import Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    justification: str = ""


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    def fingerprints(self) -> set[str]:
        return {entry.fingerprint for entry in self.entries}

    def split(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition findings into (new, baselined); third element is the
        stale baseline entries no finding matched."""
        known = self.fingerprints()
        new = [f for f in findings if f.fingerprint not in known]
        matched = [f for f in findings if f.fingerprint in known]
        live = {f.fingerprint for f in matched}
        stale = [entry for entry in self.entries if entry.fingerprint not in live]
        return new, matched, stale


def load_baseline(path: Path) -> Baseline:
    if not path.exists():
        return Baseline()
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {path}"
        )
    entries = [
        BaselineEntry(
            fingerprint=str(item["fingerprint"]),
            rule=str(item.get("rule", "")),
            path=str(item.get("path", "")),
            justification=str(item.get("justification", "")),
        )
        for item in doc.get("findings", [])
    ]
    return Baseline(entries=entries)


def save_baseline(path: Path, findings: Sequence[Finding]) -> Baseline:
    """Write the current findings out as the new baseline, atomically."""
    entries = [
        BaselineEntry(
            fingerprint=f.fingerprint,
            rule=f.rule,
            path=f.path,
            justification="TODO: justify or fix",
        )
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    doc = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": e.fingerprint,
                "rule": e.rule,
                "path": e.path,
                "justification": e.justification,
            }
            for e in entries
        ],
    }
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return Baseline(entries=entries)
