"""Command-line front-end shared by ``mpicollpred lint`` and
``scripts/repro_lint.py``.

Exit codes: 0 clean (modulo baseline), 1 new findings (or stale
baseline entries under ``--fail-on-findings``), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import Baseline, load_baseline, save_baseline
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.core import Analyzer

DEFAULT_PATHS = ("src", "scripts")
DEFAULT_BASELINE = "analysis-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to scan (default: src scripts)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root; findings are reported relative to it (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline JSON path (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule ids to run (default: all REP rules)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--fail-on-findings",
        action="store_true",
        help=(
            "strict CI mode: also fail (exit 1) on stale baseline entries so"
            " the baseline can only shrink deliberately"
        ),
    )


def run_lint(args: argparse.Namespace, *, out: TextIO | None = None) -> int:
    out = sys.stdout if out is None else out
    root = Path(args.root)
    if not root.is_dir():
        print(f"error: --root {root} is not a directory", file=sys.stderr)
        return 2
    paths = [root / p if not Path(p).is_absolute() else Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        joined = ", ".join(str(p) for p in missing)
        print(f"error: no such path(s): {joined}", file=sys.stderr)
        return 2

    select = [s.strip() for s in args.select.split(",") if s.strip()] or None
    if select:
        # A typo here would silently select zero checkers and pass CI.
        known = {checker.rule for checker in ALL_CHECKERS}
        unknown = sorted(set(select) - known)
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(unknown)}"
                f" (known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
    analyzer = Analyzer(ALL_CHECKERS, select=select)
    result = analyzer.analyze_paths(paths, root)

    baseline_path = root / args.baseline
    if args.write_baseline:
        save_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}",
            file=out,
        )
        return 0

    baseline = Baseline() if args.no_baseline else load_baseline(baseline_path)
    new, baselined, stale = baseline.split(result.findings)

    if args.format == "json":
        doc = {
            "files_scanned": result.files_scanned,
            "new": [f.to_json() for f in new],
            "baselined": [f.to_json() for f in baselined],
            "suppressed": len(result.suppressed),
            "stale_baseline_entries": [e.fingerprint for e in stale],
        }
        print(json.dumps(doc, indent=2), file=out)
    else:
        for finding in new:
            print(finding.render(), file=out)
        counts = ", ".join(
            f"{rule}={n}"
            for rule, n in sorted(Counter(f.rule for f in new).items())
        )
        print(
            f"repro-lint: {result.files_scanned} files scanned,"
            f" {len(new)} new finding(s)"
            + (f" [{counts}]" if counts else "")
            + f", {len(baselined)} baselined,"
            f" {len(result.suppressed)} suppressed",
            file=out,
        )
        for entry in stale:
            print(
                f"repro-lint: stale baseline entry {entry.fingerprint}"
                f" ({entry.rule} {entry.path}) — remove it from"
                f" {baseline_path.name}",
                file=out,
            )

    if new:
        return 1
    if stale and args.fail_on_findings:
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="repo-aware static analysis (REP001-REP006)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
