"""The repo-specific rule set. ``ALL_CHECKERS`` is the registry used by
the CLI; tests import individual checkers to run them on fixtures."""

from repro.analysis.checkers.rep001_determinism import DeterminismChecker
from repro.analysis.checkers.rep002_atomic_write import AtomicWriteChecker
from repro.analysis.checkers.rep003_async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.rep004_lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.rep005_obs_naming import ObsNamingChecker
from repro.analysis.checkers.rep006_exception_hygiene import ExceptionHygieneChecker

ALL_CHECKERS = (
    DeterminismChecker,
    AtomicWriteChecker,
    AsyncBlockingChecker,
    LockDisciplineChecker,
    ObsNamingChecker,
    ExceptionHygieneChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "DeterminismChecker",
    "AtomicWriteChecker",
    "AsyncBlockingChecker",
    "LockDisciplineChecker",
    "ObsNamingChecker",
    "ExceptionHygieneChecker",
]
