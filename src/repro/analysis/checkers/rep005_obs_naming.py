"""REP005 — obs-naming: telemetry names are snake_case under registered
prefixes.

The Prometheus exporter flattens dotted telemetry names into metric
names (``serve.compiled.hit`` -> ``serve_compiled_hit_total``) and the
golden scrape files in tests assert exact names. A typo'd or
camelCased name silently forks a new time series. This rule checks
every statically-known name passed to a telemetry call
(``telemetry.add/counter/gauge/observe/histogram/event``):

- metric names must be lowercase dotted snake_case with at least two
  segments, and the first segment must be a registered prefix
- event names must be a single snake_case token

f-strings and computed names are skipped (validated at runtime by the
exporter instead). New subsystems register their prefix in
``REGISTERED_PREFIXES`` (and in docs/static-analysis.md).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Checker, dotted_name

REGISTERED_PREFIXES = (
    "bench",
    "cache",
    "campaign",
    "dataset",
    "fleet",
    "retrain",
    "selector",
    "serve",
    "surface",
    "tuner",
)

_METRIC_METHODS = {"add", "counter", "gauge", "observe", "histogram", "set_gauge"}
_EVENT_METHODS = {"event"}

_SEGMENT_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def _receiver_is_telemetry(node: ast.AST) -> bool:
    name = dotted_name(node)
    if name is not None:
        return "telemetry" in name.lower()
    if isinstance(node, ast.Call):
        inner = dotted_name(node.func)
        return inner is not None and inner.split(".")[-1] == "get_telemetry"
    return False


class ObsNamingChecker(Checker):
    rule = "REP005"
    severity = "error"
    default_fix_hint = (
        "use lowercase dotted snake_case under a registered prefix"
        f" ({', '.join(REGISTERED_PREFIXES)})"
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in (_METRIC_METHODS | _EVENT_METHODS)
            and _receiver_is_telemetry(func.value)
            and node.args
        ):
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                if func.attr in _EVENT_METHODS:
                    self._check_event(node, first.value)
                else:
                    self._check_metric(node, first.value)
        self.generic_visit(node)

    def _check_metric(self, node: ast.Call, name: str) -> None:
        segments = name.split(".")
        if len(segments) < 2:
            self.report(
                node,
                f"metric name {name!r} must be dotted (prefix.metric)",
            )
            return
        if not all(_SEGMENT_RE.match(seg) for seg in segments):
            self.report(
                node,
                f"metric name {name!r} is not lowercase dotted snake_case",
            )
            return
        if segments[0] not in REGISTERED_PREFIXES:
            self.report(
                node,
                f"metric prefix {segments[0]!r} is not registered"
                " (REGISTERED_PREFIXES in rep005_obs_naming.py)",
                fix_hint="use a registered prefix or register the new subsystem",
            )

    def _check_event(self, node: ast.Call, name: str) -> None:
        if not _SEGMENT_RE.match(name):
            self.report(
                node,
                f"event name {name!r} is not a snake_case token",
            )
