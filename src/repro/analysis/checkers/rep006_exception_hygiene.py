"""REP006 — exception-hygiene: no bare/blind ``except`` on serve and
checkpoint paths.

A swallowed exception in the serving stack turns a crash into silent
wrong answers; in the checkpoint/journal stack it turns a torn write
into silent data loss. Scope: ``src/repro/serve/`` and
``src/repro/bench/`` (the checkpoint/journal path lives there).

Flags:

- ``except:`` — always (catches KeyboardInterrupt/SystemExit too)
- ``except Exception:`` / ``except BaseException:`` that neither
  re-raises, nor uses the bound exception (``as exc`` referenced in the
  body), nor records evidence (a telemetry/log/print call in the body)

A handler that re-raises, inspects the exception, or emits a counter is
deliberate degradation, not swallowing.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Checker, FileContext, dotted_name

_SCOPE_RE = re.compile(r"(^|/)src/repro/(serve|bench)/")

_BLIND_TYPES = {"Exception", "BaseException"}

_EVIDENCE_CALL_RE = re.compile(r"telemetry|logger|logging|warn", re.IGNORECASE)


def _handler_types(node: ast.excepthandler) -> list[str]:
    if node.type is None:
        return []
    types = (
        list(node.type.elts) if isinstance(node.type, ast.Tuple) else [node.type]
    )
    names: list[str] = []
    for item in types:
        name = dotted_name(item)
        if name is not None:
            names.append(name.split(".")[-1])
    return names


def _body_reraises(node: ast.ExceptHandler) -> bool:
    return any(
        isinstance(child, ast.Raise)
        for stmt in node.body
        for child in ast.walk(stmt)
    )


def _body_uses_name(node: ast.ExceptHandler, name: str) -> bool:
    for stmt in node.body:
        for child in ast.walk(stmt):
            if isinstance(child, ast.Name) and child.id == name:
                return True
    return False


def _body_records_evidence(node: ast.ExceptHandler) -> bool:
    for stmt in node.body:
        for child in ast.walk(stmt):
            if not isinstance(child, ast.Call):
                continue
            name = dotted_name(child.func)
            if name is None:
                continue
            if name == "print" or _EVIDENCE_CALL_RE.search(name):
                return True
    return False


class ExceptionHygieneChecker(Checker):
    rule = "REP006"
    severity = "error"
    default_fix_hint = (
        "catch the specific exception, or re-raise / record the failure"
        " (telemetry counter, event, log) before degrading"
    )

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return _SCOPE_RE.search(ctx.rel) is not None

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:` catches KeyboardInterrupt/SystemExit",
                fix_hint="catch Exception (or a specific type) at most",
            )
        else:
            blind = [t for t in _handler_types(node) if t in _BLIND_TYPES]
            if blind and not self._is_deliberate(node):
                self.report(
                    node,
                    f"blind `except {blind[0]}` swallows the failure"
                    " (no re-raise, no use of the exception, no telemetry)",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_deliberate(node: ast.ExceptHandler) -> bool:
        if _body_reraises(node):
            return True
        if node.name is not None and _body_uses_name(node, node.name):
            return True
        return _body_records_evidence(node)
