"""REP003 — asyncio-safety: coroutines never block the event loop.

The fleet front-end (``repro/serve/fleet.py``) multiplexes every client
over one event loop; a single synchronous call inside a coroutine
stalls the whole fleet's p99. This rule flags, inside ``async def``:

- ``time.sleep(...)`` (use ``asyncio.sleep``)
- synchronous subprocess spawns (``subprocess.run`` et al.; use
  ``asyncio.create_subprocess_exec``)
- synchronous file IO (``open``, ``Path.read_text`` and friends; do it
  in a thread or before entering the loop)
- non-awaited ``.acquire()`` (a blocking ``threading.Lock.acquire``
  wedges the loop; ``await lock.acquire()`` on an asyncio lock is fine)
- ``input(...)``

Anywhere (sync or async): an ``asyncio.create_task``/``ensure_future``
call whose result is dropped — the event loop only holds a weak
reference, so the task can be garbage-collected mid-flight.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, dotted_name

_SYNC_SUBPROCESS = {
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.popen",
}

_SYNC_IO_METHODS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}

_TASK_SPAWNERS = {"create_task", "ensure_future"}


class AsyncBlockingChecker(Checker):
    rule = "REP003"
    severity = "error"
    default_fix_hint = "use the asyncio-native equivalent or offload to a thread"

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        # Stack of True (async def) / False (sync def or lambda) frames.
        self._func_stack: list[bool] = []
        self._awaited: set[int] = set()

    def _in_async(self) -> bool:
        return bool(self._func_stack) and self._func_stack[-1]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(False)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._func_stack.append(False)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._func_stack.append(True)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_Await(self, node: ast.Await) -> None:
        self._awaited.add(id(node.value))
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # A bare-expression statement whose value is create_task(...) is a
        # dropped task handle.
        value = node.value
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is not None and name.split(".")[-1] in _TASK_SPAWNERS:
                self.report(
                    value,
                    f"result of {name}(...) is dropped; the loop keeps only a"
                    " weak reference",
                    fix_hint="store the task handle (and await or cancel it)",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_async():
            self._check_blocking(node)
        self.generic_visit(node)

    def _check_blocking(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name == "time.sleep":
            self.report(
                node,
                "time.sleep inside async def blocks the event loop",
                fix_hint="await asyncio.sleep(...)",
            )
            return
        if name in _SYNC_SUBPROCESS:
            self.report(
                node,
                f"synchronous subprocess call {name}(...) inside async def",
                fix_hint="await asyncio.create_subprocess_exec(...)",
            )
            return
        if name == "open" or name == "input":
            self.report(
                node,
                f"blocking builtin {name}(...) inside async def",
                fix_hint="use asyncio.to_thread(...) or do the IO off-loop",
            )
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            # `.open(...)` with arguments is file IO (`path.open("w")`);
            # zero-arg `.open()` is ambiguous with domain methods like
            # `_ReloadGate.open()` and is left to REP002 / review.
            if func.attr == "open" and (node.args or node.keywords):
                self.report(
                    node,
                    "synchronous file IO .open(...) inside async def",
                    fix_hint="use asyncio.to_thread(...) or do the IO off-loop",
                )
                return
            if func.attr in _SYNC_IO_METHODS:
                self.report(
                    node,
                    f"synchronous file IO .{func.attr}(...) inside async def",
                    fix_hint="use asyncio.to_thread(...) or do the IO off-loop",
                )
                return
            if func.attr == "acquire" and id(node) not in self._awaited:
                self.report(
                    node,
                    "non-awaited .acquire() inside async def can block the"
                    " event loop",
                    fix_hint="await the asyncio primitive (async with lock:)",
                )
