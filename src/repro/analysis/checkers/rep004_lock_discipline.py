"""REP004 — lock-discipline: shared state mutates only under its lock.

The registry, telemetry hub, caches and fleet keep shared maps that are
mutated from multiple threads (or from coroutines racing with reader
threads). Each such attribute has exactly one lock that must be held.
The map below is the contract: ``class -> {attribute -> lock attr}``.
Mutating one of these attributes (assignment, augmented assignment,
``del``, or a mutator method like ``.append``/``.update``/``.clear``)
outside a ``with self.<lock>``/``async with self.<lock>`` block — or a
``self.<lock>.acquire()``-guarded helper explicitly suppressed — is an
error. ``__init__``/``__new__`` are exempt (no concurrent access before
construction completes).

When a new shared attribute grows a lock, add it here; the fixture
tests pin the checker's semantics.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, dotted_name

# class name -> {shared attribute -> required lock attribute}
LOCKED_ATTRS: dict[str, dict[str, str]] = {
    # repro/serve/registry.py
    "ModelRegistry": {"_live": "_write_lock", "_next_version": "_write_lock"},
    # repro/serve/service.py
    "PredictionService": {
        "_batchers": "_batchers_lock",
        "_shards": "_shards_lock",
        "_tables": "_tables_lock",
    },
    # repro/serve/cache.py
    "KeyInterner": {"_table": "_lock"},
    "LRUCache": {"_data": "_lock"},
    # repro/obs/telemetry.py
    "Telemetry": {
        "_counters": "_state_lock",
        "_gauges": "_state_lock",
        "_histograms": "_state_lock",
        "_sinks": "_sinks_lock",
    },
    "Histogram": {"counts": "_lock", "total": "_lock", "sum": "_lock"},
    "_Counter": {"value": "_lock"},
    # repro/obs/sinks.py
    "MemorySink": {"_events": "_lock"},
    "FileSink": {"_fh": "_lock"},
    # repro/bench/checkpoint.py
    "CampaignJournal": {"_chunks": "_lock"},
}

_MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "sort",
    "update",
}

_EXEMPT_METHODS = {"__init__", "__new__", "__post_init__"}


def _method_exempt(name: str) -> bool:
    # `*_locked` helpers are called with the lock already held — the
    # repo-wide naming convention (e.g. CampaignJournal._write_locked).
    return name in _EXEMPT_METHODS or name.endswith("_locked")


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``X``; None for anything else."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class LockDisciplineChecker(Checker):
    rule = "REP004"
    severity = "error"
    default_fix_hint = "move the mutation under `with self.<lock>:`"

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._class_stack: list[str] = []
        self._method_stack: list[str] = []
        self._held_locks: list[str] = []

    # -- scope tracking -------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        self._method_stack.append(node.name)
        self.generic_visit(node)
        self._method_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_with(self, node) -> None:
        held: list[str] = []
        for item in node.items:
            expr = item.context_expr
            # `with self._lock:` and `with self._lock.acquire_timeout(..)`
            attr = _self_attr(expr)
            if attr is None and isinstance(expr, ast.Call):
                inner = dotted_name(expr.func)
                if inner is not None and inner.startswith("self."):
                    attr = inner.split(".")[1]
            if attr is not None:
                held.append(attr)
        self._held_locks.extend(held)
        self.generic_visit(node)
        for _ in held:
            self._held_locks.pop()

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- mutation detection ---------------------------------------------
    def _config(self) -> dict[str, str] | None:
        if not self._class_stack:
            return None
        return LOCKED_ATTRS.get(self._class_stack[-1])

    def _check_target(self, target: ast.AST, node: ast.AST, what: str) -> None:
        config = self._config()
        if config is None:
            return
        if self._method_stack and _method_exempt(self._method_stack[-1]):
            return
        if not self._method_stack:
            return  # class-body defaults, not runtime mutation
        # `self.X = ...` or `self.X[k] = ...` / `del self.X[k]`
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        attr = _self_attr(base)
        if attr is None or attr not in config:
            return
        lock = config[attr]
        if lock not in self._held_locks:
            self.report(
                node,
                f"{what} of shared attribute self.{attr} outside"
                f" `with self.{lock}:`",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node, "assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node, "augmented assignment")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node, "assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node, "deletion")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        config = self._config()
        if (
            config is not None
            and self._method_stack
            and not _method_exempt(self._method_stack[-1])
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            attr = _self_attr(node.func.value)
            if attr is not None and attr in config:
                lock = config[attr]
                if lock not in self._held_locks:
                    self.report(
                        node,
                        f"mutator self.{attr}.{node.func.attr}(...) outside"
                        f" `with self.{lock}:`",
                    )
        self.generic_visit(node)
