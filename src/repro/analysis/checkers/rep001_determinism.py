"""REP001 — determinism: RNGs must flow from ``stable_seed`` and time
must come from the monotonic clock on measurement/serving paths.

Campaigns are bit-identical for any ``REPRO_JOBS`` because every RNG
stream derives from :func:`repro.utils.rng.stable_seed` and no code on
the bench/simulator/ml/serve paths reads global RNG state or the wall
clock. This rule flags:

- calls on the ``random`` module's global instance (``random.random()``,
  ``random.shuffle(...)``, ...) and unseeded ``random.Random()``
- ``numpy.random`` legacy global-state calls (``np.random.seed``,
  ``np.random.rand``, ...); ``default_rng``/``Generator`` are fine
- wall-clock reads (``time.time``, ``datetime.now``, ...); the
  monotonic/perf_counter clocks are fine
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import Checker, FileContext, dotted_name

_SCOPE_RE = re.compile(r"(^|/)src/repro/(bench|simulator|ml|serve)/")

# Methods on random's hidden global Random instance.
_RANDOM_GLOBAL_FNS = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "getrandbits",
    "getstate",
    "lognormvariate",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "setstate",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
    "weibullvariate",
}

# Legacy numpy global-state API (np.random.<fn> without a Generator).
_NP_RANDOM_GLOBAL_FNS = {
    "seed",
    "get_state",
    "set_state",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "random_integers",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
    "exponential",
    "poisson",
    "binomial",
    "beta",
    "gamma",
    "bytes",
}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}

_RNG_HINT = (
    "derive the stream from stable_seed(...) / as_generator(...) or take an"
    " injected Generator"
)
_CLOCK_HINT = "use time.monotonic()/time.perf_counter() for intervals"


class DeterminismChecker(Checker):
    rule = "REP001"
    severity = "error"
    default_fix_hint = _RNG_HINT

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return _SCOPE_RE.search(ctx.rel) is not None

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            self._check_dotted(node, name)
        self.generic_visit(node)

    def _check_dotted(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if name.startswith("random.") and parts[1] in _RANDOM_GLOBAL_FNS:
            self.report(
                node,
                f"call to the global random instance: {name}()",
            )
            return
        if name in ("random.Random", "random.SystemRandom") and not (
            node.args or node.keywords
        ):
            self.report(
                node,
                f"{name}() without a seed is nondeterministic",
            )
            return
        if name == "random.SystemRandom":
            self.report(node, "random.SystemRandom is nondeterministic by design")
            return
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in _NP_RANDOM_GLOBAL_FNS
        ):
            self.report(
                node,
                f"numpy legacy global-state RNG call: {name}()",
                fix_hint=(
                    "use numpy.random.default_rng(stable_seed(...)) or an injected"
                    " Generator"
                ),
            )
            return
        if name in _WALL_CLOCK:
            self.report(
                node,
                f"wall-clock read on a deterministic path: {name}()",
                fix_hint=_CLOCK_HINT,
            )
