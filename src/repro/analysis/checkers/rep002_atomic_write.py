"""REP002 — atomic-write: persistent artifacts are written tmp + replace.

Every artifact the repo persists (datasets, checkpoints, rules files,
bench reports) is written to a ``.tmp`` sibling and moved into place
with ``os.replace`` so readers never observe a torn file and a crash
never corrupts the previous good copy (see ``Dataset.save`` and
``CampaignJournal._write_locked`` for the canonical idiom).

This rule flags write-mode opens (``open(p, "w")``, ``p.open("w")``,
``p.write_text(...)``, ``p.write_bytes(...)``) unless either

- the target expression mentions ``tmp``/``temp`` (it *is* the scratch
  file), or
- the nearest enclosing function also calls ``os.replace`` (the idiom
  is present in that scope).

Append-mode opens are exempt: appending is not a replace and is how the
JSONL telemetry sinks work.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Checker, dotted_name

_HINT = "write to a tmp sibling and os.replace() it into place"


def _contains_os_replace(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and dotted_name(child.func) == "os.replace":
            return True
    return False


def _mode_is_write(mode: str) -> bool:
    return ("w" in mode or "x" in mode) and "a" not in mode


def _target_is_scratch(node: ast.AST) -> bool:
    try:
        text = ast.unparse(node).lower()
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return False
    return "tmp" in text or "temp" in text or "devnull" in text


class AtomicWriteChecker(Checker):
    rule = "REP002"
    severity = "error"
    default_fix_hint = _HINT

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._replace_scope: list[bool] = []

    def _in_replace_scope(self) -> bool:
        return bool(self._replace_scope) and self._replace_scope[-1]

    def _visit_function(self, node: ast.AST) -> None:
        self._replace_scope.append(_contains_os_replace(node))
        self.generic_visit(node)
        self._replace_scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        if self._in_replace_scope():
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = self._extract_mode(node, arg_index=1)
            if mode is not None and _mode_is_write(mode) and node.args:
                if not _target_is_scratch(node.args[0]):
                    self.report(
                        node,
                        f'bare open(..., "{mode}") to a persistent path',
                    )
            return
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "open":
            mode = self._extract_mode(node, arg_index=0)
            if mode is not None and _mode_is_write(mode):
                if not _target_is_scratch(func.value):
                    self.report(
                        node,
                        f'bare .open("{mode}") to a persistent path',
                    )
        elif func.attr in ("write_text", "write_bytes"):
            if not _target_is_scratch(func.value):
                self.report(
                    node,
                    f"bare .{func.attr}(...) to a persistent path",
                )

    @staticmethod
    def _extract_mode(node: ast.Call, arg_index: int) -> str | None:
        """The mode string if statically known; None when absent (read
        mode) or dynamic (give the benefit of the doubt)."""
        candidate: ast.AST | None = None
        if len(node.args) > arg_index:
            candidate = node.args[arg_index]
        else:
            for kw in node.keywords:
                if kw.arg == "mode":
                    candidate = kw.value
                    break
        if candidate is None:
            return None
        if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
            return candidate.value
        return None
