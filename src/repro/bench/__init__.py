"""ReproMPI-like benchmarking of simulated collectives.

Provides the paper's benchmark step (§IV-B): time-budgeted measurement
of every algorithm configuration over a grid of instances, with a
modelled clock-synchronisation error and reproducible noise.
"""

from repro.bench.clock_sync import ClockSync, SyncMethod
from repro.bench.repro_mpi import BenchmarkSpec, Measurement, ReproMPIBenchmark
from repro.bench.runner import DatasetRunner, GridSpec

__all__ = [
    "ClockSync",
    "SyncMethod",
    "BenchmarkSpec",
    "Measurement",
    "ReproMPIBenchmark",
    "DatasetRunner",
    "GridSpec",
]
