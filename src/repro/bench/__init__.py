"""ReproMPI-like benchmarking of simulated collectives.

Provides the paper's benchmark step (§IV-B): time-budgeted measurement
of every algorithm configuration over a grid of instances, with a
modelled clock-synchronisation error and reproducible noise — plus
deterministic fault injection (:mod:`repro.bench.faults`) and the
retry/quarantine machinery that makes campaigns survive it (see
``docs/robustness.md``).
"""

from repro.bench.clock_sync import ClockSync, SyncMethod
from repro.bench.faults import (
    BenchFault,
    ChunkCrash,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
)
from repro.bench.repro_mpi import (
    BenchmarkSpec,
    Measurement,
    ReproMPIBenchmark,
    Summary,
)
from repro.bench.runner import DatasetRunner, GridSpec, QuarantineRecord

__all__ = [
    "ClockSync",
    "SyncMethod",
    "BenchmarkSpec",
    "Measurement",
    "ReproMPIBenchmark",
    "Summary",
    "DatasetRunner",
    "GridSpec",
    "QuarantineRecord",
    "BenchFault",
    "ChunkCrash",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
]
