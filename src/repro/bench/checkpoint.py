"""Campaign checkpoint journal: interrupt a run, resume bit-identically.

A benchmark campaign is a grid of independent (nodes, ppn) chunks, each
deterministically seeded (:func:`repro.utils.rng.stable_seed`). That
makes chunk results *order-independent facts*: once a chunk is measured,
its rows never change. The journal exploits this — every completed
chunk is persisted immediately, and a resumed run replays journalled
chunks from disk and measures only the missing ones. Because the
runner assembles rows in the serial grid order either way, an
interrupted-then-resumed campaign is **bit-identical** to an
uninterrupted one for any ``REPRO_JOBS``.

Durability uses the same tmp + ``os.replace`` pattern as
:meth:`repro.core.dataset.PerfDataset.save`: the journal on disk is
always a complete, parseable JSON document. Floats survive the JSON
round-trip exactly (``json`` serialises via ``repr``, which
round-trips IEEE-754 doubles), so "bit-identical" is literal.

A journal is bound to its campaign by a fingerprint over everything
that determines the measurements (seed, grid, configuration space,
machine, benchmark spec...). A stale journal — different seed,
changed grid — is detected and ignored rather than silently merged.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.obs import get_telemetry

#: journal format version; bump on any layout change
_VERSION = 1

#: one measured chunk: parallel columns (config id, message size, time)
ChunkRows = tuple[list[int], list[int], list[float]]


def campaign_fingerprint(*parts: object) -> str:
    """Stable hex digest over everything that determines a campaign."""
    blob = "\x1f".join(repr(p) for p in parts).encode()
    return hashlib.sha256(blob).hexdigest()


class CampaignJournal:
    """Atomic on-disk journal of completed (nodes, ppn) chunks.

    Thread-safe: campaign workers record chunks concurrently; each
    :meth:`record` rewrites the journal atomically so a kill at any
    instant leaves either the previous or the new complete document.
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: str,
        post_write: "object | None" = None,
    ) -> None:
        """``post_write(path, pair)`` — optional hook invoked after each
        successful :meth:`record` rewrite (still under the journal
        lock). The fault-injection harness uses it to tear the file
        the way a crash mid-write would; production code leaves it
        ``None``.
        """
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.post_write = post_write
        self._lock = threading.Lock()
        self._chunks: dict[tuple[int, int], ChunkRows] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def journal_path(stem: str | Path) -> Path:
        """Journal location for a dataset path stem (next to the .npz)."""
        stem = Path(stem)
        return stem.with_name(stem.name + ".journal.json")

    # ------------------------------------------------------------------
    def load(self) -> int:
        """Read journalled chunks from disk; returns how many were kept.

        A missing file means a fresh campaign. A torn/corrupt file or
        a fingerprint mismatch emits a structured telemetry event
        (``checkpoint_corrupt`` / ``checkpoint_stale``) and starts
        fresh — resuming against the wrong campaign would corrupt the
        dataset, which is strictly worse than re-measuring.
        """
        telemetry = get_telemetry()
        if not self.path.exists():
            return 0
        try:
            payload = json.loads(self.path.read_text())
            if payload.get("version") != _VERSION:
                raise ValueError(f"journal version {payload.get('version')!r}")
            chunks = {
                self._parse_key(key): (
                    [int(v) for v in rows["cid"]],
                    [int(v) for v in rows["msize"]],
                    [float(v) for v in rows["time"]],
                )
                for key, rows in payload["chunks"].items()
            }
        except (ValueError, KeyError, TypeError, OSError) as exc:
            telemetry.event(
                "checkpoint_corrupt", path=str(self.path),
                error=f"{type(exc).__name__}: {exc}",
            )
            return 0
        if payload.get("fingerprint") != self.fingerprint:
            telemetry.event(
                "checkpoint_stale", path=str(self.path),
                expected=self.fingerprint,
                found=payload.get("fingerprint"),
            )
            return 0
        with self._lock:
            self._chunks = chunks
        return len(chunks)

    def record(self, pair: tuple[int, int], rows: ChunkRows) -> None:
        """Persist one completed chunk (atomic rewrite under a lock)."""
        with self._lock:
            self._chunks[pair] = rows
            self._write_locked()
            if self.post_write is not None:
                self.post_write(self.path, pair)  # type: ignore[operator]

    def get(self, pair: tuple[int, int]) -> ChunkRows | None:
        """Journalled rows of a chunk, or None if not yet measured."""
        with self._lock:
            return self._chunks.get(pair)

    def completed_pairs(self) -> set[tuple[int, int]]:
        with self._lock:
            return set(self._chunks)

    def discard(self) -> None:
        """Remove the journal (the campaign completed; dataset saved)."""
        with self._lock:
            self._chunks.clear()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_key(key: str) -> tuple[int, int]:
        n, ppn = key.split(",")
        return int(n), int(ppn)

    def _write_locked(self) -> None:
        """Atomic tmp + ``os.replace`` rewrite; caller holds the lock."""
        payload = {
            "version": _VERSION,
            "fingerprint": self.fingerprint,
            "chunks": {
                f"{n},{ppn}": {"cid": cid, "msize": msize, "time": time}
                for (n, ppn), (cid, msize, time) in sorted(self._chunks.items())
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, self.path)
        finally:
            if tmp.exists():  # failed write: leave no droppings
                tmp.unlink()
