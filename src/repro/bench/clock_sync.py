"""Clock-synchronisation error model.

ReproMPI's distinguishing feature (Hunold & Carpen-Amarie, TPDS'16;
CLUSTER'18) is measuring collectives under a *time-window* scheme with
globally synchronised clocks instead of per-rank stopwatches around a
barrier. We model the consequence rather than the protocol: each
measurement carries an additive error whose magnitude depends on the
synchronisation method.

* ``HIERARCHICAL`` — the CLUSTER'18 hierarchical scheme: intra-node
  clocks are read directly, only one offset estimation per node pair;
  residual error ~ a fraction of the fabric latency.
* ``HCA`` — classic linear-regression offset estimation per rank.
* ``BARRIER`` — no clock sync; an ``MPI_Barrier`` brackets the
  measurement and its own exit skew pollutes the observation (this is
  what most benchmark suites do, and why their small-message numbers
  are noisy).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.utils.rng import SeedLike, as_generator


class SyncMethod(str, enum.Enum):
    HIERARCHICAL = "hierarchical"
    HCA = "hca"
    BARRIER = "barrier"


#: residual error, as a multiple of the machine's inter-node latency
_ERROR_SCALE: dict[SyncMethod, float] = {
    SyncMethod.HIERARCHICAL: 0.05,
    SyncMethod.HCA: 0.25,
    SyncMethod.BARRIER: 1.0,
}


@dataclass(frozen=True)
class ClockSync:
    """Synchronisation scheme used when measuring one collective run."""

    method: SyncMethod = SyncMethod.HIERARCHICAL

    def error_scale(self, machine: MachineModel, topo: Topology) -> float:
        """Standard deviation of the additive measurement error (seconds).

        Barrier-based schemes degrade with the communicator size (the
        exit skew of a barrier grows ~log p); clock-based schemes do
        not.
        """
        base = _ERROR_SCALE[self.method] * machine.alpha_inter
        if self.method == SyncMethod.BARRIER:
            return base * max(1.0, np.log2(max(topo.size, 2)))
        return base

    def sample_errors(
        self,
        machine: MachineModel,
        topo: Topology,
        n: int,
        rng: SeedLike,
    ) -> np.ndarray:
        """Draw ``n`` additive measurement errors (always >= 0).

        Sync error can only *inflate* an observed duration: the window
        start is conservative and skew adds to the max over ranks.
        """
        gen = as_generator(rng)
        scale = self.error_scale(machine, topo)
        return np.abs(gen.normal(0.0, scale, size=n))
