"""Benchmark campaign runner: grids of instances -> PerfDataset.

One campaign measures every configuration of a library's tuning space
on every instance of a (nodes x ppn x message-size) grid — the paper's
benchmark step producing datasets d1-d8 (Table II).

Reproducibility: every (configuration, instance) measurement gets its
own RNG stream derived from the campaign seed and the sample key, so
datasets are bit-identical regardless of iteration order or of which
other datasets were generated in the same process.

Observability: campaigns emit hierarchical spans
(``campaign/<name>`` -> ``campaign/<name>/n=<n>/ppn=<ppn>`` per chunk)
with samples/sec and worker-utilization payloads, plus
``campaign.samples`` / ``campaign.chunks`` counters, into
:mod:`repro.obs`. Checkpointing journals every completed chunk
(:mod:`repro.bench.checkpoint`) so an interrupted campaign resumes
bit-identically.

Robustness (PR 3): campaigns survive injected faults
(:mod:`repro.bench.faults`). Transiently invalid measurements (too few
finite observations) and crashed chunks are retried under a bounded
exponential-backoff :class:`~repro.bench.faults.RetryPolicy`;
persistently failing sites are **quarantined** — recorded in
``DatasetRunner.quarantine_``, skipped in the dataset, and reported
through ``bench.retry`` / ``bench.quarantine`` counters and
``bench_retry`` / ``bench_quarantine`` events. A per-chunk deadline
(on *simulated* benchmark time, so determinism is preserved) bounds
how long one pathological chunk may consume.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.bench.checkpoint import CampaignJournal, campaign_fingerprint
from repro.bench.faults import ChunkCrash, FaultInjector, FaultSpec, RetryPolicy
from repro.bench.repro_mpi import BenchmarkSpec, ReproMPIBenchmark
from repro.collectives.base import CollectiveKind
from repro.collectives.registry import algorithm_from_config
from repro.core.dataset import PerfDataset
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary
from repro.obs import get_telemetry
from repro.utils.parallel import ProgressCounter, parallel_map, resolve_jobs
from repro.utils.rng import stable_seed

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class GridSpec:
    """The instance grid of one campaign."""

    nodes: tuple[int, ...]
    ppns: tuple[int, ...]
    msizes: tuple[int, ...]

    def __post_init__(self) -> None:
        # nodes/ppns are process counts (a 0-node or 0-rank column is
        # meaningless and used to slip through); a 0-byte message is a
        # legitimate collective invocation, so msizes only needs >= 0.
        for field_name, floor in (("nodes", 1), ("ppns", 1), ("msizes", 0)):
            values = getattr(self, field_name)
            if not values:
                raise ValueError(
                    f"GridSpec.{field_name} must be non-empty, got {values!r}"
                )
            bad = [v for v in values if v < floor]
            if bad:
                raise ValueError(
                    f"GridSpec.{field_name} values must be >= {floor}; "
                    f"offending value(s) {bad!r} in {field_name}={values!r}"
                )

    @property
    def num_instances(self) -> int:
        return len(self.nodes) * len(self.ppns) * len(self.msizes)


@dataclass(frozen=True)
class QuarantineRecord:
    """One persistently failing measurement site the campaign skipped."""

    #: ``"sample"`` (one config x instance), ``"chunk"`` (whole
    #: (nodes, ppn) column) or ``"deadline"`` (chunk budget exhausted)
    kind: str
    config: str  #: configuration label ("" for whole-chunk records)
    nodes: int
    ppn: int
    msize: int  #: -1 for whole-chunk records
    reason: str
    attempts: int


class DatasetRunner:
    """Runs benchmark campaigns for one machine + library.

    ``faults`` enables deterministic fault injection
    (:class:`~repro.bench.faults.FaultSpec`); ``retry`` bounds the
    retry-with-backoff loop handling transient faults. After
    :meth:`run`, ``quarantine_`` lists every site that was skipped
    after exhausting its retries (sorted, so the list is identical for
    any ``REPRO_JOBS``).
    """

    def __init__(
        self,
        machine: MachineModel,
        library: MPILibrary,
        spec: BenchmarkSpec | None = None,
        seed: int = 0,
        *,
        faults: FaultSpec | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.machine = machine
        self.library = library
        self.benchmark = ReproMPIBenchmark(machine, spec)
        self.seed = seed
        self.faults = faults
        self.retry = retry or RetryPolicy()
        self.quarantine_: list[QuarantineRecord] = []

    def run(
        self,
        collective: CollectiveKind | str,
        grid: GridSpec,
        *,
        name: str = "",
        exclude_algids: tuple[int, ...] = (),
        progress: Callable[[int, int], None] | None = None,
        n_jobs: int | None = None,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        chunk_deadline_s: float | None = None,
    ) -> PerfDataset:
        """Benchmark the full tuning space over the grid.

        ``exclude_algids`` drops whole algorithm ids (e.g. the broken
        broadcast 8 of Open MPI 4.0.2 that the paper excluded from d1).
        Unsupported (config, instance) pairs are skipped, exactly as a
        real campaign would skip runs that abort.

        ``n_jobs`` (default: the ``REPRO_JOBS`` environment variable,
        else serial) spreads the grid's (nodes, ppn) columns over a
        thread pool. The dataset is bit-identical for any worker
        count: every sample draws from its own RNG stream keyed by
        :func:`~repro.utils.rng.stable_seed`, and the result rows are
        assembled in the serial loop's nested order. ``progress`` is
        relayed through a lock so ``done`` is monotone even when
        chunks finish out of order.

        ``checkpoint`` (a dataset path stem) journals every completed
        (nodes, ppn) chunk next to the dataset; with ``resume=True``
        journalled chunks are replayed from disk instead of being
        re-measured, making an interrupted-then-resumed campaign
        bit-identical to an uninterrupted one. A journal whose
        fingerprint does not match this campaign (different seed,
        grid, library, **fault spec**...) is ignored, with a
        ``checkpoint_stale`` telemetry event.

        ``chunk_deadline_s`` caps the *simulated* benchmark seconds one
        (nodes, ppn) chunk may spend; once exceeded, the chunk's
        remaining samples are quarantined (kind ``"deadline"``). The
        cap is on simulated — not wall — time so the outcome stays a
        pure function of the campaign seed.
        """
        kind = CollectiveKind(collective)
        space = self.library.config_space(kind)
        configs = tuple(
            c for c in space.configs if c.algid not in exclude_algids
        )
        algos = [algorithm_from_config(c) for c in configs]
        machine = self.machine
        telemetry = get_telemetry()
        injector = FaultInjector(self.faults) if self.faults is not None else None
        policy = self.retry
        self.quarantine_ = []
        quarantine: list[QuarantineRecord] = []
        quarantine_lock = threading.Lock()

        # One work chunk per (nodes, ppn) pair, in the serial order.
        pairs = [(n, ppn) for n in grid.nodes for ppn in grid.ppns]
        for n, ppn in pairs:
            machine.validate_shape(n, ppn)

        journal = self._open_journal(
            checkpoint, resume, kind, grid, name, exclude_algids,
            chunk_deadline_s, injector,
        )
        done_pairs = journal.completed_pairs() if journal is not None else set()

        total = len(configs) * grid.num_instances
        counter = ProgressCounter(total, progress)
        remaining = {n: len(grid.ppns) for n in grid.nodes}
        log_lock = threading.Lock()
        campaign_span_name = f"campaign/{name or str(kind)}"
        jobs = resolve_jobs(n_jobs)
        busy = ProgressCounter(0)  # wall-seconds spent inside chunks (x1e6)

        def quarantine_site(record: QuarantineRecord) -> None:
            with quarantine_lock:
                quarantine.append(record)
            telemetry.add("bench.quarantine")
            telemetry.event(
                "bench_quarantine", campaign=name or str(kind),
                kind=record.kind, config=record.config,
                nodes=record.nodes, ppn=record.ppn, msize=record.msize,
                reason=record.reason, attempts=record.attempts,
            )

        def measure_sample(
            algo, topo: Topology, n: int, ppn: int, m: int
        ):
            """One sample with bounded retry; None -> quarantined."""
            label = algo.config.label
            rng_seed = stable_seed(self.seed, name, label, n, ppn, m)
            for attempt in range(policy.max_attempts):
                measurement = self.benchmark.measure(
                    algo, topo, m,
                    rng=np.random.default_rng(rng_seed),
                    injector=injector,
                    fault_key=(name, label, n, ppn, m, attempt),
                )
                if measurement.ok:
                    return measurement
                telemetry.add("bench.retry")
                telemetry.event(
                    "bench_retry", campaign=name or str(kind), scope="sample",
                    config=label, nodes=n, ppn=ppn, msize=m,
                    attempt=attempt + 1,
                    valid_nreps=measurement.valid_nreps,
                    backoff_s=policy.backoff(attempt),
                )
                policy.wait(attempt)
            quarantine_site(QuarantineRecord(
                kind="sample", config=label, nodes=n, ppn=ppn, msize=m,
                reason="min_valid_nreps not reached",
                attempts=policy.max_attempts,
            ))
            return None

        def measure_chunk(
            pair: tuple[int, int], attempt: int
        ) -> tuple[list[int], list[int], list[float]]:
            """Measure one (nodes, ppn) chunk; may raise ChunkCrash."""
            n, ppn = pair
            if injector is not None and injector.chunk_crashes(pair, attempt):
                raise ChunkCrash(f"injected crash of chunk n={n} ppn={ppn}")
            topo = Topology(n, ppn)
            part_cid: list[int] = []
            part_msize: list[int] = []
            part_time: list[float] = []
            spent = 0.0
            deadline_hit = False
            skipped = 0
            for m in grid.msizes:
                for cid, algo in enumerate(algos):
                    if not algo.supported(topo, m):
                        continue
                    if deadline_hit:
                        skipped += 1
                        continue
                    measurement = measure_sample(algo, topo, n, ppn, m)
                    if measurement is None:
                        continue
                    part_cid.append(cid)
                    part_msize.append(m)
                    part_time.append(measurement.time)
                    # Simulated benchmark spend of the accepted series:
                    # a pure function of the campaign seed, so the
                    # deadline cut is deterministic for any REPRO_JOBS.
                    spent += measurement.spent
                    if (
                        chunk_deadline_s is not None
                        and spent > chunk_deadline_s
                    ):
                        deadline_hit = True
            if deadline_hit:
                telemetry.add("bench.deadline_exceeded")
                telemetry.add("bench.deadline_skipped", skipped)
                quarantine_site(QuarantineRecord(
                    kind="deadline", config="", nodes=n, ppn=ppn, msize=-1,
                    reason=(
                        f"chunk exceeded {chunk_deadline_s}s simulated "
                        f"budget; {skipped} sample(s) skipped"
                    ),
                    attempts=attempt + 1,
                ))
            return part_cid, part_msize, part_time

        def run_pair(
            pair: tuple[int, int]
        ) -> tuple[list[int], list[int], list[float]]:
            n, ppn = pair
            if pair in done_pairs:
                cached = journal.get(pair)  # type: ignore[union-attr]
                assert cached is not None
                counter.advance(len(algos) * len(grid.msizes))
                telemetry.add("campaign.chunks_resumed")
                return cached
            with telemetry.span(
                f"{campaign_span_name}/n={n}/ppn={ppn}", absolute=True
            ) as chunk_span:
                parts = None
                for attempt in range(policy.max_attempts):
                    try:
                        parts = measure_chunk(pair, attempt)
                        break
                    except ChunkCrash as crash:
                        telemetry.add("bench.retry")
                        telemetry.event(
                            "bench_retry", campaign=name or str(kind),
                            scope="chunk", nodes=n, ppn=ppn,
                            attempt=attempt + 1, error=str(crash),
                            backoff_s=policy.backoff(attempt),
                        )
                        policy.wait(attempt)
                if parts is None:  # every attempt crashed
                    quarantine_site(QuarantineRecord(
                        kind="chunk", config="", nodes=n, ppn=ppn, msize=-1,
                        reason="chunk crashed on every attempt",
                        attempts=policy.max_attempts,
                    ))
                    parts = ([], [], [])
                part_cid, part_msize, part_time = parts
                chunk_span.annotate(
                    nodes=n, ppn=ppn, samples=len(part_cid),
                    samples_per_s=(
                        len(part_cid) / chunk_span.elapsed
                        if chunk_span.elapsed > 0 else 0.0
                    ),
                )
                busy.advance(int(chunk_span.elapsed * 1e6))
            telemetry.add("campaign.samples", len(part_cid))
            telemetry.add("campaign.chunks")
            if journal is not None:
                journal.record(pair, parts)
            # Progress (and any exception the callback raises, e.g. a
            # user interrupt) comes strictly AFTER the journal write, so
            # an interrupted campaign always keeps its finished chunks.
            counter.advance(len(algos) * len(grid.msizes))
            with log_lock:
                remaining[n] -= 1
                if remaining[n] == 0:
                    logger.info(
                        "%s: finished %d-node column (%d/%d samples)",
                        name or str(kind), n, counter.done, total,
                    )
            return parts

        with telemetry.span(
            campaign_span_name,
            collective=str(kind), machine=machine.name,
            library=self.library.name, jobs=jobs,
            chunks=len(pairs), chunks_resumed=len(done_pairs),
            faults=self.faults is not None,
        ) as campaign_span:
            parts = parallel_map(run_pair, pairs, n_jobs=n_jobs)
            wall = campaign_span.elapsed
            n_samples = sum(len(p[0]) for p in parts)
            campaign_span.annotate(
                samples=n_samples,
                samples_per_s=n_samples / wall if wall > 0 else 0.0,
                utilization=(
                    (busy.done / 1e6) / (wall * jobs) if wall > 0 else 0.0
                ),
                quarantined=len(quarantine),
            )

        if journal is not None:
            journal.discard()  # campaign complete: journal is spent

        # Deterministic order for any worker count.
        self.quarantine_ = sorted(
            quarantine,
            key=lambda r: (r.nodes, r.ppn, r.msize, r.config, r.kind),
        )

        cols_cid: list[int] = []
        cols_nodes: list[int] = []
        cols_ppn: list[int] = []
        cols_msize: list[int] = []
        cols_time: list[float] = []
        for (n, ppn), (part_cid, part_msize, part_time) in zip(
            pairs, parts, strict=True
        ):
            cols_cid.extend(part_cid)
            cols_nodes.extend([n] * len(part_cid))
            cols_ppn.extend([ppn] * len(part_cid))
            cols_msize.extend(part_msize)
            cols_time.extend(part_time)

        return PerfDataset(
            name=name or f"{self.library.name}-{kind}-{machine.name}",
            collective=kind,
            library=f"{self.library.name} {self.library.version}",
            machine=machine.name,
            configs=configs,
            config_id=np.asarray(cols_cid, dtype=np.int64),
            nodes=np.asarray(cols_nodes, dtype=np.int64),
            ppn=np.asarray(cols_ppn, dtype=np.int64),
            msize=np.asarray(cols_msize, dtype=np.int64),
            time=np.asarray(cols_time, dtype=float),
        )

    # ------------------------------------------------------------------
    def _open_journal(
        self,
        checkpoint: str | Path | None,
        resume: bool,
        kind: CollectiveKind,
        grid: GridSpec,
        name: str,
        exclude_algids: tuple[int, ...],
        chunk_deadline_s: float | None,
        injector: FaultInjector | None,
    ) -> CampaignJournal | None:
        """Build (and optionally load) the chunk journal for this run."""
        if checkpoint is None:
            return None
        fingerprint = campaign_fingerprint(
            "campaign-v1", self.seed, name, str(kind),
            grid.nodes, grid.ppns, grid.msizes,
            tuple(sorted(exclude_algids)),
            self.library.name, self.library.version, self.machine.name,
            self.benchmark.spec,
            # Everything below changes the measured rows, so it binds
            # the journal too (a journal from a fault-free run must
            # never be merged into a faulty one, and vice versa).
            self.faults, self.retry.max_attempts, chunk_deadline_s,
        )
        post_write = None
        if injector is not None:
            def post_write(path: Path, pair: tuple[int, int]) -> None:
                if injector.corrupts_journal(pair):
                    get_telemetry().event(
                        "fault_journal_torn", path=str(path),
                        nodes=pair[0], ppn=pair[1],
                    )
                    injector.tear_journal(path, pair)
        journal = CampaignJournal(
            CampaignJournal.journal_path(checkpoint), fingerprint,
            post_write=post_write,
        )
        if resume:
            kept = journal.load()
            if kept:
                get_telemetry().event(
                    "campaign_resume", name=name or str(kind),
                    chunks_resumed=kept, journal=str(journal.path),
                )
                logger.info(
                    "%s: resuming with %d journalled chunk(s) from %s",
                    name or str(kind), kept, journal.path,
                )
        return journal
