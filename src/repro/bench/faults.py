"""Deterministic fault injection for benchmark campaigns.

Real measurement campaigns are not clean: nodes straggle, the OS
preempts ranks mid-collective, individual timings come back as garbage,
whole ``mpirun`` invocations die, and a checkpoint file written during
a crash can be torn. The paper's pipeline (benchmark -> train ->
select) silently learns from whatever the campaign produced, so every
one of those faults either poisons the models or kills the run.

This module makes those faults *first-class, reproducible inputs*:

* :class:`FaultSpec` — declarative fault model (probabilities and
  magnitudes for each fault class), hashable so it participates in the
  campaign checkpoint fingerprint.
* :class:`FaultInjector` — draws every fault decision from its own RNG
  stream keyed by :func:`~repro.utils.rng.stable_seed` over the
  *sample identity* (config label, nodes, ppn, msize, attempt) — never
  from the measurement RNG. Two consequences:

  1. replays are **bit-identical**: the same seed produces the same
     faults in the same places for any ``REPRO_JOBS``, before or after
     a resume;
  2. samples the injector leaves untouched are bit-identical to a
     fault-free campaign, which is what lets the chaos tests compare a
     faulty run against its fault-free oracle cell by cell.

Fault taxonomy (see ``docs/robustness.md``):

====================  ============================================
fault                 model
====================  ============================================
straggler spike       one observation multiplied by ``1 + Pareto``
                      (heavy tail, models a slow node / retransmit)
OS-jitter burst       a contiguous run of observations inflated by
                      a uniform factor (daemon wakeup, page purge)
transient obs fail    a fraction of observations become ``NaN``
                      (timer failure, dropped measurement)
chunk crash           :class:`ChunkCrash` raised at chunk start
                      (the whole ``mpirun`` died)
journal corruption    the on-disk chunk journal is torn after a
                      write (crash mid-``write``)
====================  ============================================

The *handling* of these faults (retry, quarantine, robust summaries)
lives in :mod:`repro.bench.repro_mpi` and
:mod:`repro.bench.runner`; this module only decides *what breaks,
where, deterministically*.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.utils.rng import stable_seed

__all__ = [
    "BenchFault",
    "ChunkCrash",
    "FaultSpec",
    "FaultReport",
    "FaultInjector",
    "RetryPolicy",
]


class BenchFault(RuntimeError):
    """Base class of injected benchmark faults."""


class ChunkCrash(BenchFault):
    """An injected whole-chunk failure (the simulated mpirun died).

    Raised inside the campaign worker; the runner's bounded
    retry-with-backoff loop is the only intended handler. A subclass
    of :class:`BenchFault` only — never of ``KeyboardInterrupt`` — so
    a real ctrl-C is never swallowed by the retry loop.
    """


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault model for one campaign.

    ``rate`` is the master knob: any per-fault probability left at
    ``None`` inherits it. All probabilities are per *drawing site*
    (per measurement series for observation faults, per chunk attempt
    for crashes, per journal write for corruption).
    """

    #: master fault probability; per-fault knobs default to this
    rate: float = 0.05
    #: random seed of the fault streams (independent of the campaign seed)
    seed: int = 0

    # -- straggler spikes (heavy tail) --------------------------------
    straggler_prob: float | None = None
    #: Pareto tail index of the spike magnitude (smaller = heavier)
    straggler_shape: float = 1.5
    #: multiplier scale applied on top of the Pareto draw
    straggler_scale: float = 4.0

    # -- OS-jitter bursts ---------------------------------------------
    jitter_prob: float | None = None
    #: fraction of the series inflated when a burst fires
    jitter_frac: float = 0.25
    #: max multiplicative inflation of burst observations
    jitter_scale: float = 2.0

    # -- transient failed observations (NaN timings) ------------------
    obs_fail_prob: float | None = None
    #: fraction of observations lost when a failure fires
    obs_fail_frac: float = 0.6

    # -- whole-chunk crashes ------------------------------------------
    chunk_crash_prob: float | None = None

    # -- checkpoint-journal corruption --------------------------------
    journal_corrupt_prob: float | None = None

    def __post_init__(self) -> None:
        for name in (
            "rate", "straggler_prob", "jitter_prob", "obs_fail_prob",
            "chunk_crash_prob", "journal_corrupt_prob",
            "jitter_frac", "obs_fail_frac",
        ):
            value = getattr(self, name)
            if value is not None and not (0.0 <= value <= 1.0):
                raise ValueError(f"FaultSpec.{name} must be in [0, 1], got {value}")
        if self.straggler_shape <= 0:
            raise ValueError("straggler_shape must be > 0")
        if self.straggler_scale < 0 or self.jitter_scale < 0:
            raise ValueError("fault magnitude scales must be >= 0")

    # convenience resolved probabilities ------------------------------
    def p(self, name: str) -> float:
        value = getattr(self, f"{name}_prob")
        return self.rate if value is None else value

    @staticmethod
    def uniform(rate: float, seed: int = 0) -> "FaultSpec":
        """All fault classes at the same ``rate`` (chaos-test helper)."""
        return FaultSpec(rate=rate, seed=seed)


@dataclass(frozen=True)
class FaultReport:
    """What the injector did to one measurement series."""

    stragglers: int = 0
    jitter_hits: int = 0
    failed_obs: int = 0

    @property
    def any(self) -> bool:
        return bool(self.stragglers or self.jitter_hits or self.failed_obs)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient faults.

    ``sleep`` is injectable so tests (and the simulated campaign,
    whose time axis is virtual anyway) never actually block; the
    default backoff is deliberately tiny because injected faults are
    simulated, not physical.
    """

    max_attempts: int = 3
    backoff_s: float = 0.001
    backoff_factor: float = 2.0
    sleep: object = None  # Callable[[float], None]; None = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("invalid backoff parameters")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        return self.backoff_s * self.backoff_factor**attempt

    def wait(self, attempt: int) -> None:
        delay = self.backoff(attempt)
        if delay <= 0:
            return
        if self.sleep is not None:
            self.sleep(delay)  # type: ignore[operator]
        else:  # pragma: no cover - wall-clock sleep, trivially correct
            import time

            time.sleep(delay)


class FaultInjector:
    """Draws deterministic fault decisions from a :class:`FaultSpec`.

    Every decision uses a private generator keyed by the *site*
    identity, so fault placement is a pure function of
    ``(spec.seed, site key)`` — independent of thread scheduling,
    iteration order, other faults, and the measurement RNG streams.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def _rng(self, *key: object) -> np.random.Generator:
        return np.random.default_rng(stable_seed(self.spec.seed, "fault", *key))

    # ------------------------------------------------------------------
    def perturb(
        self, series: np.ndarray, *key: object
    ) -> tuple[np.ndarray, FaultReport]:
        """Apply observation-level faults to one measurement series.

        ``key`` identifies the measurement site — conventionally
        ``(campaign name, config label, nodes, ppn, msize, attempt)``.
        Returns the (possibly) perturbed copy plus a
        :class:`FaultReport`; when no fault fires the input array is
        returned unchanged (same object), keeping the clean path
        allocation-free and bit-identical to a fault-free run.
        """
        spec = self.spec
        gen = self._rng("series", *key)
        # One uniform draw per fault class, always in the same order,
        # so the stream layout is stable across spec changes.
        fire_straggler = gen.random() < spec.p("straggler")
        fire_jitter = gen.random() < spec.p("jitter")
        fire_fail = gen.random() < spec.p("obs_fail")
        if not (fire_straggler or fire_jitter or fire_fail):
            return series, FaultReport()

        out = np.array(series, dtype=float, copy=True)
        n = len(out)
        stragglers = jitter_hits = failed = 0
        if fire_straggler and n:
            idx = int(gen.integers(0, n))
            magnitude = 1.0 + spec.straggler_scale * (
                gen.pareto(spec.straggler_shape) + 1.0
            )
            out[idx] *= magnitude
            stragglers = 1
        if fire_jitter and n:
            burst = max(1, int(round(spec.jitter_frac * n)))
            start = int(gen.integers(0, max(1, n - burst + 1)))
            factor = 1.0 + gen.random() * spec.jitter_scale
            out[start : start + burst] *= factor
            jitter_hits = burst
        if fire_fail and n:
            lost = max(1, int(round(spec.obs_fail_frac * n)))
            idx = gen.choice(n, size=min(lost, n), replace=False)
            out[idx] = np.nan
            failed = len(idx)
        return out, FaultReport(
            stragglers=stragglers, jitter_hits=jitter_hits, failed_obs=failed
        )

    # ------------------------------------------------------------------
    def chunk_crashes(self, pair: tuple[int, int], attempt: int) -> bool:
        """Whether the chunk ``pair`` crashes on retry ``attempt``."""
        gen = self._rng("chunk", pair, attempt)
        return bool(gen.random() < self.spec.p("chunk_crash"))

    # ------------------------------------------------------------------
    def corrupts_journal(self, pair: tuple[int, int]) -> bool:
        """Whether the journal write after chunk ``pair`` is torn.

        Keyed by the chunk, not by write order, so the decision is
        identical for any worker count.
        """
        gen = self._rng("journal", pair)
        return bool(gen.random() < self.spec.p("journal_corrupt"))

    def tear_journal(self, path: str | Path, pair: tuple[int, int]) -> None:
        """Tear the journal file (simulated crash mid-write).

        Truncates a seeded number of trailing bytes, leaving an
        unparseable document — exactly the artefact a power loss
        between ``write`` and ``fsync`` leaves behind. The journal
        reader must treat it as absent (``checkpoint_corrupt``), never
        crash, and never half-trust it.
        """
        path = Path(path)
        try:
            size = path.stat().st_size
        except OSError:  # pragma: no cover - journal vanished
            return
        if size <= 1:
            return
        gen = self._rng("journal-bytes", pair)
        keep = int(gen.integers(1, size))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
