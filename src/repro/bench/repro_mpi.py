"""Time-budgeted measurement of one algorithm configuration.

Mirrors how the paper configures ReproMPI (§V): each (configuration,
instance) pair is measured for *at most* ``max_nreps`` observations or
``max_seconds`` of simulated benchmark time, whichever is hit first.
That bound is what makes the total training time predictable — the
paper's requirement #1 — because a slow algorithm (e.g. linear alltoall
on 1152 ranks) simply gets fewer repetitions instead of stalling the
whole campaign.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.bench.clock_sync import ClockSync
from repro.collectives.base import CollectiveAlgorithm
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.utils.rng import SeedLike, as_generator


class Summary(str, enum.Enum):
    """Statistic reported for a measurement series."""

    MEDIAN = "median"
    MEAN = "mean"
    MIN = "min"

    def apply(self, values: np.ndarray) -> float:
        if self is Summary.MEDIAN:
            return float(np.median(values))
        if self is Summary.MEAN:
            return float(np.mean(values))
        return float(np.min(values))


@dataclass(frozen=True)
class BenchmarkSpec:
    """Measurement policy (ReproMPI command-line equivalents)."""

    #: stop after this many observations ...
    max_nreps: int = 500
    #: ... or once this much simulated time was spent, whichever first
    max_seconds: float = 1.0
    #: statistic reported per series
    summary: Summary = Summary.MEDIAN
    #: clock-synchronisation scheme in effect
    sync: ClockSync = field(default_factory=ClockSync)
    #: run on the exact engine instead of the fast cost model
    exact: bool = False

    def __post_init__(self) -> None:
        if self.max_nreps < 1:
            raise ValueError("max_nreps must be >= 1")
        if self.max_seconds <= 0:
            raise ValueError("max_seconds must be > 0")


@dataclass(frozen=True)
class Measurement:
    """Result of measuring one configuration on one instance."""

    time: float  # the reported summary statistic (seconds)
    nreps: int  # observations actually taken
    spent: float  # simulated benchmark time consumed
    observations: np.ndarray  # raw noisy series

    @property
    def truncated(self) -> bool:
        """Whether the time budget cut the series short."""
        return len(self.observations) == self.nreps and self.spent > 0 and (
            self.nreps < 500
        )


class ReproMPIBenchmark:
    """Measures collective algorithms under a benchmark spec."""

    def __init__(self, machine: MachineModel, spec: BenchmarkSpec | None = None):
        self.machine = machine
        self.spec = spec or BenchmarkSpec()

    def measure(
        self,
        algo: CollectiveAlgorithm,
        topo: Topology,
        nbytes: int,
        rng: SeedLike = None,
    ) -> Measurement:
        """Measure one (configuration, instance) pair.

        The deterministic base cost is evaluated once; observations are
        the base cost under the machine's multiplicative noise model
        plus the clock-sync error. With ``spec.exact`` the base cost
        comes from a run of the exact engine instead (slow; meant for
        validation studies).
        """
        gen = as_generator(rng)
        spec = self.spec
        if spec.exact:
            base = algo.run_exact(self.machine, topo, nbytes, verify=False).makespan
        else:
            base = algo.base_time(self.machine, topo, nbytes)
        if base < 0:
            raise ValueError(f"negative base time from {algo.config.label}")

        # Draw up to max_nreps observations, then truncate to the
        # prefix that fits in the simulated time budget (equivalent to
        # sampling one by one, but vectorised).
        n = spec.max_nreps
        noisy = self.machine.noise.sample(np.full(n, base), gen)
        noisy += spec.sync.sample_errors(self.machine, topo, n, gen)
        cumulative = np.cumsum(noisy)
        fits = int(np.searchsorted(cumulative, spec.max_seconds) + 1)
        nreps = max(1, min(n, fits))
        series = noisy[:nreps]
        return Measurement(
            time=spec.summary.apply(series),
            nreps=nreps,
            spent=float(cumulative[nreps - 1]),
            observations=series,
        )
