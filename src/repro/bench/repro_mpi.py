"""Time-budgeted measurement of one algorithm configuration.

Mirrors how the paper configures ReproMPI (§V): each (configuration,
instance) pair is measured for *at most* ``max_nreps`` observations or
``max_seconds`` of simulated benchmark time, whichever is hit first.
That bound is what makes the total training time predictable — the
paper's requirement #1 — because a slow algorithm (e.g. linear alltoall
on 1152 ranks) simply gets fewer repetitions instead of stalling the
whole campaign.

Robustness (PR 3): besides the paper's median/mean/min statistics,
:class:`Summary` provides outlier-hardened variants —
``MAD_MEDIAN`` (median after rejecting observations beyond
``3.5 x MAD``) and ``WINSORIZED_MEAN`` (mean after clipping to the
5th/95th percentiles). Measurements track how many observations were
valid (finite) against the spec's ``min_valid_nreps`` floor, so the
campaign runner can retry or quarantine series that injected faults
(:mod:`repro.bench.faults`) rendered unusable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.bench.clock_sync import ClockSync
from repro.bench.faults import FaultInjector, FaultReport
from repro.collectives.base import CollectiveAlgorithm
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.obs import get_telemetry
from repro.utils.rng import SeedLike, as_generator

#: MAD rejection threshold (scaled MAD units; 3.5 is the usual choice)
MAD_K = 3.5
#: consistency constant making MAD comparable to a standard deviation
MAD_SCALE = 1.4826
#: winsorisation tail mass per side
WINSOR_TAIL = 0.05


def mad_outlier_mask(values: np.ndarray, k: float = MAD_K) -> np.ndarray:
    """Boolean mask of observations *rejected* by the MAD criterion.

    An observation is an outlier when its absolute deviation from the
    median exceeds ``k`` scaled-MAD units. Degenerate series (MAD of
    zero, e.g. constant timings) reject nothing rather than everything:
    the threshold floor is a relative epsilon of the median.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return np.zeros(0, dtype=bool)
    med = float(np.median(values))
    mad = float(np.median(np.abs(values - med))) * MAD_SCALE
    threshold = k * max(mad, abs(med) * 1e-9, 1e-30)
    return np.abs(values - med) > threshold


class Summary(str, enum.Enum):
    """Statistic reported for a measurement series.

    ``MEDIAN``/``MEAN``/``MIN`` are the paper's statistics;
    ``MAD_MEDIAN`` and ``WINSORIZED_MEAN`` are the robust variants the
    fault-injection harness validates (a single straggler spike has
    bounded influence on both — see ``tests/bench/test_faults.py``).
    """

    MEDIAN = "median"
    MEAN = "mean"
    MIN = "min"
    MAD_MEDIAN = "mad_median"
    WINSORIZED_MEAN = "winsorized_mean"

    def apply(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return float("nan")
        if self is Summary.MEDIAN:
            return float(np.median(values))
        if self is Summary.MEAN:
            return float(np.mean(values))
        if self is Summary.MIN:
            return float(np.min(values))
        if self is Summary.MAD_MEDIAN:
            kept = values[~mad_outlier_mask(values)]
            return float(np.median(kept)) if kept.size else float(np.median(values))
        # WINSORIZED_MEAN
        lo, hi = np.quantile(values, (WINSOR_TAIL, 1.0 - WINSOR_TAIL))
        return float(np.mean(np.clip(values, lo, hi)))

    @property
    def robust(self) -> bool:
        """Whether this statistic has bounded sensitivity to outliers."""
        return self in (Summary.MAD_MEDIAN, Summary.WINSORIZED_MEAN)


@dataclass(frozen=True)
class BenchmarkSpec:
    """Measurement policy (ReproMPI command-line equivalents)."""

    #: stop after this many observations ...
    max_nreps: int = 500
    #: ... or once this much simulated time was spent, whichever first
    max_seconds: float = 1.0
    #: statistic reported per series
    summary: Summary = Summary.MEDIAN
    #: clock-synchronisation scheme in effect
    sync: ClockSync = field(default_factory=ClockSync)
    #: run on the exact engine instead of the fast cost model
    exact: bool = False
    #: a series with fewer finite observations than this is invalid
    #: (``Measurement.ok`` False -> the runner retries / quarantines)
    min_valid_nreps: int = 1

    def __post_init__(self) -> None:
        if self.max_nreps < 1:
            raise ValueError("max_nreps must be >= 1")
        if self.max_seconds <= 0:
            raise ValueError("max_seconds must be > 0")
        if not (1 <= self.min_valid_nreps <= self.max_nreps):
            raise ValueError(
                "min_valid_nreps must be in [1, max_nreps], got "
                f"{self.min_valid_nreps} (max_nreps={self.max_nreps})"
            )


@dataclass(frozen=True)
class Measurement:
    """Result of measuring one configuration on one instance."""

    time: float  # the reported summary statistic (seconds); NaN if invalid
    nreps: int  # observations actually taken
    spent: float  # simulated benchmark time consumed
    observations: np.ndarray  # raw (possibly fault-perturbed) series
    #: the spec's repetition budget this series ran under
    max_nreps: int = 500
    #: finite observations (== nreps unless faults injected NaNs)
    valid_nreps: int = -1
    #: observations the robust summary rejected as outliers
    outliers_rejected: int = 0
    #: what the fault injector did to this series (empty when clean)
    faults: FaultReport = field(default_factory=FaultReport)

    def __post_init__(self) -> None:
        if self.valid_nreps < 0:  # default: assume the series is clean
            object.__setattr__(
                self, "valid_nreps",
                int(np.sum(np.isfinite(self.observations)))
                if len(self.observations) else 0,
            )

    @property
    def truncated(self) -> bool:
        """Whether the time budget cut the series short.

        Compares against the spec's *actual* repetition budget
        (``max_nreps`` is threaded in by the benchmark), not the
        default of 500 — a ``max_nreps=25`` CI campaign that completes
        all 25 reps is **not** truncated.
        """
        return self.spent > 0 and self.nreps < self.max_nreps

    @property
    def ok(self) -> bool:
        """Whether the series produced a usable statistic.

        False when faults left fewer than ``min_valid_nreps`` finite
        observations (``time`` is then NaN) — the runner's
        retry/quarantine loop keys off this.
        """
        return bool(np.isfinite(self.time))


class ReproMPIBenchmark:
    """Measures collective algorithms under a benchmark spec."""

    def __init__(self, machine: MachineModel, spec: BenchmarkSpec | None = None):
        self.machine = machine
        self.spec = spec or BenchmarkSpec()

    def measure(
        self,
        algo: CollectiveAlgorithm,
        topo: Topology,
        nbytes: int,
        rng: SeedLike = None,
        *,
        injector: FaultInjector | None = None,
        fault_key: tuple = (),
    ) -> Measurement:
        """Measure one (configuration, instance) pair.

        The deterministic base cost is evaluated once; observations are
        the base cost under the machine's multiplicative noise model
        plus the clock-sync error. With ``spec.exact`` the base cost
        comes from a run of the exact engine instead (slow; meant for
        validation studies).

        ``injector`` (with its site identity ``fault_key``) perturbs
        the finished series — straggler spikes, jitter bursts, NaN
        observations — from its *own* seeded stream, so clean samples
        stay bit-identical to a fault-free run. The summary statistic
        is computed over the finite observations only; if fewer than
        ``spec.min_valid_nreps`` survive, ``time`` is NaN and
        ``Measurement.ok`` is False.
        """
        gen = as_generator(rng)
        spec = self.spec
        if spec.exact:
            base = algo.run_exact(self.machine, topo, nbytes, verify=False).makespan
        else:
            base = algo.base_time(self.machine, topo, nbytes)
        if base < 0:
            raise ValueError(f"negative base time from {algo.config.label}")

        # Draw up to max_nreps observations, then truncate to the
        # prefix that fits in the simulated time budget (equivalent to
        # sampling one by one, but vectorised).
        n = spec.max_nreps
        noisy = self.machine.noise.sample(np.full(n, base), gen)
        noisy += spec.sync.sample_errors(self.machine, topo, n, gen)
        cumulative = np.cumsum(noisy)
        fits = int(np.searchsorted(cumulative, spec.max_seconds) + 1)
        nreps = max(1, min(n, fits))
        series = noisy[:nreps]

        report = FaultReport()
        if injector is not None:
            series, report = injector.perturb(series, *fault_key)

        valid = series[np.isfinite(series)]
        rejected = 0
        if spec.summary.robust and valid.size:
            rejected = int(np.sum(mad_outlier_mask(valid)))
            if rejected:
                telemetry = get_telemetry()
                telemetry.add("bench.outliers_rejected", rejected)
        if len(valid) >= spec.min_valid_nreps:
            time = spec.summary.apply(valid)
        else:
            time = float("nan")
        return Measurement(
            time=time,
            nreps=nreps,
            spent=float(cumulative[nreps - 1]),
            observations=series,
            max_nreps=spec.max_nreps,
            valid_nreps=int(len(valid)),
            outliers_rejected=rejected,
            faults=report,
        )
