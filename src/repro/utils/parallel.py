"""Deterministic parallel execution helpers.

One tiny surface used by every parallel path in the repo
(:class:`~repro.core.selector.AlgorithmSelector` training, the
:class:`~repro.bench.runner.DatasetRunner` campaign loop):

* :func:`resolve_jobs` — one policy for worker counts: an explicit
  ``n_jobs`` argument wins, then the ``REPRO_JOBS`` environment
  variable, then serial (1). ``-1`` means "all cores".
* :func:`parallel_map` — ordered map over a thread pool. Results come
  back in **input order** regardless of completion order, so a caller
  whose work items are independently seeded (see
  :func:`repro.utils.rng.stable_seed`) produces bit-identical output
  for any worker count.

Threads, not processes: the workloads here are numpy-heavy (GIL
released in the kernels) and the paper-learner factories close over
lambdas, which do not pickle. A serial fast path (``jobs == 1``) runs
in the caller's thread with zero pool overhead — that path is also the
behavioural baseline the determinism tests compare against.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

#: environment knob: default worker count when ``n_jobs`` is not given
ENV_JOBS = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Worker count policy: argument > ``REPRO_JOBS`` env > 1.

    ``-1`` (from either source) means all available cores. Invalid
    environment values fall back to serial rather than crashing a
    campaign at the end of a long run.
    """
    if n_jobs is None:
        raw = os.environ.get(ENV_JOBS, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            return 1
    if n_jobs == 0:
        raise ValueError("n_jobs must be >= 1 or -1 (all cores), got 0")
    if n_jobs < 0:
        return os.cpu_count() or 1
    return n_jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_jobs: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]``, optionally over a thread pool.

    Results are returned in input order (``Executor.map`` semantics),
    and the first exception raised by any item propagates to the
    caller. With one worker (or one item) no pool is created at all.
    """
    work: Sequence[T] = list(items)
    jobs = min(resolve_jobs(n_jobs), len(work))
    if jobs <= 1:
        return [fn(item) for item in work]
    with ThreadPoolExecutor(max_workers=jobs) as ex:
        return list(ex.map(fn, work))


class ProgressCounter:
    """Thread-safe cumulative progress relay.

    Wraps a user ``progress(done, total)`` callback so parallel workers
    can report chunks of completed work; the callback always observes a
    monotonically increasing ``done`` because updates happen under one
    lock. With no callback, :meth:`advance` is still safe to call and
    merely tracks the count.
    """

    def __init__(
        self, total: int, callback: Callable[[int, int], None] | None = None
    ) -> None:
        self.total = total
        self.done = 0
        self._callback = callback
        self._lock = threading.Lock()

    def advance(self, amount: int = 1) -> int:
        """Record ``amount`` finished units; returns the new total."""
        with self._lock:
            self.done += amount
            done = self.done
            if self._callback is not None:
                self._callback(done, self.total)
        return done
