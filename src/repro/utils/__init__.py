"""Shared utilities: units, RNG handling, validation helpers."""

from repro.utils.units import (
    KiB,
    MiB,
    GiB,
    format_bytes,
    format_time,
    parse_bytes,
)
from repro.utils.rng import as_generator, spawn_child, stable_seed

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "format_time",
    "parse_bytes",
    "as_generator",
    "spawn_child",
    "stable_seed",
]
