"""Byte and time unit helpers.

All sizes in the library are plain integers of bytes and all times are
floats of seconds; these helpers only exist at the I/O boundary (CLI,
reports, dataset files).
"""

from __future__ import annotations

import re

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}

_BYTES_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([a-zA-Z]*)\s*$")


def parse_bytes(text: str | int) -> int:
    """Parse a human byte size such as ``"64K"`` or ``"4MiB"`` into bytes.

    Integers pass through unchanged. Suffixes are binary (K = 1024).

    >>> parse_bytes("64K")
    65536
    >>> parse_bytes(17)
    17
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"byte size must be non-negative, got {text}")
        return text
    match = _BYTES_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse byte size: {text!r}")
    value, suffix = match.groups()
    try:
        factor = _SUFFIXES[suffix.lower()]
    except KeyError:
        raise ValueError(f"unknown byte suffix {suffix!r} in {text!r}") from None
    nbytes = float(value) * factor
    if nbytes != int(nbytes):
        raise ValueError(f"byte size {text!r} is not a whole number of bytes")
    return int(nbytes)


def format_bytes(nbytes: int) -> str:
    """Render a byte count compactly, using binary suffixes when exact.

    >>> format_bytes(65536)
    '64KiB'
    >>> format_bytes(100)
    '100B'
    """
    if nbytes < 0:
        raise ValueError(f"byte size must be non-negative, got {nbytes}")
    for factor, suffix in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if nbytes >= factor and nbytes % factor == 0:
            return f"{nbytes // factor}{suffix}"
    return f"{nbytes}B"


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit (s / ms / us / ns).

    >>> format_time(0.000123)
    '123.00us'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f}us"
    return f"{seconds * 1e9:.2f}ns"
