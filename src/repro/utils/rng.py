"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator``. These helpers normalise the two and derive
statistically independent child streams from string keys so that, e.g.,
the noise stream of dataset ``d1`` does not depend on whether ``d2`` was
generated first.
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = int | np.random.Generator | None


def stable_seed(*parts: object) -> int:
    """Hash arbitrary parts into a stable 63-bit seed.

    Unlike ``hash()``, the result is independent of ``PYTHONHASHSEED``
    and of the process, so dataset generation is reproducible across
    runs and machines.
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Return a ``Generator`` for a seed, a generator, or ``None``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator, *key: object) -> np.random.Generator:
    """Derive an independent child generator keyed by ``key``.

    The child stream depends only on the parent's bit-generator state at
    call time and the key, and drawing from the child never perturbs the
    parent, so sibling components stay independent.
    """
    # Mix the parent stream with the stable key: the parent provides
    # run-level entropy, the key provides component-level separation.
    parent_word = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(stable_seed(parent_word, *key))
