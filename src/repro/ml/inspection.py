"""Model diagnostics: permutation importance and partial dependence.

Lightweight, learner-agnostic introspection used by the examples and
the feature ablation: which instance features (message size, nodes,
ppn, total processes) actually drive a configuration's runtime model?
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.ml.base import Regressor
from repro.utils.rng import SeedLike, as_generator


def permutation_importance(
    model: Regressor,
    X: np.ndarray,
    y: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float],
    n_repeats: int = 5,
    rng: SeedLike = 0,
) -> np.ndarray:
    """Per-feature importance: metric degradation under shuffling.

    Returns an array of shape (n_features,): the mean increase of
    ``metric`` (lower-is-better, e.g. RMSE or MAPE) when the feature
    column is permuted. Near-zero means the model ignores the feature.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    gen = as_generator(rng)
    baseline = metric(y, model.predict(X))
    importances = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        degradations = []
        for _ in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, j] = gen.permutation(shuffled[:, j])
            degradations.append(metric(y, model.predict(shuffled)) - baseline)
        importances[j] = float(np.mean(degradations))
    return importances


def partial_dependence(
    model: Regressor,
    X: np.ndarray,
    feature: int,
    grid: np.ndarray | None = None,
    num_points: int = 20,
) -> tuple[np.ndarray, np.ndarray]:
    """Average prediction as a function of one feature.

    Every sample's feature ``feature`` is swept over ``grid`` (default:
    quantiles of the observed values) while the other features keep
    their actual values; returns ``(grid, mean_prediction)``.
    """
    X = np.asarray(X, dtype=float)
    if not 0 <= feature < X.shape[1]:
        raise ValueError(f"feature {feature} out of range")
    if grid is None:
        qs = np.linspace(0.0, 1.0, num_points)
        grid = np.unique(np.quantile(X[:, feature], qs))
    grid = np.asarray(grid, dtype=float)
    means = np.empty(len(grid))
    work = X.copy()
    for i, value in enumerate(grid):
        work[:, feature] = value
        means[i] = float(np.mean(model.predict(work)))
    return grid, means
