"""Optional native acceleration for the flat tree kernels.

The numpy level-wise descent in :mod:`repro.ml.kernels` is already
recursion-free, but advanced indexing costs ~10 ns per (row, tree,
level) visit — the gather loop is index-arithmetic bound. The C
descent below does the same visit in ~1 ns, so this module compiles
one small C file with the system ``cc`` the first time it is needed
and caches the shared object per source hash.

Speed comes from four classic tricks:

* **branchless steps** — children are allocated adjacently
  (``right == left + 1``) and leaves carry ``threshold = +inf`` with a
  self-loop base, so one step is ``node = base[node] + (x[f] >
  th[node])`` with no unpredictable branch,
* **fixed-depth descent** — every chain runs exactly ``depth`` steps
  (leaves spin in place), removing the data-dependent loop exit,
* **interleaved chains** — 2 rows x 8 trees = 16 independent descents
  per iteration, hiding the ~4 ns load-to-use latency of the node pool
  behind independent work,
* **loop order + AoS nodes** — each (threshold, child base, feature)
  triple is packed into one 16-byte struct so a step touches a single
  cache line, and the loops are swapped (tree *chunks* outer, rows
  inner) so an 8-tree chunk's few hundred nodes stay L1-resident for
  the entire row sweep instead of being evicted between rows.

Strictly optional and strictly bit-identical: no compiler, a failed
compile, or ``REPRO_NO_CKERNEL=1`` falls back to the numpy path. The C
loop performs exactly the oracle's ``x[f] <= threshold`` float64
comparisons, and the fused sum mode accumulates in the oracle's round
order with ``-ffp-contract=off`` (no FMA contraction), so every
variant returns the same bits.

No third-party dependency is introduced: only ``ctypes`` + the
toolchain already present on the host (gated, with fallback).
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

logger = logging.getLogger(__name__)

#: set to "1" to force the pure-numpy descent
ENV_DISABLE = "REPRO_NO_CKERNEL"
#: override the directory holding compiled kernels
ENV_CACHE = "REPRO_KERNEL_CACHE"

_SOURCE = r"""
#include <stdint.h>

/* One node: split threshold, branchless child base (left child id for
 * internal nodes, own id for leaves), gather feature (clamped to 0 at
 * leaves). 16 bytes -> a step touches exactly one cache line. */
typedef struct { double th; int32_t base; int32_t feat; } Node;

/* One branchless step: leaf thresholds are +inf so the comparison
 * contributes 0 there and finished chains spin in place. The x
 * argument lets two rows' chains interleave in one loop body. */
#define STEP(n, x) \
    (n) = nodes[(n)].base + ((x)[nodes[(n)].feat] > nodes[(n)].th)

#define LOAD8(p, n) \
    int32_t p##0 = (n)[0], p##1 = (n)[1], p##2 = (n)[2], p##3 = (n)[3], \
            p##4 = (n)[4], p##5 = (n)[5], p##6 = (n)[6], p##7 = (n)[7]
#define STEP8(p, x) \
    STEP(p##0, x); STEP(p##1, x); STEP(p##2, x); STEP(p##3, x); \
    STEP(p##4, x); STEP(p##5, x); STEP(p##6, x); STEP(p##7, x)

/* Leaf-value matrix: out[i*T + t] = leaf value of tree t for row i.
 *
 * Loop order: 8-tree chunks OUTER, rows INNER — a chunk's few hundred
 * nodes stay L1-resident across the whole row sweep. Two rows advance
 * together, giving 16 independent chains to hide load latency. */
void repro_predict_matrix(
    const double *X, int64_t n_rows, int64_t n_features,
    const Node *nodes, const double *value, const int32_t *roots,
    int64_t n_trees, int64_t depth, double *out)
{
    int64_t t = 0;
    for (; t + 8 <= n_trees; t += 8) {
        const int32_t *r = roots + t;
        int64_t i = 0;
        for (; i + 2 <= n_rows; i += 2) {
            const double *xa = X + i * n_features, *xb = xa + n_features;
            double *oa = out + i * n_trees + t, *ob = oa + n_trees;
            LOAD8(a, r); LOAD8(b, r);
            for (int64_t d = 0; d < depth; ++d) {
                STEP8(a, xa); STEP8(b, xb);
            }
            oa[0] = value[a0]; oa[1] = value[a1];
            oa[2] = value[a2]; oa[3] = value[a3];
            oa[4] = value[a4]; oa[5] = value[a5];
            oa[6] = value[a6]; oa[7] = value[a7];
            ob[0] = value[b0]; ob[1] = value[b1];
            ob[2] = value[b2]; ob[3] = value[b3];
            ob[4] = value[b4]; ob[5] = value[b5];
            ob[6] = value[b6]; ob[7] = value[b7];
        }
        for (; i < n_rows; ++i) {
            const double *x = X + i * n_features;
            double *o = out + i * n_trees + t;
            LOAD8(a, r);
            for (int64_t d = 0; d < depth; ++d) { STEP8(a, x); }
            o[0] = value[a0]; o[1] = value[a1];
            o[2] = value[a2]; o[3] = value[a3];
            o[4] = value[a4]; o[5] = value[a5];
            o[6] = value[a6]; o[7] = value[a7];
        }
    }
    for (; t < n_trees; ++t) {
        for (int64_t i = 0; i < n_rows; ++i) {
            const double *x = X + i * n_features;
            int32_t n = roots[t];
            for (int64_t d = 0; d < depth; ++d) STEP(n, x);
            out[i * n_trees + t] = value[n];
        }
    }
}

/* Fused booster score: out[i] = offset + scale*v_0 + scale*v_1 + ...
 * Chunks are visited in ascending tree order and each row's partial
 * sum is updated sequentially within the chunk, so per row the float
 * additions happen in the oracle's exact round order even though the
 * row loop is inner (rows never share an accumulator). */
void repro_predict_sum(
    const double *X, int64_t n_rows, int64_t n_features,
    const Node *nodes, const double *value, const int32_t *roots,
    int64_t n_trees, int64_t depth, double scale, double offset,
    double *out)
{
    for (int64_t i = 0; i < n_rows; ++i) out[i] = offset;
    int64_t t = 0;
    for (; t + 8 <= n_trees; t += 8) {
        const int32_t *r = roots + t;
        int64_t i = 0;
        for (; i + 2 <= n_rows; i += 2) {
            const double *xa = X + i * n_features, *xb = xa + n_features;
            LOAD8(a, r); LOAD8(b, r);
            for (int64_t d = 0; d < depth; ++d) {
                STEP8(a, xa); STEP8(b, xb);
            }
            double s = out[i];
            s += scale * value[a0]; s += scale * value[a1];
            s += scale * value[a2]; s += scale * value[a3];
            s += scale * value[a4]; s += scale * value[a5];
            s += scale * value[a6]; s += scale * value[a7];
            out[i] = s;
            double u = out[i + 1];
            u += scale * value[b0]; u += scale * value[b1];
            u += scale * value[b2]; u += scale * value[b3];
            u += scale * value[b4]; u += scale * value[b5];
            u += scale * value[b6]; u += scale * value[b7];
            out[i + 1] = u;
        }
        for (; i < n_rows; ++i) {
            const double *x = X + i * n_features;
            LOAD8(a, r);
            for (int64_t d = 0; d < depth; ++d) { STEP8(a, x); }
            double s = out[i];
            s += scale * value[a0]; s += scale * value[a1];
            s += scale * value[a2]; s += scale * value[a3];
            s += scale * value[a4]; s += scale * value[a5];
            s += scale * value[a6]; s += scale * value[a7];
            out[i] = s;
        }
    }
    for (; t < n_trees; ++t) {
        for (int64_t i = 0; i < n_rows; ++i) {
            const double *x = X + i * n_features;
            int32_t n = roots[t];
            for (int64_t d = 0; d < depth; ++d) STEP(n, x);
            out[i] += scale * value[n];
        }
    }
}

/* Branchless decision-table lookup (repro.serve.compiled).
 *
 * A compiled decision table answers one query with three clamped
 * gathers and one masked cell load:
 *
 *   - nodes/ppn clamp into small dense index maps whose final slot is
 *     the overflow cell (-1 = off-table, falls through in Python),
 *   - msize maps to its log2 bucket (bit_length: 0 -> 0, otherwise
 *     64 - clzll), then validates against the bucket's [lo, hi]
 *     admission range — buckets a table cannot answer exactly keep an
 *     empty range (lo > hi), so the same comparison rejects them,
 *   - the (bucket, node, ppn) cell holds the winning config id, -1 for
 *     uncovered cells.
 *
 * out[q] is the config id, or -1 when the table must not answer (the
 * service then falls through to the interpreted path). No branches
 * beyond the loop: rejected queries still gather a (masked) cell. */
void repro_table_lookup(
    const int64_t *nodes, const int64_t *ppn, const int64_t *msize,
    int64_t n_queries,
    const int32_t *node_index, int64_t node_len,
    const int32_t *ppn_index, int64_t ppn_len,
    const int64_t *msize_lo, const int64_t *msize_hi,
    const int32_t *cells, int64_t nn, int64_t np,
    int32_t *out)
{
    for (int64_t q = 0; q < n_queries; ++q) {
        int64_t n = nodes[q], p = ppn[q], m = msize[q];
        int64_t nc = n < 0 ? 0 : (n >= node_len ? node_len - 1 : n);
        int64_t pc = p < 0 ? 0 : (p >= ppn_len ? ppn_len - 1 : p);
        int32_t i = node_index[nc], j = ppn_index[pc];
        int64_t b = m <= 0 ? 0 : 64 - __builtin_clzll((uint64_t)m);
        int ok = (i >= 0) & (j >= 0)
                 & (m >= msize_lo[b]) & (m <= msize_hi[b]);
        int64_t iz = i < 0 ? 0 : i, jz = j < 0 ? 0 : j;
        int32_t cid = cells[(b * nn + iz) * np + jz];
        out[q] = (ok & (cid >= 0)) ? cid : -1;
    }
}
"""

_lib: ctypes.CDLL | None = None
_load_attempted = False


def _cache_dir() -> Path:
    override = os.environ.get(ENV_CACHE)
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-ckernels"


def _compile() -> Path | None:
    """Compile the kernel once per source hash; atomic cache install."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"treekernel-{digest}.so"
    if so_path.exists():
        return so_path
    cache.mkdir(parents=True, exist_ok=True)
    # the .c lands via tmp+replace too: a parallel compiler racing this
    # one must never read a torn source file from the shared cache
    src_path = cache / f"treekernel-{digest}.c"
    tmp_src = cache / f".treekernel-{digest}.{os.getpid()}.c"
    tmp_src.write_text(_SOURCE)
    os.replace(tmp_src, src_path)
    tmp_so = cache / f".treekernel-{digest}.{os.getpid()}.so"
    cmd = [
        "cc", "-O2", "-ffp-contract=off", "-shared", "-fPIC",
        str(src_path), "-o", str(tmp_so),
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        logger.debug("tree-kernel compile failed: %s", proc.stderr.strip())
        return None
    os.replace(tmp_so, so_path)  # atomic, parallel-safe
    return so_path


def load() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable."""
    global _lib, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get(ENV_DISABLE, "") not in ("", "0"):
        return None
    try:
        so_path = _compile()
        if so_path is None:
            return None
        lib = ctypes.CDLL(str(so_path))
        ptr = ctypes.POINTER
        common = [
            ptr(ctypes.c_double), ctypes.c_int64, ctypes.c_int64,
            ctypes.c_void_p, ptr(ctypes.c_double), ptr(ctypes.c_int32),
            ctypes.c_int64, ctypes.c_int64,
        ]
        lib.repro_predict_matrix.restype = None
        lib.repro_predict_matrix.argtypes = common + [ptr(ctypes.c_double)]
        lib.repro_predict_sum.restype = None
        lib.repro_predict_sum.argtypes = common + [
            ctypes.c_double, ctypes.c_double, ptr(ctypes.c_double),
        ]
        # raw-address argtypes: the serve hot path passes precomputed
        # ``arr.ctypes.data`` integers, skipping per-call pointer wrapping
        vp = ctypes.c_void_p
        lib.repro_table_lookup.restype = None
        lib.repro_table_lookup.argtypes = [
            vp, vp, vp, ctypes.c_int64,          # nodes, ppn, msize, nq
            vp, ctypes.c_int64,                  # node_index, node_len
            vp, ctypes.c_int64,                  # ppn_index, ppn_len
            vp, vp,                              # msize_lo, msize_hi
            vp, ctypes.c_int64, ctypes.c_int64,  # cells, nn, np
            vp,                                  # out
        ]
        _lib = lib
    except Exception as exc:  # pragma: no cover - environment dependent
        logger.debug("tree-kernel load failed: %s", exc)
        _lib = None
    return _lib


def available() -> bool:
    """Whether the native kernel can be used in this process."""
    return load() is not None


def _as_ptr(arr: np.ndarray, ctype) -> "ctypes._Pointer":
    return arr.ctypes.data_as(ctypes.POINTER(ctype))


def _common_args(X: np.ndarray, ens) -> tuple:
    n_rows, n_features = X.shape
    return (
        _as_ptr(X, ctypes.c_double),
        ctypes.c_int64(n_rows),
        ctypes.c_int64(n_features),
        ctypes.c_void_p(ens.packed_nodes.ctypes.data),
        _as_ptr(ens.value, ctypes.c_double),
        _as_ptr(ens.roots, ctypes.c_int32),
        ctypes.c_int64(ens.n_trees),
        ctypes.c_int64(ens.depth),
    )


def predict_matrix(X: np.ndarray, ens) -> np.ndarray:
    """(n_rows, n_trees) leaf-value matrix via the native descent.

    ``ens`` is a ``FlatEnsemble`` (or anything exposing the same
    branchless-step arrays). Caller guarantees :func:`available` and a
    C-contiguous float64 ``X``.
    """
    lib = load()
    assert lib is not None, "native kernel not available"
    out = np.empty((len(X), ens.n_trees), dtype=np.float64)
    lib.repro_predict_matrix(*_common_args(X, ens), _as_ptr(out, ctypes.c_double))
    return out


def predict_sum(X: np.ndarray, ens, scale: float, offset: float) -> np.ndarray:
    """Fused ``offset + scale * sum_t(tree_t(x))`` in oracle order."""
    lib = load()
    assert lib is not None, "native kernel not available"
    out = np.empty(len(X), dtype=np.float64)
    lib.repro_predict_sum(
        *_common_args(X, ens),
        ctypes.c_double(scale),
        ctypes.c_double(offset),
        _as_ptr(out, ctypes.c_double),
    )
    return out


def table_fixed_args(
    node_index: np.ndarray,
    ppn_index: np.ndarray,
    msize_lo: np.ndarray,
    msize_hi: np.ndarray,
    cells: np.ndarray,
) -> tuple:
    """The per-table middle arguments of ``repro_table_lookup``.

    Raw buffer addresses plus lengths, computed once per
    :class:`~repro.serve.compiled.CompiledTable` — the owner must keep
    the arrays alive for as long as it reuses the tuple (the table
    holds them as attributes, so their lifetime brackets every call).
    """
    return (
        node_index.ctypes.data, len(node_index),
        ppn_index.ctypes.data, len(ppn_index),
        msize_lo.ctypes.data, msize_hi.ctypes.data,
        cells.ctypes.data, cells.shape[1], cells.shape[2],
    )


def table_lookup(
    nodes: np.ndarray,
    ppn: np.ndarray,
    msize: np.ndarray,
    fixed: tuple,
) -> np.ndarray:
    """Batched compiled-table lookup; -1 per query = fall through.

    Caller (``repro.serve.compiled.CompiledTable``) guarantees
    :func:`available`, contiguous int64 query columns, and ``fixed``
    from :func:`table_fixed_args` over live table arrays.
    """
    lib = load()
    assert lib is not None, "native kernel not available"
    nq = len(msize)
    out = np.empty(nq, dtype=np.int32)
    lib.repro_table_lookup(
        nodes.ctypes.data, ppn.ctypes.data, msize.ctypes.data, nq,
        *fixed, out.ctypes.data,
    )
    return out
