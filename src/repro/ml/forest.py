"""Random forest regressor — the paper's *previous* learner ([9]).

Kept as a baseline for the A3 ablation: the paper reports that RF
"worked reasonably well" on few datasets but lost to XGBoost/KNN/GAM at
scale.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.ml.kernels import FlatEnsemble
from repro.ml.tree import RegressionTree
from repro.utils.rng import SeedLike, as_generator, spawn_child


class RandomForestRegressor(Regressor):
    """Bagged CART trees with feature subsampling."""

    def __init__(
        self,
        n_trees: int = 100,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: str | int | None = "sqrt",
        rng: SeedLike = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = as_generator(rng)
        self._trees: list[RegressionTree] = []
        self._flat: FlatEnsemble | None = None

    def _resolve_max_features(self, nfeat: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(nfeat)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, nfeat))
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X, y = self._validate(X, y)
        n = len(y)
        max_features = self._resolve_max_features(X.shape[1])
        self._trees = []
        for t in range(self.n_trees):
            child = spawn_child(self._rng, "tree", t)
            rows = child.integers(0, n, size=n)  # bootstrap sample
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=child,
            )
            tree.fit(X[rows], y[rows])
            self._trees.append(tree)
        self._flat = None  # stale ensemble kernel, recompile lazily
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    @property
    def flat(self) -> FlatEnsemble:
        """All member trees compiled into one node pool (lazy, cached)."""
        self._check_fitted()
        if self._flat is None:
            self._flat = FlatEnsemble.from_roots(
                [t._tree._root for t in self._trees]  # noqa: SLF001
            )
        return self._flat

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction via the flat ensemble kernel (bit-parity
        with :meth:`predict_recursive`)."""
        self._check_fitted()
        X, _ = self._validate(X)
        leaf_values = self.flat.predict_all(X)  # (n, n_trees)
        # Same stack-then-mean as the oracle so float reduction order
        # (and hence the bits) match exactly.
        preds = np.stack([leaf_values[:, t] for t in range(self.n_trees)])
        return preds.mean(axis=0)

    def predict_recursive(self, X: np.ndarray) -> np.ndarray:
        """Reference per-tree traversal (parity oracle for the kernel)."""
        self._check_fitted()
        X, _ = self._validate(X)
        preds = np.stack([tree.predict_recursive(X) for tree in self._trees])
        return preds.mean(axis=0)
