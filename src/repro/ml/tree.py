"""Exact-greedy regression trees on gradient/hessian statistics.

One tree implementation serves two masters:

* **gradient boosting** fits each tree to per-sample gradients ``g``
  and hessians ``h`` of an arbitrary twice-differentiable loss; the
  optimal leaf weight is ``-G/(H + lambda)`` and the split gain is the
  XGBoost gain formula,
* a **plain regression tree** (and hence the random forest) is the
  special case ``g = -y, h = 1, lambda = 0``: leaf weights become leaf
  means and the gain reduces to the classic SSE reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import Regressor
from repro.ml.kernels import FlatTree
from repro.utils.rng import SeedLike, as_generator


@dataclass
class _Node:
    """Internal node (leaf iff ``feature < 0``)."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0


@dataclass(frozen=True)
class TreeParams:
    """Growth limits (XGBoost naming)."""

    max_depth: int = 6
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0  # minimum gain to split
    min_samples_leaf: int = 1
    #: number of features considered per split (None = all)
    max_features: int | None = None


class GradTree:
    """A single tree fitted to (gradient, hessian) statistics."""

    def __init__(self, params: TreeParams, rng: SeedLike = None) -> None:
        self.params = params
        self._rng = as_generator(rng)
        self._root: _Node | None = None
        self._flat: FlatTree | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> "GradTree":
        X = np.asarray(X, dtype=float)
        grad = np.asarray(grad, dtype=float)
        hess = np.asarray(hess, dtype=float)
        if len(X) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self._X, self._grad, self._hess = X, grad, hess
        self._root = self._build(np.arange(len(X)), depth=0)
        del self._X, self._grad, self._hess
        self._flat = None  # recompiled lazily on first predict
        return self

    def _leaf(self, idx: np.ndarray) -> _Node:
        G = self._grad[idx].sum()
        H = self._hess[idx].sum()
        return _Node(value=-G / (H + self.params.reg_lambda))

    def _build(self, idx: np.ndarray, depth: int) -> _Node:
        p = self.params
        if depth >= p.max_depth or len(idx) < 2 * p.min_samples_leaf:
            return self._leaf(idx)
        G = self._grad[idx].sum()
        H = self._hess[idx].sum()
        parent_score = G * G / (H + p.reg_lambda)

        nfeat = self._X.shape[1]
        if p.max_features is not None and p.max_features < nfeat:
            features = self._rng.choice(nfeat, size=p.max_features, replace=False)
        else:
            features = np.arange(nfeat)

        best_gain = 0.0
        best: tuple[int, float, np.ndarray] | None = None
        for f in features:
            values = self._X[idx, f]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            g_cum = np.cumsum(self._grad[idx][order])
            h_cum = np.cumsum(self._hess[idx][order])
            # Valid split positions: between distinct consecutive values,
            # respecting min_samples_leaf on both sides.
            lo = p.min_samples_leaf - 1
            hi = len(idx) - p.min_samples_leaf
            pos = np.arange(lo, hi)
            if len(pos) == 0:
                continue
            distinct = v_sorted[pos] < v_sorted[pos + 1]
            pos = pos[distinct]
            if len(pos) == 0:
                continue
            GL, HL = g_cum[pos], h_cum[pos]
            GR, HR = G - GL, H - HL
            ok = (HL >= p.min_child_weight) & (HR >= p.min_child_weight)
            if not ok.any():
                continue
            gains = (
                GL**2 / (HL + p.reg_lambda)
                + GR**2 / (HR + p.reg_lambda)
                - parent_score
            )
            gains[~ok] = -np.inf
            k = int(np.argmax(gains))
            if gains[k] > best_gain + 2 * p.gamma:
                best_gain = float(gains[k])
                threshold = 0.5 * (v_sorted[pos[k]] + v_sorted[pos[k] + 1])
                best = (int(f), threshold, values <= threshold)
        if best is None:
            return self._leaf(idx)
        feature, threshold, mask = best
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._build(idx[mask], depth + 1)
        node.right = self._build(idx[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    @property
    def flat(self) -> FlatTree:
        """The compiled flat-array kernel (built lazily, cached)."""
        if self._root is None:
            raise RuntimeError("GradTree is not fitted yet")
        if self._flat is None:
            self._flat = FlatTree.from_node(self._root)
        return self._flat

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction via the flat kernel (the fast path)."""
        X = np.asarray(X, dtype=float)
        return self.flat.predict(X)

    def predict_recursive(self, X: np.ndarray) -> np.ndarray:
        """Reference pointer-chasing implementation (parity oracle).

        Kept only so the test suite can assert the flat kernel is
        bit-identical; all production paths use :meth:`predict`.
        """
        if self._root is None:
            raise RuntimeError("GradTree is not fitted yet")
        X = np.asarray(X, dtype=float)
        out = np.empty(len(X))
        self._predict_into(self._root, X, np.arange(len(X)), out)
        return out

    def _predict_into(
        self, node: _Node, X: np.ndarray, idx: np.ndarray, out: np.ndarray
    ) -> None:
        if node.feature < 0:
            out[idx] = node.value
            return
        mask = X[idx, node.feature] <= node.threshold
        assert node.left is not None and node.right is not None
        if mask.any():
            self._predict_into(node.left, X, idx[mask], out)
        if (~mask).any():
            self._predict_into(node.right, X, idx[~mask], out)

    def depth(self) -> int:
        """Actual depth of the fitted tree (for tests/diagnostics)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.feature < 0:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("GradTree is not fitted yet")
        return walk(self._root)

    def num_leaves(self) -> int:
        """Leaf count of the fitted tree."""

        def walk(node: _Node | None) -> int:
            if node is None:
                return 0
            if node.feature < 0:
                return 1
            return walk(node.left) + walk(node.right)

        if self._root is None:
            raise RuntimeError("GradTree is not fitted yet")
        return walk(self._root)


class RegressionTree(Regressor):
    """Plain CART regression tree (leaf means, SSE-reduction splits)."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        rng: SeedLike = None,
    ) -> None:
        self._params = TreeParams(
            max_depth=max_depth,
            min_child_weight=0.0,
            reg_lambda=0.0,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
        )
        self._rng = as_generator(rng)
        self._tree: GradTree | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X, y = self._validate(X, y)
        self._tree = GradTree(self._params, rng=self._rng)
        self._tree.fit(X, grad=-y, hess=np.ones(len(y)))
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X, _ = self._validate(X)
        assert self._tree is not None
        return self._tree.predict(X)

    def predict_recursive(self, X: np.ndarray) -> np.ndarray:
        """Reference traversal (parity oracle for the flat kernel)."""
        self._check_fitted()
        X, _ = self._validate(X)
        assert self._tree is not None
        return self._tree.predict_recursive(X)
