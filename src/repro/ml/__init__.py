"""From-scratch regression learners (NumPy/SciPy only).

The paper's tuning step fits one runtime model per algorithm
configuration using, out of the box and without hyper-parameter
search: **XGBoost** (gradient-boosted trees, Tweedie objective, 200
rounds), **KNN** (k=5 on standardised inputs) and **GAM** (penalised
B-splines, Gamma family, log link). Those three live here, together
with the baselines the paper tried and rejected (random forest,
ridge/linear regression) and the shared infrastructure (CART trees,
scalers, metrics, cross-validation).
"""

from repro.ml.base import Regressor
from repro.ml.inspection import partial_dependence, permutation_importance
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.gam import GAMRegressor
from repro.ml.knn import KNNRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import mae, mape, r2_score, rmse
from repro.ml.scaling import StandardScaler
from repro.ml.tree import RegressionTree
from repro.ml.validation import KFold, train_test_split

#: the learner menu of the paper's evaluation (§IV-B), by display name.
#: The GAM includes a tensor-product interaction between the first and
#: last instance features (log2 message size x total processes, see
#: repro.core.features) — collective runtimes have the shape
#: ``A(p) + B(p)*m``, which no purely additive smooth can express.
PAPER_LEARNERS = {
    "KNN": lambda: KNNRegressor(),
    "GAM": lambda: GAMRegressor(interactions=((0, 3),)),
    "XGBoost": lambda: GradientBoostingRegressor(),
}

__all__ = [
    "Regressor",
    "GradientBoostingRegressor",
    "RandomForestRegressor",
    "GAMRegressor",
    "KNNRegressor",
    "RidgeRegressor",
    "RegressionTree",
    "StandardScaler",
    "KFold",
    "train_test_split",
    "mae",
    "mape",
    "rmse",
    "r2_score",
    "permutation_importance",
    "partial_dependence",
    "PAPER_LEARNERS",
]
