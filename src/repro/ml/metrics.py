"""Regression error metrics (for model diagnostics and the ablations)."""

from __future__ import annotations

import numpy as np


def _pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if len(y_true) == 0:
        raise ValueError("empty input")
    return y_true, y_pred


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute percentage error (requires strictly positive truth).

    The natural metric for runtimes spanning orders of magnitude: a
    50 us error is negligible on a 5 ms broadcast and catastrophic on a
    5 us one.
    """
    y_true, y_pred = _pair(y_true, y_pred)
    if (y_true <= 0).any():
        raise ValueError("mape requires strictly positive y_true")
    return float(np.mean(np.abs((y_true - y_pred) / y_true)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination (1 = perfect, 0 = predicting the mean)."""
    y_true, y_pred = _pair(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
