"""Flat-array tree inference kernels.

Fitted trees are pointer-chasing structures (``_Node`` objects); fine
for growing, terrible for querying. This module *compiles* them into
five contiguous numpy arrays

    ``feature / threshold / left / right / value``

indexed by node id, and evaluates batches with an **iterative
level-wise descent**: every row starts at a root and, for ``depth``
rounds, takes one branchless step

    ``node = child_base[node] + (x[feature[node]] > threshold[node])``

which works because children are allocated adjacently (``right ==
left + 1``) and leaves are encoded as self-loops with ``threshold =
+inf`` (the comparison is always false, so finished rows spin in
place). No masks, no Python recursion, no per-row work.

Two layouts are provided:

* :class:`FlatTree` — one tree (used per boosting round during fit),
* :class:`FlatEnsemble` — *all* trees of a booster or forest stacked
  into one node pool with a ``roots`` vector; ``predict_all`` descends
  every (row, tree) pair simultaneously, so a 200-round booster costs
  ``depth`` gather sweeps instead of 200 recursive traversals.

When the host toolchain allows, the descent runs in a tiny compiled
kernel (:mod:`repro.ml._ckernel`, ~1 ns per visit, GIL released);
otherwise a pure-numpy gather loop with identical semantics is used.

Bit-parity: every variant performs exactly the same ``x <= threshold``
comparisons as the recursive path, reaches exactly the same leaves,
and returns the same float64 leaf values — predictions are
bit-identical, which the parity suite (``tests/ml/test_kernels.py``)
asserts. The recursive implementations are kept as parity oracles
only.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.ml import _ckernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ml.tree import _Node


# ----------------------------------------------------------------------
def _flatten(root: "_Node") -> tuple[np.ndarray, ...]:
    """Serialise a ``_Node`` tree into flat arrays (iterative DFS).

    Children always get larger ids than their parent and are allocated
    back to back, so ``right == left + 1`` for every internal node —
    the invariant the branchless step relies on. Leaves keep the
    provisional self-loop (``left == right == own id``).
    """
    feature: list[int] = []
    threshold: list[float] = []
    left: list[int] = []
    right: list[int] = []
    value: list[float] = []

    stack: list[tuple["_Node", int]] = []

    def alloc(node: "_Node") -> int:
        nid = len(feature)
        feature.append(node.feature)
        threshold.append(node.threshold)
        value.append(node.value)
        left.append(nid)  # provisional self-loop (correct for leaves)
        right.append(nid)
        return nid

    root_id = alloc(root)
    stack.append((root, root_id))
    while stack:
        node, nid = stack.pop()
        if node.feature < 0:
            continue  # leaf: self-loops already in place
        assert node.left is not None and node.right is not None
        left[nid] = alloc(node.left)
        right[nid] = alloc(node.right)
        stack.append((node.left, left[nid]))
        stack.append((node.right, right[nid]))

    return (
        np.asarray(feature, dtype=np.int32),
        np.asarray(threshold, dtype=np.float64),
        np.asarray(left, dtype=np.int32),
        np.asarray(right, dtype=np.int32),
        np.asarray(value, dtype=np.float64),
    )


def _tree_depth(feature: np.ndarray, left: np.ndarray, right: np.ndarray) -> int:
    """Depth (edges on the longest root-to-leaf path) of a flat tree."""
    depth = 0
    frontier = np.array([0], dtype=np.int64)
    while True:
        internal = frontier[feature[frontier] >= 0]
        if len(internal) == 0:
            return depth
        frontier = np.concatenate([left[internal], right[internal]])
        depth += 1


class _StepArraysMixin:
    """Derived arrays for the branchless step, shared by both layouts.

    All three are cached: compiled kernels are immutable after
    construction (the dataclasses are frozen).
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    value: np.ndarray

    @cached_property
    def gather_feature(self) -> np.ndarray:
        """``feature`` with leaves clamped to column 0 (int32).

        The value gathered at a leaf is discarded — its step threshold
        is ``+inf`` — but the gather index must stay in bounds.
        """
        return np.maximum(self.feature, 0)

    @cached_property
    def step_threshold(self) -> np.ndarray:
        """``threshold`` with ``+inf`` at leaves (descent never exits)."""
        th = self.threshold.copy()
        th[self.feature < 0] = np.inf
        return th

    @property
    def child_base(self) -> np.ndarray:
        """Step base: left child at internal nodes, self at leaves.

        Exactly the ``left`` array (leaves store self-loops), aliased
        for readability at the call sites.
        """
        return self.left

    @cached_property
    def _intp_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """intp copies for the numpy gather loop (avoids per-use casts)."""
        return (
            self.gather_feature.astype(np.intp),
            self.child_base.astype(np.intp),
        )

    @cached_property
    def packed_nodes(self) -> np.ndarray:
        """Array-of-structs node pool for the native kernel.

        One 16-byte record per node — ``(threshold, child_base,
        gather_feature)`` — matching the C ``Node`` struct layout, so a
        descent step touches a single cache line instead of three
        scattered arrays.
        """
        dtype = np.dtype(
            [("th", np.float64), ("base", np.int32), ("feat", np.int32)]
        )
        assert dtype.itemsize == 16  # must mirror the C struct exactly
        nodes = np.empty(len(self.feature), dtype=dtype)
        nodes["th"] = self.step_threshold
        nodes["base"] = self.child_base
        nodes["feat"] = self.gather_feature
        return nodes


@dataclass(frozen=True)
class FlatTree(_StepArraysMixin):
    """One compiled tree: contiguous arrays + iterative batch predict."""

    feature: np.ndarray  #: int32, -1 at leaves
    threshold: np.ndarray  #: float64 split threshold (0 at leaves)
    left: np.ndarray  #: int32 child ids; self id at leaves
    right: np.ndarray  #: int32; always ``left + 1`` at internal nodes
    value: np.ndarray  #: float64 leaf weight (0 at internal nodes)
    depth: int  #: longest root-to-leaf path (descent iteration count)

    @staticmethod
    def from_node(root: "_Node") -> "FlatTree":
        feature, threshold, left, right, value = _flatten(root)
        return FlatTree(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            value=value,
            depth=_tree_depth(feature, left, right),
        )

    @property
    def num_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_trees(self) -> int:
        return 1

    @cached_property
    def roots(self) -> np.ndarray:
        return np.zeros(1, dtype=np.int32)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorised batch prediction (bit-identical to the oracle)."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if _ckernel.available():
            return _ckernel.predict_matrix(X, self)[:, 0]
        n, n_features = X.shape
        feat, base = self._intp_arrays
        th = self.step_threshold
        x_flat = X.ravel()
        idx = np.zeros(n, dtype=np.intp)
        row_base = np.arange(n, dtype=np.intp) * n_features
        for _ in range(self.depth):
            idx = base[idx] + (x_flat[row_base + feat[idx]] > th[idx])
        return self.value[idx]


@dataclass(frozen=True)
class FlatEnsemble(_StepArraysMixin):
    """All trees of a booster/forest in one node pool.

    ``roots[t]`` is the root id of tree ``t``; ``predict_all`` returns
    the (n_rows, n_trees) leaf-value matrix in one level-wise sweep.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray
    roots: np.ndarray  #: int32, shape (n_trees,)
    depth: int  #: max depth over member trees

    @staticmethod
    def from_roots(root_nodes: Sequence["_Node"]) -> "FlatEnsemble":
        if not root_nodes:
            raise ValueError("cannot compile an empty ensemble")
        parts = [_flatten(root) for root in root_nodes]
        roots = []
        offset = 0
        shifted: list[tuple[np.ndarray, ...]] = []
        for feature, threshold, left, right, value in parts:
            roots.append(offset)
            shifted.append(
                (feature, threshold, left + offset, right + offset, value)
            )
            offset += len(feature)
        feature = np.concatenate([p[0] for p in shifted])
        threshold = np.concatenate([p[1] for p in shifted])
        left = np.concatenate([p[2] for p in shifted])
        right = np.concatenate([p[3] for p in shifted])
        value = np.concatenate([p[4] for p in shifted])
        depth = max(
            _tree_depth(p[0], p[2] - r, p[3] - r)
            for p, r in zip(shifted, roots, strict=True)
        )
        return FlatEnsemble(
            feature=feature,
            threshold=threshold,
            left=left,
            right=right,
            value=value,
            roots=np.asarray(roots, dtype=np.int32),
            depth=depth,
        )

    @property
    def n_trees(self) -> int:
        return len(self.roots)

    @property
    def num_nodes(self) -> int:
        return len(self.feature)

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Leaf-value matrix of shape (n_rows, n_trees)."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if _ckernel.available():
            return _ckernel.predict_matrix(X, self)
        n, n_features = X.shape
        feat, base = self._intp_arrays
        th = self.step_threshold
        x_flat = X.ravel()
        # (n, T) index matrix: row i, tree t -> current node id.
        idx = np.broadcast_to(
            self.roots.astype(np.intp), (n, self.n_trees)
        ).copy()
        row_base = (np.arange(n, dtype=np.intp) * n_features)[:, None]
        for _ in range(self.depth):
            idx = base[idx] + (x_flat[row_base + feat[idx]] > th[idx])
        return self.value[idx]

    def predict_weighted_sum(
        self, X: np.ndarray, scale: float, offset: float
    ) -> np.ndarray:
        """``offset + scale * sum_t(tree_t(x))``, accumulated in tree
        order — the booster's exact round order, so the result is
        bit-identical to the oracle's sequential accumulation."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if _ckernel.available():
            return _ckernel.predict_sum(X, self, scale, offset)
        # Fortran order makes each accumulated column contiguous.
        leaf_values = np.asfortranarray(self.predict_all(X))
        score = np.full(len(X), offset)
        for t in range(leaf_values.shape[1]):
            score += scale * leaf_values[:, t]
        return score


# ----------------------------------------------------------------------
#: powers of two up to 2^62; searchsorted(side="right") on this array is
#: the vectorised ``int.bit_length`` for non-negative int64 values (and
#: clamps negatives to bucket 0), mirroring the C kernel's
#: ``64 - clzll`` bucket map bit for bit.
_POW2_BUCKETS = np.asarray([1 << k for k in range(63)], dtype=np.int64)


def table_lookup_numpy(
    nodes: np.ndarray,
    ppn: np.ndarray,
    msize: np.ndarray,
    node_index: np.ndarray,
    ppn_index: np.ndarray,
    msize_lo: np.ndarray,
    msize_hi: np.ndarray,
    cells: np.ndarray,
) -> np.ndarray:
    """Pure-numpy compiled-table lookup, identical to the C kernel.

    The ``REPRO_NO_CKERNEL`` fallback for
    ``repro.ml._ckernel.table_lookup``: nodes/ppn clamp into the dense
    index maps (whose final slot is the off-table overflow cell),
    msize maps to its ``bit_length`` bucket and must sit inside the
    bucket's ``[lo, hi]`` admission range, and ``-1`` per query tells
    the serving layer to fall through to the interpreted path.
    """
    i = node_index[np.clip(nodes, 0, len(node_index) - 1)]
    j = ppn_index[np.clip(ppn, 0, len(ppn_index) - 1)]
    b = np.searchsorted(_POW2_BUCKETS, msize, side="right")
    ok = (i >= 0) & (j >= 0) & (msize >= msize_lo[b]) & (msize <= msize_hi[b])
    cid = cells[b, np.maximum(i, 0), np.maximum(j, 0)]
    return np.where(ok & (cid >= 0), cid, np.int32(-1)).astype(
        np.int32, copy=False
    )
