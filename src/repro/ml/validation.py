"""Cross-validation utilities.

The paper deliberately avoids hyper-parameter search (§III-A,
"Achieving Robustness and Applicability") but monitors train/test error
while building models; these helpers support that monitoring and the
model-error ablations.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class KFold:
    """Standard k-fold splitter with optional shuffling."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, rng: SeedLike = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self._rng = as_generator(rng)

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_idx, test_idx) pairs."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        idx = np.arange(n_samples)
        if self.shuffle:
            self._rng.shuffle(idx)
        folds = np.array_split(idx, self.n_splits)
        for k in range(self.n_splits):
            test = folds[k]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != k])
            yield train, test


def train_test_split(
    n_samples: int, test_fraction: float = 0.25, rng: SeedLike = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Random index split; returns (train_idx, test_idx)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    gen = as_generator(rng)
    idx = gen.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_fraction)))
    return idx[n_test:], idx[:n_test]


def cross_val_score(
    make_model,
    X: np.ndarray,
    y: np.ndarray,
    metric,
    n_splits: int = 5,
    rng: SeedLike = 0,
) -> np.ndarray:
    """Metric per fold for a model factory (lower-is-better metrics)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    scores = []
    for train, test in KFold(n_splits, rng=rng).split(len(y)):
        model = make_model()
        model.fit(X[train], y[train])
        scores.append(metric(y[test], model.predict(X[test])))
    return np.asarray(scores)
