"""Feature standardisation.

The paper scales inputs for KNN (§IV-B) — distance-based learners are
meaningless otherwise, since the message-size feature spans seven
orders of magnitude while ppn spans barely two.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-feature zero-mean / unit-variance scaling.

    Constant features get a unit divisor so transforming never divides
    by zero (they carry no distance information either way).
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted yet")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted yet")
        return np.asarray(X, dtype=float) * self.scale_ + self.mean_
