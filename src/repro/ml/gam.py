"""Generalised additive model (the paper's GAM / mgcv learner).

An additive model :math:`\\eta(x) = \\beta_0 + \\sum_j f_j(x_j)` where
each smooth :math:`f_j` is a penalised cubic B-spline (Eilers & Marx
P-splines: quantile knots, second-order difference penalty on the
coefficients). Following the paper's mgcv setup (§IV-B), the default
family is **Gamma with a log link** — the natural choice for positive,
right-skewed runtimes — fitted by penalised IRLS.

The Gamma/log combination is also numerically pleasant: the IRLS
working weights are constant (1), so every iteration is a single
penalised least-squares solve on the working response
``z = eta + (y - mu)/mu``.

The smoothing parameter is chosen by generalised cross-validation over
a small grid, like mgcv's default behaviour.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import BSpline

from repro.ml.base import Regressor

_LINK_CLIP = 60.0


class _SplineTerm:
    """Penalised B-spline basis for one feature."""

    def __init__(self, x: np.ndarray, num_basis: int, degree: int = 3) -> None:
        self.lo = float(np.min(x))
        self.hi = float(np.max(x))
        unique = np.unique(x)
        # A term needs enough distinct values to support its basis.
        nb = int(min(num_basis, max(len(unique), 1)))
        self.degree = int(min(degree, max(nb - 1, 1)))
        self.nb = max(nb, self.degree + 1)
        if len(unique) < 2:
            self.degenerate = True
            return
        self.degenerate = False
        # Quantile-based interior knots with clamped boundaries.
        n_interior = self.nb - self.degree - 1
        if n_interior > 0:
            qs = np.linspace(0, 1, n_interior + 2)[1:-1]
            interior = np.quantile(unique, qs)
        else:
            interior = np.empty(0)
        self.knots = np.concatenate(
            [
                np.full(self.degree + 1, self.lo),
                interior,
                np.full(self.degree + 1, self.hi),
            ]
        )
        self.center_: np.ndarray | None = None

    def design(self, x: np.ndarray) -> np.ndarray:
        """Design matrix (centred once fitted); clamps out-of-range x."""
        if self.degenerate:
            return np.zeros((len(x), 0))
        x = np.clip(x, self.lo, self.hi)
        B = BSpline.design_matrix(x, self.knots, self.degree).toarray()
        if self.center_ is not None:
            B = B - self.center_
        return B

    def penalty(self) -> np.ndarray:
        """Second-order difference penalty ``D2' D2``."""
        if self.degenerate:
            return np.zeros((0, 0))
        k = self.design_width
        if k < 3:
            return np.eye(k) * 0.0
        D = np.diff(np.eye(k), n=2, axis=0)
        return D.T @ D

    @property
    def design_width(self) -> int:
        return 0 if self.degenerate else len(self.knots) - self.degree - 1


class _TensorTerm:
    """Tensor-product smooth of two features (mgcv's ``te()``).

    The design is the row-wise Kronecker product of two marginal
    B-spline bases; the penalty is the Kronecker sum of the marginal
    difference penalties, penalising wiggliness along each margin.
    Captures interactions a purely additive model cannot (e.g. a
    runtime of the form ``A(p) + B(p) * m``).
    """

    def __init__(
        self, x1: np.ndarray, x2: np.ndarray, num_basis: int, degree: int
    ) -> None:
        self.t1 = _SplineTerm(x1, num_basis, degree)
        self.t2 = _SplineTerm(x2, num_basis, degree)
        self.center_: np.ndarray | None = None

    @property
    def degenerate(self) -> bool:
        return self.t1.degenerate or self.t2.degenerate

    @property
    def design_width(self) -> int:
        if self.degenerate:
            return 0
        return self.t1.design_width * self.t2.design_width

    def raw_design(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        B1 = BSpline.design_matrix(
            np.clip(x1, self.t1.lo, self.t1.hi), self.t1.knots, self.t1.degree
        ).toarray()
        B2 = BSpline.design_matrix(
            np.clip(x2, self.t2.lo, self.t2.hi), self.t2.knots, self.t2.degree
        ).toarray()
        return (B1[:, :, None] * B2[:, None, :]).reshape(len(x1), -1)

    def design(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        if self.degenerate:
            return np.zeros((len(x1), 0))
        B = self.raw_design(x1, x2)
        if self.center_ is not None:
            B = B - self.center_
        return B

    def penalty(self) -> np.ndarray:
        if self.degenerate:
            return np.zeros((0, 0))
        P1 = self.t1.penalty()
        P2 = self.t2.penalty()
        k1, k2 = self.t1.design_width, self.t2.design_width
        return np.kron(P1, np.eye(k2)) + np.kron(np.eye(k1), P2)


class GAMRegressor(Regressor):
    """Additive penalised-spline regression with Gamma or Gaussian family.

    ``interactions`` lists feature-index pairs modelled with a tensor-
    product smooth in addition to the per-feature smooths.
    """

    def __init__(
        self,
        family: str = "gamma",
        num_basis: int = 10,
        degree: int = 3,
        lam: float | None = None,
        lam_grid: tuple[float, ...] = (1e-2, 1e-1, 1.0, 10.0, 100.0),
        max_iter: int = 50,
        tol: float = 1e-8,
        interactions: tuple[tuple[int, int], ...] = (),
        tensor_basis: int = 6,
    ) -> None:
        if family not in ("gamma", "gaussian"):
            raise ValueError("family must be 'gamma' or 'gaussian'")
        for pair in interactions:
            if len(pair) != 2 or pair[0] == pair[1]:
                raise ValueError(f"bad interaction pair {pair!r}")
        self.family = family
        self.num_basis = num_basis
        self.degree = degree
        self.lam = lam
        self.lam_grid = lam_grid
        self.max_iter = max_iter
        self.tol = tol
        self.interactions = tuple(tuple(p) for p in interactions)
        self.tensor_basis = tensor_basis
        self._terms: list[_SplineTerm] = []
        self._tensors: list[_TensorTerm] = []
        self._beta: np.ndarray | None = None
        self.lambda_: float | None = None
        self.edf_: float | None = None

    # ------------------------------------------------------------------
    def _build_design(self, X: np.ndarray) -> np.ndarray:
        blocks = [np.ones((len(X), 1))]
        for j, term in enumerate(self._terms):
            blocks.append(term.design(X[:, j]))
        for (j1, j2), tensor in zip(self.interactions, self._tensors, strict=True):
            blocks.append(tensor.design(X[:, j1], X[:, j2]))
        return np.hstack(blocks)

    def _build_penalty(self, lam: float, width: int) -> np.ndarray:
        P = np.zeros((width, width))
        offset = 1  # skip intercept
        for term in self._terms:
            w = term.design_width
            P[offset : offset + w, offset : offset + w] = lam * term.penalty()
            offset += w
        for tensor in self._tensors:
            w = tensor.design_width
            P[offset : offset + w, offset : offset + w] = lam * tensor.penalty()
            offset += w
        # Tiny ridge keeps the system well posed even with collinear bases.
        P += 1e-9 * np.eye(width)
        return P

    def _pirls(
        self, B: np.ndarray, y: np.ndarray, P: np.ndarray
    ) -> tuple[np.ndarray, float, float]:
        """Penalised IRLS; returns (beta, gcv, edf)."""
        n = len(y)
        if self.family == "gaussian":
            A = B.T @ B + P
            beta = np.linalg.solve(A, B.T @ y)
            fitted = B @ beta
            resid = y - fitted
            edf = float(np.trace(np.linalg.solve(A, B.T @ B)))
            gcv = n * float(resid @ resid) / max(n - edf, 1e-9) ** 2
            return beta, gcv, edf
        # Gamma with log link: constant IRLS weights.
        eta = np.full(n, np.log(np.mean(y)))
        beta = np.zeros(B.shape[1])
        A = B.T @ B + P
        for _ in range(self.max_iter):
            mu = np.exp(np.clip(eta, -_LINK_CLIP, _LINK_CLIP))
            z = eta + (y - mu) / mu
            new_beta = np.linalg.solve(A, B.T @ z)
            new_eta = B @ new_beta
            if np.max(np.abs(new_eta - eta)) < self.tol:
                beta, eta = new_beta, new_eta
                break
            beta, eta = new_beta, new_eta
        mu = np.exp(np.clip(eta, -_LINK_CLIP, _LINK_CLIP))
        # GCV on the Pearson statistic (working-residual form).
        pearson = float(np.sum(((y - mu) / mu) ** 2))
        edf = float(np.trace(np.linalg.solve(A, B.T @ B)))
        gcv = n * pearson / max(n - edf, 1e-9) ** 2
        return beta, gcv, edf

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GAMRegressor":
        X, y = self._validate(X, y)
        if self.family == "gamma" and (y <= 0).any():
            raise ValueError("gamma family requires strictly positive targets")
        for j1, j2 in self.interactions:
            if max(j1, j2) >= X.shape[1]:
                raise ValueError(
                    f"interaction ({j1},{j2}) out of range for "
                    f"{X.shape[1]} features"
                )
        self._terms = [
            _SplineTerm(X[:, j], self.num_basis, self.degree)
            for j in range(X.shape[1])
        ]
        self._tensors = [
            _TensorTerm(X[:, j1], X[:, j2], self.tensor_basis, self.degree)
            for j1, j2 in self.interactions
        ]
        # Centre each smooth for identifiability (intercept absorbs means).
        for j, term in enumerate(self._terms):
            if not term.degenerate:
                raw = BSpline.design_matrix(
                    np.clip(X[:, j], term.lo, term.hi), term.knots, term.degree
                ).toarray()
                term.center_ = raw.mean(axis=0, keepdims=True)
        for (j1, j2), tensor in zip(self.interactions, self._tensors, strict=True):
            if not tensor.degenerate:
                raw = tensor.raw_design(X[:, j1], X[:, j2])
                tensor.center_ = raw.mean(axis=0, keepdims=True)
        B = self._build_design(X)

        lams = (self.lam,) if self.lam is not None else self.lam_grid
        best = None
        for lam in lams:
            P = self._build_penalty(float(lam), B.shape[1])
            beta, gcv, edf = self._pirls(B, y, P)
            if best is None or gcv < best[1]:
                best = (beta, gcv, edf, float(lam))
        assert best is not None
        self._beta, _, self.edf_, self.lambda_ = best
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X, _ = self._validate(X)
        if X.shape[1] != len(self._terms):
            raise ValueError(
                f"expected {len(self._terms)} features, got {X.shape[1]}"
            )
        eta = self._build_design(X) @ self._beta
        if self.family == "gaussian":
            return eta
        return np.exp(np.clip(eta, -_LINK_CLIP, _LINK_CLIP))

    def partial_effect(self, feature: int, grid: np.ndarray) -> np.ndarray:
        """The fitted smooth f_j evaluated on ``grid`` (for diagnostics)."""
        self._check_fitted()
        term = self._terms[feature]
        if term.degenerate:
            return np.zeros(len(grid))
        offset = 1 + sum(t.design_width for t in self._terms[:feature])
        coefs = self._beta[offset : offset + term.design_width]
        return term.design(np.asarray(grid, dtype=float)) @ coefs
