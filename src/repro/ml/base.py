"""Common regressor interface."""

from __future__ import annotations

import abc

import numpy as np


class Regressor(abc.ABC):
    """Minimal fit/predict contract shared by all learners.

    ``fit`` returns ``self`` so pipelines can chain; ``predict`` must
    only be called after ``fit`` (a ``RuntimeError`` is raised
    otherwise). Inputs are 2-D float arrays of shape (n_samples,
    n_features); targets are 1-D.
    """

    _fitted: bool = False

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor":
        """Fit on training data and return ``self``."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X``."""

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(X: np.ndarray, y: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray | None]:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[:, None]
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if not np.isfinite(X).all():
            raise ValueError("X contains non-finite values")
        if y is None:
            return X, None
        y = np.asarray(y, dtype=float).ravel()
        if len(y) != len(X):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if not np.isfinite(y).all():
            raise ValueError("y contains non-finite values")
        return X, y

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted yet")
