"""Linear / ridge regression — the baseline the paper rejected.

"Several processes, such as the MPI algorithm selection problem, are
non-linear and therefore linear regression models fail to provide the
necessary prediction accuracy" (§III-C). Kept for the A3 ablation that
demonstrates exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor


class RidgeRegressor(Regressor):
    """Closed-form ridge regression with intercept.

    ``log_target=True`` fits on ``log(y)`` and predicts
    ``exp(X beta)`` — the fairest linear baseline for positive runtimes
    spanning orders of magnitude.
    """

    def __init__(self, alpha: float = 1e-6, log_target: bool = False) -> None:
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.log_target = log_target
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        X, y = self._validate(X, y)
        if self.log_target:
            if (y <= 0).any():
                raise ValueError("log_target requires strictly positive y")
            y = np.log(y)
        # Centre so the intercept is not penalised.
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        A = Xc.T @ Xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(A, Xc.T @ (y - y_mean))
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X, _ = self._validate(X)
        assert self.coef_ is not None
        eta = X @ self.coef_ + self.intercept_
        return np.exp(eta) if self.log_target else eta
