"""K-nearest-neighbour regression (the paper's KNN learner).

Defaults follow §IV-B: ``k = 5`` (the ``caret`` default the paper kept)
with standardised inputs — the paper scales for KNN even though
unscaled sometimes worked by accident, "for the sake of general
applicability".
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.ml.base import Regressor
from repro.ml.scaling import StandardScaler


class KNNRegressor(Regressor):
    """Mean of the k nearest training targets (Euclidean distance)."""

    def __init__(
        self,
        k: int = 5,
        scale_inputs: bool = True,
        weights: str = "uniform",
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.k = k
        self.scale_inputs = scale_inputs
        self.weights = weights
        self._scaler: StandardScaler | None = None
        self._tree: cKDTree | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        X, y = self._validate(X, y)
        if self.scale_inputs:
            self._scaler = StandardScaler()
            X = self._scaler.fit_transform(X)
        else:
            self._scaler = None
        self._tree = cKDTree(X)
        self._y = y
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X, _ = self._validate(X)
        assert self._tree is not None and self._y is not None
        if self._scaler is not None:
            X = self._scaler.transform(X)
        k = min(self.k, len(self._y))
        dist, idx = self._tree.query(X, k=k)
        if k == 1:
            dist, idx = dist[:, None], idx[:, None]
        neighbours = self._y[idx]
        if self.weights == "uniform":
            return neighbours.mean(axis=1)
        # Inverse-distance weights; an exact hit dominates entirely.
        with np.errstate(divide="ignore"):
            w = 1.0 / dist
        exact = ~np.isfinite(w)
        w[exact.any(axis=1)] = 0.0
        w[exact] = 1.0
        return (neighbours * w).sum(axis=1) / w.sum(axis=1)
