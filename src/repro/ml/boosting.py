"""Gradient-boosted regression trees (the paper's "XGBoost" learner).

Second-order boosting exactly as in Chen & Guestrin (KDD'16): each
round fits a :class:`GradTree` to the loss gradients/hessians at the
current prediction and adds it with learning rate ``eta``.

Objectives (all with a log link, matching the paper's setup for
positive runtimes — §IV-B uses ``reg:tweedie`` because plain linear/
squared error "did not work"):

* ``tweedie`` (default, variance power 1.5) — compound Poisson-Gamma
  deviance, robust for positive, right-skewed targets,
* ``gamma`` — Gamma deviance ("also worked well" per the paper),
* ``squared`` — squared error on the raw scale (identity link), kept
  as the baseline the paper rejected.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.ml.kernels import FlatEnsemble
from repro.ml.tree import GradTree, TreeParams
from repro.utils.rng import SeedLike, as_generator

_OBJECTIVES = ("tweedie", "gamma", "squared")

# Clamp the link-scale score to keep exp() finite whatever the data.
_SCORE_CLIP = 60.0


class GradientBoostingRegressor(Regressor):
    """XGBoost-style booster; defaults follow the paper (200 rounds)."""

    def __init__(
        self,
        n_rounds: int = 200,
        eta: float = 0.3,
        max_depth: int = 6,
        objective: str = "tweedie",
        tweedie_variance_power: float = 1.5,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        rng: SeedLike = None,
    ) -> None:
        if objective not in _OBJECTIVES:
            raise ValueError(
                f"objective must be one of {_OBJECTIVES}, got {objective!r}"
            )
        if not 1.0 < tweedie_variance_power < 2.0:
            raise ValueError("tweedie_variance_power must lie in (1, 2)")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must lie in (0, 1]")
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        self.n_rounds = n_rounds
        self.eta = eta
        self.objective = objective
        self.rho = tweedie_variance_power
        self.subsample = subsample
        self._params = TreeParams(
            max_depth=max_depth,
            min_child_weight=min_child_weight,
            reg_lambda=reg_lambda,
        )
        self._rng = as_generator(rng)
        self._trees: list[GradTree] = []
        self._flat: FlatEnsemble | None = None
        self._base_score: float = 0.0
        self.train_losses_: list[float] = []

    # -- loss derivatives on the link scale -----------------------------
    def _grad_hess(
        self, y: np.ndarray, score: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.objective == "squared":
            return score - y, np.ones_like(y)
        score = np.clip(score, -_SCORE_CLIP, _SCORE_CLIP)
        if self.objective == "gamma":
            # -2 log-lik (up to const) of Gamma with log link.
            exp_neg = y * np.exp(-score)
            return 1.0 - exp_neg, exp_neg
        # Tweedie deviance with log link (XGBoost's reg:tweedie).
        rho = self.rho
        a = y * np.exp((1.0 - rho) * score)
        b = np.exp((2.0 - rho) * score)
        grad = -a + b
        hess = -(1.0 - rho) * a + (2.0 - rho) * b
        return grad, np.maximum(hess, 1e-12)

    def _loss(self, y: np.ndarray, score: np.ndarray) -> float:
        score = np.clip(score, -_SCORE_CLIP, _SCORE_CLIP)
        if self.objective == "squared":
            # 0.5 factor so the analytic gradient (score - y) is the
            # exact derivative of this monitored loss.
            return float(0.5 * np.mean((score - y) ** 2))
        if self.objective == "gamma":
            return float(np.mean(score + y * np.exp(-score)))
        rho = self.rho
        dev = -y * np.exp((1 - rho) * score) / (1 - rho) + np.exp(
            (2 - rho) * score
        ) / (2 - rho)
        return float(np.mean(dev))

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X, y = self._validate(X, y)
        if self.objective != "squared" and (y <= 0).any():
            raise ValueError(
                f"{self.objective} objective requires strictly positive targets"
            )
        if self.objective == "squared":
            self._y_scale = 1.0
            self._base_score = float(np.mean(y))
        else:
            # Normalise targets to mean 1: Tweedie/Gamma hessians scale
            # with the target magnitude, and microsecond-scale runtimes
            # would otherwise shrink every hessian below
            # min_child_weight, freezing the trees. Predictions are
            # scaled back in predict().
            self._y_scale = float(np.mean(y))
            if self._y_scale <= 0:
                raise ValueError("targets must have positive mean")
            y = y / self._y_scale
            self._base_score = float(np.log(np.mean(y)))
        score = np.full(len(y), self._base_score)
        self._trees = []
        self.train_losses_ = []
        n = len(y)
        for _ in range(self.n_rounds):
            grad, hess = self._grad_hess(y, score)
            if self.subsample < 1.0:
                keep = self._rng.random(n) < self.subsample
                if not keep.any():
                    keep[self._rng.integers(n)] = True
                # Zero out dropped samples' statistics.
                grad = np.where(keep, grad, 0.0)
                hess = np.where(keep, hess, 0.0)
            tree = GradTree(self._params, rng=self._rng)
            tree.fit(X, grad, hess)
            update = tree.predict(X)
            score = score + self.eta * update
            self._trees.append(tree)
            self.train_losses_.append(self._loss(y, score))
        self._flat = None  # stale ensemble kernel, recompile lazily
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    @property
    def flat(self) -> FlatEnsemble:
        """All rounds compiled into one flat node pool (lazy, cached)."""
        self._check_fitted()
        if self._flat is None:
            self._flat = FlatEnsemble.from_roots(
                [t._root for t in self._trees]  # noqa: SLF001 - same module family
            )
        return self._flat

    def _link(self, score: np.ndarray) -> np.ndarray:
        if self.objective == "squared":
            return score
        return self._y_scale * np.exp(np.clip(score, -_SCORE_CLIP, _SCORE_CLIP))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction via the flat ensemble kernel.

        One level-wise descent computes the (n_rows, n_rounds) leaf
        matrix; the learning-rate accumulation then replays the exact
        round order of :meth:`predict_recursive`, so results are
        bit-identical to the oracle.
        """
        self._check_fitted()
        X, _ = self._validate(X)
        score = self.flat.predict_weighted_sum(X, self.eta, self._base_score)
        return self._link(score)

    def predict_recursive(self, X: np.ndarray) -> np.ndarray:
        """Reference per-tree traversal (parity oracle for the kernel)."""
        self._check_fitted()
        X, _ = self._validate(X)
        score = np.full(len(X), self._base_score)
        for tree in self._trees:
            score += self.eta * tree.predict_recursive(X)
        return self._link(score)

    @property
    def n_trees_(self) -> int:
        """Number of fitted boosting rounds."""
        return len(self._trees)
