"""Command-line interface.

::

    mpicollpred machines                      # Table I
    mpicollpred generate d1 --scale ci        # benchmark one dataset
    mpicollpred generate d1 --resume          # pick up an interrupted run
    mpicollpred tune --machine Hydra --library "Open MPI" \\
        --collective bcast --nodes 34 --ppn 32 -o rules.conf
    mpicollpred experiment fig4 --scale ci    # regenerate an exhibit
    mpicollpred experiment all --scale ci
    mpicollpred report --telemetry run.jsonl  # summarize a telemetry log
    mpicollpred serve --machine Hydra --rules hydra_bcast_rules.conf
                                              # JSONL request loop on stdin

``--telemetry PATH`` (on ``generate``/``tune``) streams structured
JSONL events — hierarchical spans, counters — to ``PATH`` (``-`` for a
pretty stderr feed); ``mpicollpred report --telemetry PATH`` digests
the log afterwards. ``--resume`` replays the chunk journal an
interrupted campaign left behind, producing a dataset bit-identical
to an uninterrupted run.

(Entry point installed by the package; ``python -m repro.cli`` works
too.)
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import Iterator

from repro.experiments.datasets import DATASETS, Scale, generate_dataset
from repro.utils.units import parse_bytes


@contextlib.contextmanager
def _telemetry_to(destination: str | None) -> Iterator[None]:
    """Attach a telemetry sink for the body (``-`` = pretty stderr).

    Counters are flushed into the stream on exit so the log ends with
    the campaign's final tallies — that is what ``report --telemetry``
    renders in its counter table.
    """
    if destination is None:
        yield
        return
    from repro.obs import FileSink, StderrSink, get_telemetry

    telemetry = get_telemetry()
    sink = StderrSink() if destination == "-" else FileSink(destination)
    telemetry.add_sink(sink)
    try:
        yield
        telemetry.flush()
    finally:
        telemetry.remove_sink(sink)
        sink.close()
        if destination != "-":
            print(f"telemetry written to {destination}")


def _cmd_machines(args: argparse.Namespace) -> int:
    from repro.experiments.tables import table1

    print(table1().render())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.experiments.cache import cache_dir

    t0 = time.time()
    stem = cache_dir() / f"{args.dataset}-{args.scale}-s{args.seed}"
    stem.parent.mkdir(parents=True, exist_ok=True)
    faults = None
    if getattr(args, "chaos", None) is not None:
        from repro.bench.faults import FaultSpec

        faults = FaultSpec.uniform(args.chaos, seed=args.seed)
    with _telemetry_to(args.telemetry):
        # Always journal next to the dataset: an interrupted campaign
        # can then be picked up with --resume at zero extra cost.
        dataset = generate_dataset(
            args.dataset, args.scale, seed=args.seed,
            checkpoint=stem, resume=args.resume, faults=faults,
        )
        dataset.save(stem)
    print(
        f"{dataset.name}: {len(dataset)} samples in {time.time() - t0:.1f}s "
        f"-> {stem}.npz"
    )
    for key, value in dataset.summary().items():
        print(f"  {key}: {value}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.bench.runner import GridSpec
    from repro.core.tuner import AutoTuner
    from repro.machine.zoo import get_machine
    from repro.mpilib import get_library

    machine = get_machine(args.machine)
    library = get_library(args.library)
    tuner = AutoTuner(machine, library, args.collective, learner=args.learner,
                      seed=args.seed)
    # Train on a small practical grid around the target allocation.
    nodes_grid = sorted(
        {max(1, args.nodes // 2), args.nodes, min(machine.max_nodes, args.nodes * 2)}
    )
    ppns_grid = sorted({1, max(1, args.ppn // 2), args.ppn})
    msizes = (1, 256, 4096, 65536, 524288, 4194304)
    print(f"benchmarking {library.name} {args.collective} on {machine.name} ...")
    with _telemetry_to(args.telemetry):
        tuner.benchmark(
            GridSpec(tuple(nodes_grid), tuple(ppns_grid), msizes),
            checkpoint=f"{args.output}.campaign", resume=args.resume,
        )
        tuner.train()
        text = tuner.write_rules(
            args.output, args.nodes, args.ppn, fmt=args.format
        )
    print(f"wrote {args.output}:")
    print(text)
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.core.dataset import PerfDataset
    from repro.core.selector import AlgorithmSelector
    from repro.ml import PAPER_LEARNERS

    dataset = PerfDataset.load(args.dataset_file)
    selector = AlgorithmSelector(PAPER_LEARNERS[args.learner]).fit(dataset)
    cfg = selector.select(args.nodes, args.ppn, parse_bytes(args.msize))
    print(f"predicted best configuration: {cfg.label}")
    for rank, (c, t) in enumerate(
        selector.ranked(args.nodes, args.ppn, parse_bytes(args.msize))[:5], 1
    ):
        print(f"  {rank}. {c.label:40s} predicted {t * 1e6:10.1f} us")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.machine.zoo import get_machine
    from repro.mpilib import get_library
    from repro.serve import ModelRegistry, PredictionService, serve_lines

    if args.workers:
        # fleet mode: a socket front-end over worker subprocesses
        # (stdin JSONL stays the --workers 0 default)
        from repro.serve.fleet import FleetSpec, run_fleet

        if args.tune:
            print(
                "serve: --tune is incompatible with --workers N (worker "
                "specs ship rules files, not in-process models); tune "
                "first, export rules, then serve them",
                file=sys.stderr,
            )
            return 2
        spec = FleetSpec(
            machine=args.machine,
            library=args.library,
            rules=tuple(args.rules or ()),
            workers=args.workers,
            mode=args.mode,
            cache_size=args.cache_size,
            compiled=args.compiled,
            queue_depth=args.queue_depth,
            max_worker_restarts=args.max_worker_restarts,
            call_timeout_s=args.call_timeout,
            chaos_ops=args.chaos_ops,
            feedback_dir=args.feedback_dir or "",
            feedback_seed=args.feedback_seed,
            feedback_shift=args.feedback_shift,
            feedback_shift_algids=_parse_algids(args.feedback_shift_algids),
        )
        return run_fleet(spec, host=args.host, port=args.port)

    machine = get_machine(args.machine)
    library = get_library(args.library)
    registry = ModelRegistry(machine, library)
    for path in args.rules or ():
        version = registry.load_rules(path)
        print(
            f"loaded {path} -> {version.collective} v{version.version}",
            file=sys.stderr,
        )
    if args.tune:
        from repro.bench.runner import GridSpec
        from repro.core.tuner import AutoTuner

        tuner = AutoTuner(
            machine, library, args.tune, learner=args.learner, seed=args.seed
        )
        nodes_grid = sorted(
            {max(1, args.nodes // 2), args.nodes,
             min(machine.max_nodes, args.nodes * 2)}
        )
        ppns_grid = sorted({1, max(1, args.ppn // 2), args.ppn})
        msizes = (1, 256, 4096, 65536, 524288, 4194304)
        print(
            f"tuning {library.name} {args.tune} on {machine.name} ...",
            file=sys.stderr,
        )
        tuner.benchmark(GridSpec(tuple(nodes_grid), tuple(ppns_grid), msizes))
        tuner.train()
        version = registry.publish(tuner.servable(), tag="autotuner")
        print(
            f"trained {args.tune} -> v{version.version}", file=sys.stderr
        )
    if not registry.collectives():
        print(
            "serve: no models published (pass --rules and/or --tune); "
            "requests will fall back to the library default",
            file=sys.stderr,
        )
    feedback = None
    if args.feedback_dir:
        from pathlib import Path

        from repro.core.feedback import FeedbackConfig, FeedbackLogger

        feedback = FeedbackLogger(
            FeedbackConfig(
                path=str(Path(args.feedback_dir) / "feedback.jsonl"),
                seed=args.feedback_seed,
                shift=args.feedback_shift,
                shift_algids=_parse_algids(args.feedback_shift_algids),
            ),
            machine,
            library,
        )
        print(f"feedback log: {feedback.path}", file=sys.stderr)
    service = PredictionService(
        registry, mode=args.mode, cache_size=args.cache_size,
        compiled=args.compiled, feedback=feedback,
    )
    source = open(args.requests) if args.requests else sys.stdin
    try:
        with _telemetry_to(args.telemetry):
            served = serve_lines(service, source, sys.stdout)
    except KeyboardInterrupt:
        print("serve: interrupted", file=sys.stderr)
        return 130
    finally:
        if args.requests:
            source.close()
        if feedback is not None:
            feedback.close()
    print(f"served {served} request(s)", file=sys.stderr)
    return 0


def _parse_algids(text: str | None) -> tuple[int, ...]:
    """'1,7' -> (1, 7); empty/None -> () (shift applies to all algids)."""
    if not text:
        return ()
    return tuple(int(part) for part in text.split(",") if part.strip())


def _fleet_reload(endpoint: str, rules_path: str) -> dict:
    """Poke a running fleet's two-phase reload with a new rules file."""
    import json
    import socket

    host, _, port = endpoint.rpartition(":")
    with socket.create_connection((host or "127.0.0.1", int(port))) as sock:
        with sock.makefile("rw", encoding="utf-8", newline="\n") as stream:
            stream.write(
                json.dumps({"op": "reload", "path": rules_path}) + "\n"
            )
            stream.flush()
            return json.loads(stream.readline())


def _cmd_retrain(args: argparse.Namespace) -> int:
    from repro.core.dataset import PerfDataset
    from repro.core.feedback import WorldShift, read_feedback
    from repro.core.retrain import Retrainer, RetrainPolicy, RetrainResult
    from repro.machine.zoo import get_machine
    from repro.mpilib import get_library

    machine = get_machine(args.machine)
    library = get_library(args.library)
    base = PerfDataset.load(args.dataset)
    retrainer = Retrainer(
        machine,
        library,
        args.collective,
        base,
        seed=args.seed,
        learner=args.learner,
        policy=RetrainPolicy(
            threshold=args.threshold,
            min_samples=args.min_samples,
            window=args.window,
            exhaustive=args.exhaustive,
            margin=args.margin,
        ),
        shift=WorldShift(
            factor=args.shift, algids=_parse_algids(args.shift_algids)
        ),
    )

    def publish(result: RetrainResult) -> None:
        print(
            f"retrained {result.collective}: measured "
            f"{result.measured_samples}/{result.full_grid_samples} samples "
            f"(budget_frac={result.budget_frac:.3f}, "
            f"{result.disagreements}/{result.instances} instances flagged, "
            f"log_shift={result.log_shift:+.3f})",
            file=sys.stderr,
        )
        if args.rules_out:
            msizes = tuple(sorted(set(result.dataset.msize.tolist())))
            result.tuner.write_rules(
                args.rules_out, args.nodes, args.ppn,
                msizes=msizes or (1,),
            )
            result.rules_path = args.rules_out
            print(f"wrote rules -> {args.rules_out}", file=sys.stderr)
            if args.fleet:
                answer = _fleet_reload(args.fleet, args.rules_out)
                print(
                    f"fleet reload @{args.fleet}: {answer}", file=sys.stderr
                )

    with _telemetry_to(args.telemetry):
        if args.watch:
            try:
                results = retrainer.watch(
                    args.feedback,
                    interval_s=args.interval,
                    max_rounds=args.max_rounds,
                    on_result=publish,
                )
            except KeyboardInterrupt:
                print("retrain: interrupted", file=sys.stderr)
                return 130
            print(f"watch loop exited after {len(results)} retrain(s)",
                  file=sys.stderr)
            return 0
        rows = read_feedback(args.feedback)
        drifting = retrainer.scan(rows)
        if not drifting and not args.force:
            print(
                f"no drift over {len(rows)} feedback row(s) "
                f"(threshold {args.threshold}); pass --force to retrain "
                "anyway",
                file=sys.stderr,
            )
            return 0
        publish(retrainer.retrain(rows))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import report_telemetry

    print(report_telemetry(args.telemetry, top=args.top))
    return 0


_EXPERIMENTS = {
    "table1": ("repro.experiments.tables", "table1", False),
    "table2": ("repro.experiments.tables", "table2", True),
    "table3": ("repro.experiments.tables", "table3", False),
    "table4a": ("repro.experiments.tables", "table4", True),
    "table4b": ("repro.experiments.tables", "table4", True),
    "fig2": ("repro.experiments.figures", "figure2", True),
    "fig4": ("repro.experiments.figures", "figure4", True),
    "fig5": ("repro.experiments.figures", "figure5", True),
    "fig6": ("repro.experiments.figures", "figure6", True),
    "fig7": ("repro.experiments.figures", "figure7", True),
    "fig8": ("repro.experiments.figures", "figure8", True),
    "ext-online": ("repro.experiments.extensions", "online_vs_offline", True),
    "ext-guidelines": ("repro.experiments.extensions", "guidelines_exhibit", True),
    "ext-collectives": ("repro.experiments.extensions", "extension_speedups", True),
    "ablation-noise": ("repro.experiments.extensions", "noise_sensitivity", True),
    "random-split": ("repro.experiments.extensions", "randomized_split", True),
    "ext-mvapich": ("repro.experiments.extensions", "mvapich_class_tuning", True),
    "model-errors": ("repro.experiments.model_errors", "model_error_table", True),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    names = list(_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        module_name, func_name, takes_scale = _EXPERIMENTS[name]
        func = getattr(importlib.import_module(module_name), func_name)
        t0 = time.time()
        kwargs = {}
        if takes_scale:
            kwargs["scale"] = args.scale
        if name == "table4b":
            kwargs["small"] = True
        if name == "table3":
            kwargs = {"scale": args.scale}
        exhibit = func(**kwargs)
        print(exhibit.render())
        print(f"[{name} regenerated in {time.time() - t0:.1f}s]\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mpicollpred",
        description="ML-based algorithm selection for MPI collectives "
        "(CLUSTER'20 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="show the machine zoo (Table I)")

    p = sub.add_parser("generate", help="benchmark one Table II dataset")
    p.add_argument(
        "dataset", choices=sorted([*DATASETS, "dx1", "dx2"])
    )
    p.add_argument("--scale", choices=[s.value for s in Scale], default="ci")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--resume", action="store_true",
        help="replay the chunk journal of an interrupted campaign "
        "(bit-identical to an uninterrupted run)",
    )
    p.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write JSONL telemetry events to PATH ('-' = pretty stderr)",
    )
    p.add_argument(
        "--chaos", type=float, metavar="RATE", default=None,
        help="inject deterministic faults at RATE (0..1) into the "
        "campaign: straggler spikes, jitter bursts, NaN observations, "
        "chunk crashes, journal corruption (see docs/robustness.md)",
    )

    p = sub.add_parser("tune", help="benchmark + train + emit a rules file")
    p.add_argument("--machine", default="Hydra")
    p.add_argument("--library", default="Open MPI")
    p.add_argument("--collective", default="bcast",
                   choices=["bcast", "allreduce", "alltoall",
                            "reduce", "allgather"])
    p.add_argument("--learner", default="GAM")
    p.add_argument("--nodes", type=int, required=True)
    p.add_argument("--ppn", type=int, required=True)
    p.add_argument("--format", choices=["ompi", "json"], default="ompi")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default="tuned_rules.conf")
    p.add_argument(
        "--resume", action="store_true",
        help="replay the chunk journal of an interrupted campaign",
    )
    p.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write JSONL telemetry events to PATH ('-' = pretty stderr)",
    )

    p = sub.add_parser("predict", help="query a selector trained on a saved dataset")
    p.add_argument("dataset_file", help="path stem of a saved dataset (.npz/.json)")
    p.add_argument("--learner", default="GAM")
    p.add_argument("--nodes", type=int, required=True)
    p.add_argument("--ppn", type=int, required=True)
    p.add_argument("--msize", required=True, help="message size, e.g. 64K")

    p = sub.add_parser("experiment", help="regenerate a paper exhibit")
    p.add_argument("name", choices=["all", *sorted(_EXPERIMENTS)])
    p.add_argument("--scale", choices=[s.value for s in Scale], default="ci")

    p = sub.add_parser(
        "serve",
        help="JSONL prediction service over stdin (see docs/serving.md)",
    )
    p.add_argument("--machine", default="Hydra")
    p.add_argument("--library", default="Open MPI")
    p.add_argument(
        "--rules", action="append", metavar="PATH", default=[],
        help="publish a tuned rules file (repeatable; collective is "
        "read from the file)",
    )
    p.add_argument(
        "--tune", metavar="COLLECTIVE", default=None,
        choices=["bcast", "allreduce", "alltoall", "reduce", "allgather"],
        help="benchmark + train a model in-process before serving",
    )
    p.add_argument("--learner", default="KNN",
                   help="learner for --tune (default: KNN)")
    p.add_argument("--nodes", type=int, default=4,
                   help="target allocation nodes for --tune")
    p.add_argument("--ppn", type=int, default=2,
                   help="target allocation ppn for --tune")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--mode", choices=["exact", "surface"], default="exact",
        help="exact batched selection, or precomputed surface shards",
    )
    p.add_argument(
        "--compiled", action=argparse.BooleanOptionalAction, default=True,
        help="serve covered instances from compiled decision tables "
        "(branchless flat lookup; uncovered instances fall through)",
    )
    p.add_argument("--cache-size", type=int, default=4096,
                   help="L1 recommendation LRU capacity")
    p.add_argument(
        "--requests", metavar="PATH", default=None,
        help="read JSONL requests from PATH instead of stdin",
    )
    p.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write JSONL telemetry events to PATH ('-' = pretty stderr)",
    )
    p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run a socket fleet of N worker processes instead of the "
        "stdin loop (consistent-hash routed, coordinated reload, "
        "GET /metrics Prometheus scrape; see docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="fleet listen address (with --workers)")
    p.add_argument(
        "--port", type=int, default=8077,
        help="fleet listen port (with --workers; 0 = ephemeral, the "
        "chosen port is printed to stderr)",
    )
    p.add_argument(
        "--queue-depth", type=int, default=128, metavar="N",
        help="per-worker in-flight high-water mark; beyond it requests "
        "are shed with error='overloaded' instead of queueing (fleet)",
    )
    p.add_argument(
        "--max-worker-restarts", type=int, default=5, metavar="N",
        help="crashes per worker inside a 30s window before its circuit "
        "breaker holds it open (fleet; see docs/robustness.md)",
    )
    p.add_argument(
        "--call-timeout", type=float, default=60.0, metavar="SECONDS",
        help="per-request worker deadline; a wedged worker is killed "
        "and respawned when a call exceeds it (fleet)",
    )
    p.add_argument(
        "--chaos-ops", action="store_true",
        help="admit seeded fault-injection ops (kill/wedge/garbage/"
        "crash) over the socket — chaos harness only, never production",
    )
    p.add_argument(
        "--feedback-dir", metavar="DIR", default=None,
        help="append served recommendations + simulated observations "
        "as JSONL under DIR (per-worker files in fleet mode) — the "
        "closed loop's measure step (see docs/online-learning.md)",
    )
    p.add_argument("--feedback-seed", type=int, default=0,
                   help="seed of the simulated observation RNG")
    p.add_argument(
        "--feedback-shift", type=float, default=1.0, metavar="FACTOR",
        help="injected world shift: scale observed times by FACTOR "
        "(drift drills; 1.0 = stationary)",
    )
    p.add_argument(
        "--feedback-shift-algids", metavar="IDS", default=None,
        help="comma-separated algids the shift applies to (default all)",
    )

    p = sub.add_parser(
        "retrain",
        help="drift-triggered refit on base + feedback rows with active "
        "sampling; publishes rules for the fleet's two-phase reload "
        "(see docs/online-learning.md)",
    )
    p.add_argument(
        "--feedback", metavar="PATH", required=True,
        help="feedback JSONL file, or a directory of per-worker files",
    )
    p.add_argument(
        "--dataset", metavar="PATH", required=True,
        help="base campaign dataset (.npz written by generate/tune)",
    )
    p.add_argument("--collective", default="bcast",
                   choices=["bcast", "allreduce", "alltoall", "reduce",
                            "allgather"])
    p.add_argument("--machine", default="Hydra")
    p.add_argument("--library", default="Open MPI")
    p.add_argument("--learner", default="GAM")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--threshold", type=float, default=0.25,
        help="drift trigger: |median log-residual - baseline| above this",
    )
    p.add_argument("--min-samples", type=int, default=30,
                   help="residuals required before the trigger may fire")
    p.add_argument("--window", type=int, default=512,
                   help="bounded residual window per (collective, version)")
    p.add_argument(
        "--margin", type=float, default=0.05,
        help="relative regret under which model families count as "
        "agreeing (active-sampling flag + agreement grading)",
    )
    p.add_argument(
        "--exhaustive", action="store_true",
        help="measure every feedback instance (the naive full-grid "
        "refit active sampling is graded against)",
    )
    p.add_argument(
        "--shift", type=float, default=1.0, metavar="FACTOR",
        help="simulated world shift applied when measuring (stands in "
        "for the drifted machine; match the serve-side drill)",
    )
    p.add_argument("--shift-algids", metavar="IDS", default=None,
                   help="comma-separated algids the shift applies to")
    p.add_argument(
        "--force", action="store_true",
        help="one-shot mode: retrain even when the detector is quiet",
    )
    p.add_argument("--watch", action="store_true",
                   help="poll the feedback log and retrain on every "
                   "drift trigger instead of one-shot")
    p.add_argument("--interval", type=float, default=0.5, metavar="SECONDS",
                   help="poll interval for --watch")
    p.add_argument(
        "--max-rounds", type=int, default=0, metavar="N",
        help="exit --watch after N retrains (0 = run until interrupted)",
    )
    p.add_argument(
        "--rules-out", metavar="PATH", default=None,
        help="write the refitted selection table as a rules file here",
    )
    p.add_argument("--nodes", type=int, default=4,
                   help="allocation nodes for --rules-out")
    p.add_argument("--ppn", type=int, default=2,
                   help="allocation ppn for --rules-out")
    p.add_argument(
        "--fleet", metavar="HOST:PORT", default=None,
        help="after writing --rules-out, trigger this fleet's "
        "coordinated two-phase reload over its socket",
    )
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="write JSONL telemetry events to PATH")

    p = sub.add_parser(
        "lint",
        help="repo-aware static analysis: determinism, atomic writes, "
        "asyncio-safety, lock discipline (REP001-REP006; see "
        "docs/static-analysis.md)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p)

    p = sub.add_parser(
        "report", help="summarize a telemetry JSONL log (top spans, counters)"
    )
    p.add_argument(
        "--telemetry", metavar="PATH", required=True,
        help="JSONL event log written by --telemetry on generate/tune",
    )
    p.add_argument(
        "--top", type=int, default=10,
        help="how many spans to show (by total wall time)",
    )

    return parser


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "machines": _cmd_machines,
    "generate": _cmd_generate,
    "tune": _cmd_tune,
    "predict": _cmd_predict,
    "experiment": _cmd_experiment,
    "serve": _cmd_serve,
    "retrain": _cmd_retrain,
    "lint": _cmd_lint,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
