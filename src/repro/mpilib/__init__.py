"""Simulated MPI libraries: tuning spaces + hard-coded default selection.

Each library exposes, per collective, the set of algorithm
configurations a user could force (the tuning space the paper
benchmarks) and a *default decision logic* — the hard-coded heuristic
the paper's "Default" strategy refers to:

* :class:`OpenMPILibrary` — threshold rules modelled on Open MPI's
  ``coll_tuned_decision_fixed.c``.
* :class:`IntelMPILibrary` — a table-driven default produced by coarse
  offline tuning on the same machine family (which is why, exactly as
  the paper observes, it is much harder to beat).
* :class:`MVAPICHLibrary` — size-class-based selection (small / medium /
  large message regimes), the "slightly different concept" §IV-B notes.
"""

from repro.mpilib.base import MPILibrary
from repro.mpilib.openmpi import OpenMPILibrary
from repro.mpilib.intelmpi import IntelMPILibrary
from repro.mpilib.mvapich import MVAPICHLibrary

LIBRARIES: dict[str, type[MPILibrary]] = {
    "Open MPI": OpenMPILibrary,
    "Intel MPI": IntelMPILibrary,
    "MVAPICH": MVAPICHLibrary,
}


def get_library(name: str) -> MPILibrary:
    """Instantiate a library by (case-insensitive, space-insensitive) name."""
    key = name.lower().replace(" ", "")
    for lib_name, cls in LIBRARIES.items():
        if lib_name.lower().replace(" ", "") == key:
            return cls()
    raise KeyError(f"unknown MPI library {name!r}; known: {', '.join(LIBRARIES)}")


__all__ = [
    "MPILibrary",
    "OpenMPILibrary",
    "IntelMPILibrary",
    "MVAPICHLibrary",
    "LIBRARIES",
    "get_library",
]
