"""MVAPICH-like library: size-class-based algorithm selection.

The paper (§IV-B): "our techniques are … potentially also [applicable]
to MVAPICH, although MVAPICH uses a slightly different concept for the
algorithm selection, where the algorithm for small, medium, or large
messages can be altered."

This façade reproduces that concept: its *default* is a fixed
(size-class → algorithm) table, and its tuning knob is not a free
per-instance override but one algorithm choice per size class — the
deployment mode :func:`repro.core.class_tuner.tune_size_classes`
targets.
"""

from __future__ import annotations

import enum

from repro.collectives.base import AlgorithmConfig, CollectiveKind, ConfigSpace
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary
from repro.utils.units import KiB

_mk = AlgorithmConfig.make


class SizeClass(str, enum.Enum):
    """MVAPICH's three message regimes."""

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"


#: class boundaries (bytes): small < 8 KiB <= medium < 512 KiB <= large
SMALL_LIMIT = 8 * KiB
MEDIUM_LIMIT = 512 * KiB


def size_class(nbytes: int) -> SizeClass:
    """Classify a message size into MVAPICH's regimes."""
    if nbytes < SMALL_LIMIT:
        return SizeClass.SMALL
    if nbytes < MEDIUM_LIMIT:
        return SizeClass.MEDIUM
    return SizeClass.LARGE


def _bcast_space() -> tuple[AlgorithmConfig, ...]:
    return (
        _mk(CollectiveKind.BCAST, 1, "binomial", segsize=None),
        _mk(CollectiveKind.BCAST, 2, "knomial", segsize=None, radix=4),
        _mk(CollectiveKind.BCAST, 3, "knomial", segsize=None, radix=8),
        _mk(CollectiveKind.BCAST, 4, "scatter_allgather"),
        _mk(CollectiveKind.BCAST, 5, "scatter_ring_allgather"),
        _mk(CollectiveKind.BCAST, 6, "pipeline", segsize=64 * KiB),
        _mk(CollectiveKind.BCAST, 7, "hier_binomial", segsize=None),
        _mk(CollectiveKind.BCAST, 8, "hier_knomial", segsize=None, radix=4),
    )


def _allreduce_space() -> tuple[AlgorithmConfig, ...]:
    return (
        _mk(CollectiveKind.ALLREDUCE, 1, "recursive_doubling"),
        _mk(CollectiveKind.ALLREDUCE, 2, "rabenseifner"),
        _mk(CollectiveKind.ALLREDUCE, 3, "ring"),
        _mk(CollectiveKind.ALLREDUCE, 4, "segmented_ring", segsize=64 * KiB),
        _mk(CollectiveKind.ALLREDUCE, 5, "knomial_reduce_bcast", radix=4),
        _mk(CollectiveKind.ALLREDUCE, 6, "hier_recursive_doubling"),
        _mk(CollectiveKind.ALLREDUCE, 7, "hier_rabenseifner"),
        _mk(CollectiveKind.ALLREDUCE, 8, "hier_ring"),
    )


def _alltoall_space() -> tuple[AlgorithmConfig, ...]:
    return (
        _mk(CollectiveKind.ALLTOALL, 1, "bruck"),
        _mk(CollectiveKind.ALLTOALL, 2, "linear"),
        _mk(CollectiveKind.ALLTOALL, 3, "pairwise"),
    )


#: factory defaults: one algorithm id per (collective, size class) —
#: the structure MVAPICH ships in its architecture tables.
_DEFAULT_CLASS_TABLE: dict[CollectiveKind, dict[SizeClass, int]] = {
    CollectiveKind.BCAST: {
        SizeClass.SMALL: 1,   # binomial
        SizeClass.MEDIUM: 2,  # 4-nomial
        SizeClass.LARGE: 5,   # scatter-ring-allgather
    },
    CollectiveKind.ALLREDUCE: {
        SizeClass.SMALL: 1,   # recursive doubling
        SizeClass.MEDIUM: 2,  # rabenseifner
        SizeClass.LARGE: 3,   # ring
    },
    CollectiveKind.ALLTOALL: {
        SizeClass.SMALL: 1,   # bruck
        SizeClass.MEDIUM: 2,  # linear
        SizeClass.LARGE: 3,   # pairwise
    },
}


class MVAPICHLibrary(MPILibrary):
    """MVAPICH 2.3 stand-in with per-size-class selection.

    ``set_class_algorithm`` mirrors the ``MV2_*_TUNING`` environment
    knobs: the user (or our class tuner) overrides the algorithm of one
    size class, and the default logic then serves it for every message
    in that class.
    """

    name = "MVAPICH"
    version = "2.3"

    def __init__(self) -> None:
        self._spaces = {
            CollectiveKind.BCAST: ConfigSpace(
                CollectiveKind.BCAST, self.name, _bcast_space()
            ),
            CollectiveKind.ALLREDUCE: ConfigSpace(
                CollectiveKind.ALLREDUCE, self.name, _allreduce_space()
            ),
            CollectiveKind.ALLTOALL: ConfigSpace(
                CollectiveKind.ALLTOALL, self.name, _alltoall_space()
            ),
        }
        # Instance-level copy so overrides don't leak across libraries.
        self._class_table = {
            kind: dict(classes)
            for kind, classes in _DEFAULT_CLASS_TABLE.items()
        }

    def config_space(self, collective: CollectiveKind | str) -> ConfigSpace:
        return self._spaces[CollectiveKind(collective)]

    # ------------------------------------------------------------------
    def default_config(
        self,
        machine: MachineModel,
        topo: Topology,
        collective: CollectiveKind | str,
        nbytes: int,
    ) -> AlgorithmConfig:
        kind = CollectiveKind(collective)
        algid = self._class_table[kind][size_class(nbytes)]
        space = self._spaces[kind]
        for cfg in space.configs:
            if cfg.algid == algid:
                return cfg
        raise KeyError(f"class table references unknown algid {algid}")

    # ------------------------------------------------------------------
    def class_algorithm(
        self, collective: CollectiveKind | str, cls: SizeClass
    ) -> AlgorithmConfig:
        """The configuration currently serving a size class."""
        kind = CollectiveKind(collective)
        algid = self._class_table[kind][cls]
        return next(
            cfg for cfg in self._spaces[kind].configs if cfg.algid == algid
        )

    def set_class_algorithm(
        self,
        collective: CollectiveKind | str,
        cls: SizeClass,
        config: AlgorithmConfig,
    ) -> None:
        """Override one size class (the MV2_* tuning knob)."""
        kind = CollectiveKind(collective)
        if config not in self._spaces[kind].configs:
            raise KeyError(
                f"{config.label} is not in MVAPICH's {kind} menu"
            )
        self._class_table[kind][SizeClass(cls)] = config.algid
