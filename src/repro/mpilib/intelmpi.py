"""Intel-MPI-like library: tuning space and table-driven default.

Intel MPI ships decision tables produced by offline tuning on Intel's
own clusters; on hardware resembling those clusters its defaults are
close to optimal (the paper's Figure 6 finding). We reproduce the
*mechanism*: when first asked for a default on a machine, the library
tunes itself on a coarse grid of (nodes, ppn, message size) points
using noise-free cost evaluations, then answers default queries by
nearest-gridpoint lookup in log space. Off-grid instances (odd node
counts, unusual ppn) therefore get slightly stale answers — the same
failure mode the paper's tuning-tool discussion (§II) describes.

The tuning spaces carry Intel's characteristically wide algorithm menu
including topology-aware (hierarchical) variants, ids following the
``I_MPI_ADJUST_*`` convention.
"""

from __future__ import annotations

from repro.collectives.base import AlgorithmConfig, CollectiveKind, ConfigSpace
from repro.collectives.registry import algorithm_from_config
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary
from repro.utils.units import KiB, MiB

import numpy as np

_mk = AlgorithmConfig.make

#: grid used by the self-tuning pass (clipped to the machine's limits)
TUNE_NODES: tuple[int, ...] = (2, 4, 8, 16, 32)
TUNE_MSIZES: tuple[int, ...] = (
    1, 64, KiB, 16 * KiB, 256 * KiB, MiB, 4 * MiB
)


def _bcast_space() -> tuple[AlgorithmConfig, ...]:
    configs: list[AlgorithmConfig] = [_mk(CollectiveKind.BCAST, 1, "linear")]
    for seg in (None, 4 * KiB, 16 * KiB, 64 * KiB):
        configs.append(_mk(CollectiveKind.BCAST, 2, "binomial", segsize=seg))
    for radix in (2, 4, 8):
        for seg in (None, 16 * KiB):
            configs.append(
                _mk(CollectiveKind.BCAST, 3, "knomial", segsize=seg, radix=radix)
            )
    for seg in (KiB, 4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB):
        configs.append(_mk(CollectiveKind.BCAST, 4, "pipeline", segsize=seg))
    for seg in (4 * KiB, 16 * KiB, 64 * KiB):
        for chains in (2, 4):
            configs.append(
                _mk(CollectiveKind.BCAST, 5, "chain", segsize=seg, chains=chains)
            )
    for seg in (4 * KiB, 16 * KiB, 64 * KiB):
        configs.append(_mk(CollectiveKind.BCAST, 6, "split_binary", segsize=seg))
    configs.append(_mk(CollectiveKind.BCAST, 7, "scatter_allgather"))
    configs.append(_mk(CollectiveKind.BCAST, 8, "scatter_ring_allgather"))
    for seg in (None, 16 * KiB):
        configs.append(_mk(CollectiveKind.BCAST, 9, "hier_binomial", segsize=seg))
    for radix in (2, 4):
        configs.append(
            _mk(CollectiveKind.BCAST, 10, "hier_knomial", segsize=None, radix=radix)
        )
    for seg in (16 * KiB, 64 * KiB):
        configs.append(_mk(CollectiveKind.BCAST, 11, "hier_pipeline", segsize=seg))
    for seg in (16 * KiB, 64 * KiB):
        for chains in (2, 4):
            configs.append(
                _mk(
                    CollectiveKind.BCAST, 12, "hier_chain",
                    segsize=seg, chains=chains,
                )
            )
    return tuple(configs)


def _allreduce_space() -> tuple[AlgorithmConfig, ...]:
    flat: list[tuple[str, dict]] = [
        ("linear", {}),
        ("nonoverlapping", {}),
        ("recursive_doubling", {}),
        ("ring", {}),
    ]
    configs: list[AlgorithmConfig] = []
    algid = 0
    for name, params in flat:
        algid += 1
        configs.append(_mk(CollectiveKind.ALLREDUCE, algid, name, **params))
    algid += 1  # 5: segmented ring with a small segment-size menu
    for seg in (16 * KiB, 64 * KiB, 128 * KiB):
        configs.append(
            _mk(CollectiveKind.ALLREDUCE, algid, "segmented_ring", segsize=seg)
        )
    algid += 1
    configs.append(_mk(CollectiveKind.ALLREDUCE, algid, "rabenseifner"))
    algid += 1
    configs.append(_mk(CollectiveKind.ALLREDUCE, algid, "allgather_reduce"))
    algid += 1  # 8: knomial
    for radix in (2, 4, 8):
        configs.append(
            _mk(CollectiveKind.ALLREDUCE, algid, "knomial_reduce_bcast", radix=radix)
        )
    # 9..16: topology-aware (SHM + leader) mirrors of the flat menu.
    hier: list[tuple[str, list[dict]]] = [
        ("hier_linear", [{}]),
        ("hier_nonoverlapping", [{}]),
        ("hier_recursive_doubling", [{}]),
        ("hier_ring", [{}]),
        (
            "hier_segmented_ring",
            [{"segsize": s} for s in (16 * KiB, 64 * KiB, 128 * KiB)],
        ),
        ("hier_rabenseifner", [{}]),
        ("hier_allgather_reduce", [{}]),
        ("hier_knomial_reduce_bcast", [{"radix": r} for r in (2, 4, 8)]),
    ]
    for name, param_list in hier:
        algid += 1
        for params in param_list:
            configs.append(_mk(CollectiveKind.ALLREDUCE, algid, name, **params))
    return tuple(configs)


def _alltoall_space() -> tuple[AlgorithmConfig, ...]:
    return (
        _mk(CollectiveKind.ALLTOALL, 1, "bruck"),
        _mk(CollectiveKind.ALLTOALL, 2, "linear"),
        _mk(CollectiveKind.ALLTOALL, 3, "pairwise"),
        _mk(CollectiveKind.ALLTOALL, 4, "linear_sync"),
        _mk(CollectiveKind.ALLTOALL, 5, "ring"),
    )


class IntelMPILibrary(MPILibrary):
    """Intel MPI 2019 stand-in with a self-tuned default table."""

    name = "Intel MPI"
    version = "2019"

    #: process-level cache of tuned tables, keyed by (machine, collective)
    _tables: dict[tuple[str, CollectiveKind], dict] = {}

    def __init__(self) -> None:
        self._spaces = {
            CollectiveKind.BCAST: ConfigSpace(
                CollectiveKind.BCAST, self.name, _bcast_space()
            ),
            CollectiveKind.ALLREDUCE: ConfigSpace(
                CollectiveKind.ALLREDUCE, self.name, _allreduce_space()
            ),
            CollectiveKind.ALLTOALL: ConfigSpace(
                CollectiveKind.ALLTOALL, self.name, _alltoall_space()
            ),
        }

    def config_space(self, collective: CollectiveKind | str) -> ConfigSpace:
        return self._spaces[CollectiveKind(collective)]

    # ------------------------------------------------------------------
    def default_config(
        self,
        machine: MachineModel,
        topo: Topology,
        collective: CollectiveKind | str,
        nbytes: int,
    ) -> AlgorithmConfig:
        kind = CollectiveKind(collective)
        table = self._tuned_table(machine, kind)
        key = min(
            table,
            key=lambda grid: (
                (np.log2(grid[0]) - np.log2(topo.num_nodes)) ** 2
                + (np.log2(grid[1]) - np.log2(topo.ppn)) ** 2
                + 0.5 * (np.log2(grid[2] + 1) - np.log2(nbytes + 1)) ** 2
            ),
        )
        return table[key]

    # ------------------------------------------------------------------
    def _tuned_table(
        self, machine: MachineModel, kind: CollectiveKind
    ) -> dict[tuple[int, int, int], AlgorithmConfig]:
        cache_key = (machine.name, kind)
        if cache_key in self._tables:
            return self._tables[cache_key]
        space = self.config_space(kind)
        algos = [algorithm_from_config(c) for c in space.configs]
        nodes = sorted({min(n, machine.max_nodes) for n in TUNE_NODES})
        ppns = sorted({1, max(1, machine.max_ppn // 2), machine.max_ppn})
        table: dict[tuple[int, int, int], AlgorithmConfig] = {}
        for n in nodes:
            for ppn in ppns:
                topo = Topology(n, ppn)
                for m in TUNE_MSIZES:
                    best, best_time = None, float("inf")
                    for algo in algos:
                        if not algo.supported(topo, m):
                            continue
                        t = algo.base_time(machine, topo, m)
                        if t < best_time:
                            best, best_time = algo.config, t
                    assert best is not None
                    table[(n, ppn, m)] = best
        self._tables[cache_key] = table
        return table
