"""Abstract interface of a simulated MPI library."""

from __future__ import annotations

import abc
from functools import lru_cache

from repro.collectives.base import AlgorithmConfig, CollectiveKind, ConfigSpace
from repro.machine.model import MachineModel
from repro.machine.topology import Topology


class MPILibrary(abc.ABC):
    """A library = a tuning space per collective + a default heuristic.

    The default heuristic plays the role of "algorithm 0" in the paper:
    it is a *strategy*, not an algorithm — the config it picks changes
    with the instance, which is precisely why the paper refuses to
    regress against it directly (§III-A).
    """

    #: display name, e.g. "Open MPI"
    name: str = ""
    #: display version, e.g. "4.0.2"
    version: str = ""

    @abc.abstractmethod
    def config_space(self, collective: CollectiveKind | str) -> ConfigSpace:
        """All forceable algorithm configurations for ``collective``."""

    @abc.abstractmethod
    def default_config(
        self,
        machine: MachineModel,
        topo: Topology,
        collective: CollectiveKind | str,
        nbytes: int,
    ) -> AlgorithmConfig:
        """The configuration the hard-coded decision logic would pick.

        Must return a member of ``config_space(collective)``.
        """

    def supported_collectives(self) -> list[CollectiveKind]:
        """Collectives this library exposes a tuning space for."""
        out = []
        for kind in CollectiveKind:
            try:
                if len(self.config_space(kind)):
                    out.append(kind)
            except KeyError:
                continue
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} {self.version}>"


@lru_cache(maxsize=None)
def _cached_space(factory, collective: CollectiveKind) -> ConfigSpace:
    """Shared memoisation for config-space construction."""
    return factory(collective)
