"""Open-MPI-like library: tuning space and fixed decision rules.

The tuning space mirrors Open MPI 4.0.2's ``coll_tuned`` module: the
``--mca coll_tuned_*_algorithm`` ids, each crossed with the realistic
parameter values the paper benchmarks (segment sizes 1K/4K/16K/64K/128K,
chain fanouts 2/4/8/16, k-nomial radices 2/4/8 — §IV-C).

The default decision logic transcribes the *structure* of
``ompi_coll_base_*_intra_dec_fixed`` — message-size and communicator-
size thresholds chosen once on the developers' machines — which is
exactly what makes it beatable on machines it was not tuned for.
"""

from __future__ import annotations

from repro.collectives.base import AlgorithmConfig, CollectiveKind, ConfigSpace
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary
from repro.utils.units import KiB

SEGMENT_SIZES: tuple[int, ...] = (KiB, 4 * KiB, 16 * KiB, 64 * KiB, 128 * KiB)
CHAIN_FANOUTS: tuple[int, ...] = (2, 4, 8, 16)
KNOMIAL_RADICES: tuple[int, ...] = (2, 4, 8)

_mk = AlgorithmConfig.make


def _bcast_space() -> tuple[AlgorithmConfig, ...]:
    configs: list[AlgorithmConfig] = [_mk(CollectiveKind.BCAST, 1, "linear")]
    for seg in SEGMENT_SIZES:
        for chains in CHAIN_FANOUTS:
            configs.append(
                _mk(CollectiveKind.BCAST, 2, "chain", segsize=seg, chains=chains)
            )
    for seg in SEGMENT_SIZES:
        configs.append(_mk(CollectiveKind.BCAST, 3, "pipeline", segsize=seg))
    for seg in SEGMENT_SIZES:
        configs.append(_mk(CollectiveKind.BCAST, 4, "split_binary", segsize=seg))
    for seg in (None, *SEGMENT_SIZES):
        configs.append(_mk(CollectiveKind.BCAST, 5, "binary", segsize=seg))
    for seg in (None, *SEGMENT_SIZES):
        configs.append(_mk(CollectiveKind.BCAST, 6, "binomial", segsize=seg))
    for seg in (None, *SEGMENT_SIZES):
        for radix in KNOMIAL_RADICES:
            configs.append(
                _mk(CollectiveKind.BCAST, 7, "knomial", segsize=seg, radix=radix)
            )
    configs.append(_mk(CollectiveKind.BCAST, 8, "scatter_allgather"))
    configs.append(_mk(CollectiveKind.BCAST, 9, "scatter_ring_allgather"))
    return tuple(configs)


def _allreduce_space() -> tuple[AlgorithmConfig, ...]:
    configs: list[AlgorithmConfig] = [
        _mk(CollectiveKind.ALLREDUCE, 1, "linear"),
        _mk(CollectiveKind.ALLREDUCE, 2, "nonoverlapping"),
        _mk(CollectiveKind.ALLREDUCE, 3, "recursive_doubling"),
        _mk(CollectiveKind.ALLREDUCE, 4, "ring"),
    ]
    for seg in SEGMENT_SIZES:
        configs.append(
            _mk(CollectiveKind.ALLREDUCE, 5, "segmented_ring", segsize=seg)
        )
    configs.append(_mk(CollectiveKind.ALLREDUCE, 6, "rabenseifner"))
    configs.append(_mk(CollectiveKind.ALLREDUCE, 7, "allgather_reduce"))
    return tuple(configs)


def _alltoall_space() -> tuple[AlgorithmConfig, ...]:
    return (
        _mk(CollectiveKind.ALLTOALL, 1, "linear"),
        _mk(CollectiveKind.ALLTOALL, 2, "pairwise"),
        _mk(CollectiveKind.ALLTOALL, 3, "bruck"),
        _mk(CollectiveKind.ALLTOALL, 4, "linear_sync"),
        _mk(CollectiveKind.ALLTOALL, 5, "ring"),
    )


def _reduce_space() -> tuple[AlgorithmConfig, ...]:
    configs: list[AlgorithmConfig] = [_mk(CollectiveKind.REDUCE, 1, "linear")]
    for seg in SEGMENT_SIZES:
        for fanout in CHAIN_FANOUTS:
            configs.append(
                _mk(CollectiveKind.REDUCE, 2, "chain", segsize=seg, fanout=fanout)
            )
    for seg in SEGMENT_SIZES:
        configs.append(_mk(CollectiveKind.REDUCE, 3, "pipeline", segsize=seg))
    for seg in (None, *SEGMENT_SIZES):
        configs.append(_mk(CollectiveKind.REDUCE, 4, "binary", segsize=seg))
    for seg in (None, *SEGMENT_SIZES):
        configs.append(_mk(CollectiveKind.REDUCE, 5, "binomial", segsize=seg))
    for seg in (None, *SEGMENT_SIZES):
        configs.append(
            _mk(CollectiveKind.REDUCE, 6, "in_order_binary", segsize=seg)
        )
    configs.append(_mk(CollectiveKind.REDUCE, 7, "rabenseifner"))
    return tuple(configs)


def _allgather_space() -> tuple[AlgorithmConfig, ...]:
    return (
        _mk(CollectiveKind.ALLGATHER, 1, "linear"),
        _mk(CollectiveKind.ALLGATHER, 2, "bruck"),
        _mk(CollectiveKind.ALLGATHER, 3, "recursive_doubling"),
        _mk(CollectiveKind.ALLGATHER, 4, "ring"),
        _mk(CollectiveKind.ALLGATHER, 5, "neighbor_exchange"),
        _mk(CollectiveKind.ALLGATHER, 6, "two_proc"),
    )


class OpenMPILibrary(MPILibrary):
    """Open MPI 4.0.2 stand-in."""

    name = "Open MPI"
    version = "4.0.2"

    def __init__(self) -> None:
        self._spaces = {
            CollectiveKind.BCAST: ConfigSpace(
                CollectiveKind.BCAST, self.name, _bcast_space()
            ),
            CollectiveKind.ALLREDUCE: ConfigSpace(
                CollectiveKind.ALLREDUCE, self.name, _allreduce_space()
            ),
            CollectiveKind.ALLTOALL: ConfigSpace(
                CollectiveKind.ALLTOALL, self.name, _alltoall_space()
            ),
            CollectiveKind.REDUCE: ConfigSpace(
                CollectiveKind.REDUCE, self.name, _reduce_space()
            ),
            CollectiveKind.ALLGATHER: ConfigSpace(
                CollectiveKind.ALLGATHER, self.name, _allgather_space()
            ),
        }

    def config_space(self, collective: CollectiveKind | str) -> ConfigSpace:
        return self._spaces[CollectiveKind(collective)]

    # ------------------------------------------------------------------
    def default_config(
        self,
        machine: MachineModel,
        topo: Topology,
        collective: CollectiveKind | str,
        nbytes: int,
    ) -> AlgorithmConfig:
        kind = CollectiveKind(collective)
        if kind == CollectiveKind.BCAST:
            return self._bcast_default(topo.size, nbytes)
        if kind == CollectiveKind.ALLREDUCE:
            return self._allreduce_default(topo.size, nbytes)
        if kind == CollectiveKind.REDUCE:
            return self._reduce_default(topo.size, nbytes)
        if kind == CollectiveKind.ALLGATHER:
            return self._allgather_default(topo.size, nbytes)
        return self._alltoall_default(topo.size, nbytes)

    @staticmethod
    def _bcast_default(p: int, m: int) -> AlgorithmConfig:
        # Structure follows ompi_coll_base_bcast_intra_dec_fixed
        # (thresholds rounded): small messages take low-depth trees,
        # large ones pipelined/segmented schedules.
        if p < 4:
            return _mk(CollectiveKind.BCAST, 1, "linear")
        if m < 2 * KiB:
            return _mk(CollectiveKind.BCAST, 6, "binomial", segsize=None)
        if m <= 16 * KiB:
            return _mk(CollectiveKind.BCAST, 6, "binomial", segsize=4 * KiB)
        if m < 512 * KiB:
            return _mk(CollectiveKind.BCAST, 4, "split_binary", segsize=16 * KiB)
        # Large messages: pipelined schedules; very large communicators
        # get the bounded-depth chain instead of the full-length
        # pipeline (as the real decision function does).
        if p >= 128:
            return _mk(
                CollectiveKind.BCAST, 2, "chain", segsize=128 * KiB, chains=4
            )
        if p < 16:
            return _mk(CollectiveKind.BCAST, 3, "pipeline", segsize=64 * KiB)
        return _mk(CollectiveKind.BCAST, 3, "pipeline", segsize=128 * KiB)

    @staticmethod
    def _allreduce_default(p: int, m: int) -> AlgorithmConfig:
        # Structure follows ompi_coll_base_allreduce_intra_dec_fixed.
        if p < 4:
            if m < 8 * KiB:
                return _mk(CollectiveKind.ALLREDUCE, 3, "recursive_doubling")
            return _mk(CollectiveKind.ALLREDUCE, 2, "nonoverlapping")
        if m <= 10 * KiB:
            return _mk(CollectiveKind.ALLREDUCE, 3, "recursive_doubling")
        if m < 1024 * KiB:
            return _mk(CollectiveKind.ALLREDUCE, 4, "ring")
        return _mk(
            CollectiveKind.ALLREDUCE, 5, "segmented_ring", segsize=64 * KiB
        )

    @staticmethod
    def _reduce_default(p: int, m: int) -> AlgorithmConfig:
        # Structure follows ompi_coll_base_reduce_intra_dec_fixed.
        if p < 4:
            return _mk(CollectiveKind.REDUCE, 1, "linear")
        if m < 8 * KiB:
            return _mk(CollectiveKind.REDUCE, 5, "binomial", segsize=None)
        if m < 512 * KiB:
            return _mk(CollectiveKind.REDUCE, 4, "binary", segsize=16 * KiB)
        return _mk(CollectiveKind.REDUCE, 3, "pipeline", segsize=64 * KiB)

    @staticmethod
    def _allgather_default(p: int, m: int) -> AlgorithmConfig:
        # Structure follows ompi_coll_base_allgather_intra_dec_fixed.
        if p == 2:
            return _mk(CollectiveKind.ALLGATHER, 6, "two_proc")
        if m * p <= 64 * KiB:
            return _mk(CollectiveKind.ALLGATHER, 2, "bruck")
        if p % 2 == 0:
            return _mk(CollectiveKind.ALLGATHER, 5, "neighbor_exchange")
        return _mk(CollectiveKind.ALLGATHER, 4, "ring")

    @staticmethod
    def _alltoall_default(p: int, m: int) -> AlgorithmConfig:
        # Structure follows ompi_coll_base_alltoall_intra_dec_fixed.
        if p < 3:
            return _mk(CollectiveKind.ALLTOALL, 1, "linear")
        if m <= 200 and p > 12:
            return _mk(CollectiveKind.ALLTOALL, 3, "bruck")
        if m < 3 * KiB:
            return _mk(CollectiveKind.ALLTOALL, 1, "linear")
        return _mk(CollectiveKind.ALLTOALL, 2, "pairwise")
