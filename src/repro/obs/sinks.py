"""Pluggable telemetry sinks.

A sink consumes :class:`~repro.obs.events.TelemetryEvent` records; the
:class:`~repro.obs.telemetry.Telemetry` hub fans every event out to all
attached sinks. Three implementations cover the paper pipeline's
needs:

* :class:`FileSink` — append-only JSONL, the durable format
  ``repro report --telemetry`` consumes;
* :class:`StderrSink` — human-oriented pretty printer for interactive
  ``--telemetry -`` runs;
* :class:`MemorySink` — in-process buffer the test-suite asserts on.

All sinks are thread-safe: campaign workers emit concurrently under
``REPRO_JOBS``.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from typing import IO, Protocol

from repro.obs.events import TelemetryEvent


class Sink(Protocol):
    """Anything that can consume telemetry events."""

    def emit(self, event: TelemetryEvent) -> None: ...

    def close(self) -> None: ...


class MemorySink:
    """Buffers events in memory (tests, report unit tests)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        with self._lock:
            self._events.append(event)

    def close(self) -> None:  # nothing to release
        pass

    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TelemetryEvent]:
        """Snapshot of everything emitted so far."""
        with self._lock:
            return list(self._events)

    def of_kind(self, kind: str) -> list[TelemetryEvent]:
        return [e for e in self.events if e.kind == kind]

    def named(self, name: str) -> list[TelemetryEvent]:
        return [e for e in self.events if e.name == name]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class FileSink:
    """Append-only JSONL event log.

    Each event is written as one line and flushed immediately, so a
    crashed campaign still leaves a readable log with every completed
    span — the property checkpoint/resume diagnostics rely on.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh: IO[str] | None = self.path.open("a")

    def emit(self, event: TelemetryEvent) -> None:
        with self._lock:
            if self._fh is None:
                raise ValueError(f"FileSink {self.path} is closed")
            self._fh.write(event.to_json() + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class StderrSink:
    """Pretty printer for interactive runs (``--telemetry -``)."""

    #: per-kind prefix glyphs (ASCII so dumb terminals stay readable)
    _GLYPHS = {"span": "⏱", "counter": "Σ", "gauge": "≈", "event": "·"}

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def emit(self, event: TelemetryEvent) -> None:
        glyph = self._GLYPHS.get(event.kind, "?")
        if event.kind == "span":
            wall = event.fields.get("wall_s", 0.0)
            extra = {
                k: v
                for k, v in event.fields.items()
                if k not in ("wall_s", "cpu_s", "depth")
            }
            tail = f" {extra}" if extra else ""
            line = f"{glyph} {event.name}: {wall * 1e3:.2f} ms{tail}"
        elif event.kind in ("counter", "gauge"):
            line = f"{glyph} {event.name} = {event.fields.get('value')}"
        else:
            line = f"{glyph} {event.name} {dict(event.fields)}"
        with self._lock:
            self._stream.write(line + "\n")

    def close(self) -> None:  # stderr is not ours to close
        pass


class NullSink:
    """Swallows everything (placeholder / benchmarking the overhead)."""

    def emit(self, event: TelemetryEvent) -> None:
        pass

    def close(self) -> None:
        pass
