"""MAD-robust drift detection over serve-side feedback residuals.

The serving layer optionally logs every recommendation it hands out
together with a (simulated) observed runtime and the analytical
prediction for the chosen configuration (:mod:`repro.core.feedback`).
The *residual* of one observation is::

    r = log(observed / predicted)

On a stationary machine the residuals concentrate around a constant
(the calibration offset between the analytical model and reality, ~0
in the simulator); when the machine drifts — a degraded link, a
firmware change, an injected :class:`~repro.core.feedback.WorldShift`
— the residual distribution shifts by ``log(shift)``.

:class:`DriftDetector` keeps one bounded residual window per
``(collective, version)`` and summarises each with **median** and
**normalised MAD** (median absolute deviation x 1.4826, the robust
sigma estimate) — a handful of straggler spikes cannot fire the
trigger, a genuine mean shift always does. A group is *drifting* when
it holds at least ``min_samples`` residuals and its median sits more
than ``threshold`` away from the group's *baseline* — the log-shift
the last retrain already corrected for (:meth:`DriftDetector.rebase`),
so a completed retrain quiets the detector instead of re-triggering on
the same shift forever.

The detector is deliberately pure observability machinery: it consumes
floats, exposes summaries, and never touches models, files or RNGs.
The serving fleet exports its state as labelled Prometheus gauges
(``serve_drift_residual_median{collective=...,version=...}``); the
background retrainer (:mod:`repro.core.retrain`) polls
:meth:`drifting` to decide when to refit.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass

#: consistency constant: MAD x 1.4826 estimates sigma under normality
MAD_SCALE = 1.4826

#: defaults: |median residual| > 0.25 is a ~1.28x sustained shift
DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_SAMPLES = 30
DEFAULT_WINDOW = 512


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass(frozen=True)
class ResidualStats:
    """Robust summary of one ``(collective, version)`` residual window."""

    collective: str
    version: int
    n: int
    #: median log-residual of the window
    median: float
    #: normalised MAD (x1.4826) of the window — the robust sigma
    mad: float
    #: the log-shift already corrected for by the last retrain
    baseline: float
    #: trigger threshold the detector graded this group against
    threshold: float
    #: ``n >= min_samples`` and ``|median - baseline| > threshold``
    drifting: bool

    @property
    def excess(self) -> float:
        """How far the median sits beyond the corrected baseline."""
        return abs(self.median - self.baseline)

    def to_dict(self) -> dict:
        """JSON-safe rendering (the fleet's worker ``drift`` op)."""
        return {
            "collective": self.collective,
            "version": self.version,
            "n": self.n,
            "median": self.median,
            "mad": self.mad,
            "baseline": self.baseline,
            "threshold": self.threshold,
            "drifting": self.drifting,
        }

    @staticmethod
    def from_dict(payload: dict) -> "ResidualStats":
        return ResidualStats(
            collective=str(payload["collective"]),
            version=int(payload["version"]),
            n=int(payload["n"]),
            median=float(payload["median"]),
            mad=float(payload["mad"]),
            baseline=float(payload["baseline"]),
            threshold=float(payload["threshold"]),
            drifting=bool(payload["drifting"]),
        )


class DriftDetector:
    """Per-(collective, version) residual windows with a robust trigger.

    Thread-safe: the serving layer observes from request threads while
    the exporter snapshots concurrently.
    """

    def __init__(
        self,
        *,
        threshold: float = DEFAULT_THRESHOLD,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if not (threshold > 0 and math.isfinite(threshold)):
            raise ValueError(f"threshold must be finite and > 0, got {threshold!r}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples!r}")
        if window < min_samples:
            raise ValueError(
                f"window ({window}) must hold at least min_samples "
                f"({min_samples}) residuals"
            )
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.window = int(window)
        self._lock = threading.Lock()
        self._windows: dict[tuple[str, int], deque[float]] = {}
        #: collective -> log-shift the last retrain corrected for
        self._baselines: dict[str, float] = {}
        #: collective -> guideline violations recorded against it
        self._violations: dict[str, int] = {}

    # -- feeding -------------------------------------------------------
    def observe(
        self, collective: str, version: int, observed: float, predicted: float
    ) -> float:
        """Record one observation; returns the log-residual."""
        if not (observed > 0 and math.isfinite(observed)):
            raise ValueError(f"observed time must be finite and > 0: {observed!r}")
        if not (predicted > 0 and math.isfinite(predicted)):
            raise ValueError(f"predicted time must be finite and > 0: {predicted!r}")
        residual = math.log(observed / predicted)
        key = (str(collective), int(version))
        with self._lock:
            window = self._windows.get(key)
            if window is None:
                window = self._windows[key] = deque(maxlen=self.window)
            window.append(residual)
        return residual

    def observe_rows(self, rows) -> int:
        """Feed feedback rows (anything with the FeedbackRow fields)."""
        fed = 0
        for row in rows:
            self.observe(
                row.collective, row.version, row.observed_time,
                row.predicted_time,
            )
            fed += 1
        return fed

    def record_violations(self, collective: str, count: int = 1) -> None:
        """Count guideline violations (the semantic tripwire) per collective."""
        if count < 0:
            raise ValueError(f"violation count must be >= 0, got {count!r}")
        with self._lock:
            key = str(collective)
            self._violations[key] = self._violations.get(key, 0) + int(count)

    # -- retrain hand-off ----------------------------------------------
    def rebase(self, collective: str, log_shift: float) -> None:
        """Mark ``log_shift`` as corrected-for (called after a retrain).

        Subsequent observations of ``collective`` only count as drift
        when their median moves beyond ``log_shift`` by more than the
        threshold — a *further* shift, not the one already fixed.
        """
        if not math.isfinite(log_shift):
            raise ValueError(f"log_shift must be finite, got {log_shift!r}")
        with self._lock:
            self._baselines[str(collective)] = float(log_shift)

    def baseline(self, collective: str) -> float:
        with self._lock:
            return self._baselines.get(str(collective), 0.0)

    # -- summaries -----------------------------------------------------
    def stats(self) -> list[ResidualStats]:
        """One robust summary per (collective, version), sorted."""
        with self._lock:
            snapshot = {
                key: list(window) for key, window in self._windows.items()
            }
            baselines = dict(self._baselines)
        out = []
        for (collective, version) in sorted(snapshot):
            residuals = snapshot[(collective, version)]
            median = _median(residuals)
            mad = MAD_SCALE * _median([abs(r - median) for r in residuals])
            baseline = baselines.get(collective, 0.0)
            out.append(
                ResidualStats(
                    collective=collective,
                    version=version,
                    n=len(residuals),
                    median=median,
                    mad=mad,
                    baseline=baseline,
                    threshold=self.threshold,
                    drifting=(
                        len(residuals) >= self.min_samples
                        and abs(median - baseline) > self.threshold
                    ),
                )
            )
        return out

    def drifting(self) -> list[ResidualStats]:
        """The groups currently past the trigger."""
        return [s for s in self.stats() if s.drifting]

    def violations(self) -> dict[str, int]:
        with self._lock:
            return dict(self._violations)

    def payload(self) -> dict:
        """JSON-safe snapshot (the fleet worker ``drift`` op answer)."""
        return {
            "stats": [s.to_dict() for s in self.stats()],
            "violations": self.violations(),
        }

    def gauges(self, *, labels: str = "") -> dict[str, dict[str, float]]:
        """Labelled Prometheus gauge series for the exporter.

        ``labels`` appends extra label pairs (e.g. ``worker="3"``) to
        every series. Keys are label bodies as
        :func:`repro.serve.exporter.render_gauge` expects them.
        """
        median: dict[str, float] = {}
        mad: dict[str, float] = {}
        samples: dict[str, float] = {}
        for s in self.stats():
            body = f'collective="{s.collective}",version="{s.version}"'
            if labels:
                body = f"{body},{labels}"
            median[body] = s.median
            mad[body] = s.mad
            samples[body] = float(s.n)
        return {
            "serve.drift.residual_median": median,
            "serve.drift.residual_mad": mad,
            "serve.drift.samples": samples,
        }


__all__ = [
    "DEFAULT_MIN_SAMPLES",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "MAD_SCALE",
    "DriftDetector",
    "ResidualStats",
]
