"""Hierarchical spans + process-wide counters/gauges.

One :class:`Telemetry` hub per process (module-level singleton,
:func:`get_telemetry`), with three primitives:

* :meth:`Telemetry.span` — a context manager measuring wall time
  (``perf_counter``) and thread CPU time (``thread_time``) for one
  named stage. Span names nest per thread: inside
  ``span("campaign/d1")``, ``span("n=16")`` emits as
  ``campaign/d1/n=16``. Worker threads (which start with an empty
  stack) pass ``absolute=True`` and the full path so chunk spans slot
  under their campaign regardless of which thread runs them.
* :meth:`Telemetry.add` / :meth:`Telemetry.counter` — monotonically
  increasing process-wide counters, atomic under ``REPRO_JOBS``
  worker threads. Counters accumulate silently (no per-increment
  event — a campaign advances them thousands of times) and are
  emitted once per :meth:`flush` as ``counter`` events.
* :meth:`Telemetry.gauge` — last-write-wins scalars (worker
  utilization, cache sizes), emitted immediately.
* :meth:`Telemetry.observe` / :meth:`Telemetry.histogram` —
  fixed-bucket latency distributions (Prometheus-shaped cumulative
  buckets, p50/p99/p999 by interpolation); accumulated silently like
  counters and emitted once per :meth:`flush` as ``histogram`` events.
  :mod:`repro.serve.exporter` renders the same snapshots as scrapeable
  Prometheus text.

With no sinks attached, every primitive degrades to a few arithmetic
operations and one lock acquisition — cheap enough to leave the
instrumentation permanently enabled in the hot layers.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Any, Iterable, Iterator

from repro.obs.events import TelemetryEvent
from repro.obs.sinks import MemorySink, Sink


class Span:
    """A live measurement of one named stage (use via ``with``)."""

    __slots__ = ("name", "depth", "fields", "_t0_wall", "_t0_cpu", "_telemetry")

    def __init__(self, telemetry: "Telemetry", name: str, depth: int,
                 fields: dict[str, Any]) -> None:
        self._telemetry = telemetry
        self.name = name
        self.depth = depth
        self.fields = fields
        self._t0_wall = time.perf_counter()
        self._t0_cpu = time.thread_time()

    def annotate(self, **fields: Any) -> "Span":
        """Attach payload fields to the span's completion event."""
        self.fields.update(fields)
        return self

    @property
    def elapsed(self) -> float:
        """Wall seconds since the span opened (while still running)."""
        return time.perf_counter() - self._t0_wall

    def _finish(self) -> TelemetryEvent:
        wall = time.perf_counter() - self._t0_wall
        cpu = time.thread_time() - self._t0_cpu
        payload = {"wall_s": wall, "cpu_s": cpu, "depth": self.depth}
        payload.update(self.fields)
        return TelemetryEvent(kind="span", name=self.name, fields=payload)


class _Counter:
    """One atomic cumulative counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def add(self, amount: int = 1) -> int:
        with self._lock:
            self.value += amount
            return self.value


#: default latency buckets (microseconds): 1-2-5 decades from 1 us to
#: 10 s — wide enough for a sub-microsecond compiled hit and a cold
#: multi-second campaign probe on the same axis
DEFAULT_BUCKETS_US: tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
    500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
)


class Histogram:
    """A fixed-bucket distribution: thread-safe observe + quantiles.

    Buckets are *upper bounds* (ascending); an observation lands in the
    first bucket whose bound is >= the value, or the overflow bucket
    (``+Inf``) past the last bound — the classic Prometheus histogram
    shape, which is exactly how :mod:`repro.serve.exporter` renders it.
    Quantiles are estimated by linear interpolation inside the bucket
    where the cumulative count crosses ``q * count`` (the same estimate
    a Prometheus ``histogram_quantile`` query would make server-side).
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum", "_lock")

    def __init__(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS_US
    ) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be ascending and unique")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        #: one slot per bound plus the +Inf overflow slot
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (bisect_left on bounds)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        with self._lock:
            self.counts[index] += 1
            self.total += 1
            self.sum += value

    def snapshot(self) -> "HistogramSnapshot":
        with self._lock:
            return HistogramSnapshot(
                self.name, self.bounds, tuple(self.counts), self.total,
                self.sum,
            )


class HistogramSnapshot:
    """Immutable point-in-time view of a :class:`Histogram`."""

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(
        self, name: str, bounds: tuple[float, ...],
        counts: tuple[int, ...], total: int, sum_: float,
    ) -> None:
        self.name = name
        self.bounds = bounds
        self.counts = counts
        self.total = total
        self.sum = sum_

    def quantile(self, q: float) -> float:
        """Interpolated value at quantile ``q`` (0 <= q <= 1); NaN if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return float("nan")
        rank = q * self.total
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                if index >= len(self.bounds):
                    # overflow bucket has no upper bound to interpolate
                    # against: report its lower edge (a floor, not a lie)
                    return self.bounds[-1]
                upper = self.bounds[index]
                frac = (rank - cumulative) / count
                return lower + (upper - lower) * min(max(frac, 0.0), 1.0)
            cumulative += count
        return self.bounds[-1]

    def percentiles(self) -> dict[str, float]:
        """The serving headline trio: p50 / p99 / p999."""
        return {
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }


class Telemetry:
    """Process-wide telemetry hub: spans, counters, gauges, sinks."""

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self._sinks: list[Sink] = list(sinks)
        self._sinks_lock = threading.Lock()
        self._counters: dict[str, _Counter] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._state_lock = threading.Lock()
        self._stack = threading.local()

    # -- sink management ------------------------------------------------
    @property
    def sinks(self) -> list[Sink]:
        with self._sinks_lock:
            return list(self._sinks)

    def configure(self, sinks: Iterable[Sink]) -> None:
        """Replace the attached sinks (closing nothing — callers own them)."""
        with self._sinks_lock:
            self._sinks = list(sinks)

    def add_sink(self, sink: Sink) -> Sink:
        with self._sinks_lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        with self._sinks_lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    @contextlib.contextmanager
    def capture(self) -> Iterator[MemorySink]:
        """Attach a fresh :class:`MemorySink` for the ``with`` body (tests)."""
        sink = MemorySink()
        self.add_sink(sink)
        try:
            yield sink
        finally:
            self.remove_sink(sink)

    def _emit(self, event: TelemetryEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    # -- spans ----------------------------------------------------------
    def _thread_stack(self) -> list[str]:
        stack = getattr(self._stack, "frames", None)
        if stack is None:
            stack = self._stack.frames = []
        return stack

    @contextlib.contextmanager
    def span(self, name: str, /, *, absolute: bool = False,
             **fields: Any) -> Iterator[Span]:
        """Measure one named stage; emits a ``span`` event on exit.

        ``name`` is joined onto the current thread's open spans with
        ``/`` unless ``absolute=True`` (used by pool workers, whose
        threads have no ancestry to inherit). The event is emitted
        even when the body raises — an interrupted campaign's log
        still shows every chunk that finished or died.
        """
        stack = self._thread_stack()
        path = name if (absolute or not stack) else f"{stack[-1]}/{name}"
        span = Span(self, path, depth=len(stack), fields=dict(fields))
        stack.append(path)
        try:
            yield span
        except BaseException:
            span.fields.setdefault("error", True)
            raise
        finally:
            stack.pop()
            self._emit(span._finish())

    def current_path(self) -> str | None:
        """The innermost open span path on this thread (None outside)."""
        stack = self._thread_stack()
        return stack[-1] if stack else None

    # -- counters / gauges ----------------------------------------------
    def counter(self, name: str) -> _Counter:
        """Get-or-create the named counter (atomic ``.add``)."""
        with self._state_lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = _Counter(name)
            return counter

    def add(self, name: str, amount: int = 1) -> int:
        """Increment a counter; returns the new cumulative value."""
        return self.counter(name).add(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins scalar and emit it immediately."""
        with self._state_lock:
            self._gauges[name] = value
        self._emit(
            TelemetryEvent(kind="gauge", name=name, fields={"value": value})
        )

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS_US
    ) -> Histogram:
        """Get-or-create the named histogram (atomic ``.observe``).

        ``bounds`` only applies on first creation; later callers get
        the existing instance regardless (bucket layouts are fixed for
        a histogram's lifetime — scrapers rely on that).
        """
        with self._state_lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name, bounds)
            return histogram

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        self.histogram(name).observe(value)

    def counters_snapshot(self) -> dict[str, int]:
        """Current value of every counter (stable name order)."""
        with self._state_lock:
            counters = list(self._counters.values())
        return {c.name: c.value for c in sorted(counters, key=lambda c: c.name)}

    def gauges_snapshot(self) -> dict[str, float]:
        with self._state_lock:
            return dict(self._gauges)

    def histograms_snapshot(self) -> dict[str, HistogramSnapshot]:
        """Point-in-time view of every histogram (stable name order)."""
        with self._state_lock:
            histograms = list(self._histograms.values())
        return {
            h.name: h.snapshot()
            for h in sorted(histograms, key=lambda h: h.name)
        }

    def flush(self) -> None:
        """Emit one ``counter`` event per counter with its current value.

        Histograms flush alongside, one ``histogram`` event each, with
        count/sum and the p50/p99/p999 trio — the log form a
        ``report --telemetry`` reader digests without bucket math.
        """
        for name, value in self.counters_snapshot().items():
            self._emit(
                TelemetryEvent(kind="counter", name=name, fields={"value": value})
            )
        for name, snap in self.histograms_snapshot().items():
            fields = {"count": snap.total, "sum": snap.sum}
            if snap.total:  # NaN quantiles would poison the JSONL log
                fields.update(snap.percentiles())
            self._emit(
                TelemetryEvent(kind="histogram", name=name, fields=fields)
            )

    # -- ad-hoc events ----------------------------------------------------
    def event(self, name: str, /, **fields: Any) -> None:
        """Emit a free-form structured event (e.g. ``cache_corrupt``)."""
        self._emit(TelemetryEvent(kind="event", name=name, fields=fields))

    # -- lifecycle -------------------------------------------------------
    def reset(self) -> None:
        """Zero counters/gauges/histograms and detach all sinks (tests)."""
        with self._state_lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        self.configure(())


#: the process-wide hub every instrumented layer emits into
_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide :class:`Telemetry` singleton."""
    return _GLOBAL
