"""Bench regression gate: compare a fresh BENCH report to the baseline.

CI runs ``scripts/bench_report.py`` on every push and feeds the fresh
numbers plus the committed ``BENCH_<pr>.json`` through
:func:`compare_reports`. A metric that moved against its preferred
direction by more than ``fail_frac`` (default 25%) fails the build;
beyond ``warn_frac`` (default 10%) it warns. The comparison logic
lives here (not in the script) so the thresholds are unit-tested —
the gate must demonstrably fire on a synthetic 30% slowdown.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

#: headline metrics the gate tracks -> whether larger values are better
GATE_METRICS: dict[str, bool] = {
    "booster_predict_10k_s": False,
    "booster_fit_2000_s": False,
    "campaign_samples_per_s": True,
    "fastsim_chain_eval_s": False,
    "serve_batch64_speedup_x": True,
    "serve_cached_speedup_x": True,
    "serve_compiled_speedup_x": True,
    "fleet_req_per_s": True,
    "fleet_p99_us": False,
    "fleet_degraded_req_per_s": True,
    # active-sampling retrain cost: measured / full-grid samples at
    # equal final selection agreement — lower is better, must not creep
    # back toward the naive full refit (1.0)
    "retrain_budget_frac": False,
}

#: default thresholds (fractions of the baseline)
WARN_FRAC = 0.10
FAIL_FRAC = 0.25


@dataclass(frozen=True)
class GateResult:
    """Verdict for one metric."""

    metric: str
    baseline: float
    current: float
    #: fractional regression (>0 = worse than baseline, <0 = better)
    regression: float
    status: str  # "ok" | "warn" | "fail" | "missing"
    higher_is_better: bool

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "warn", "missing")

    def describe(self) -> str:
        arrow = "↑" if self.higher_is_better else "↓"
        if self.status == "missing":
            return f"[missing] {self.metric}: no baseline/current value"
        return (
            f"[{self.status:>4s}] {self.metric} ({arrow} better): "
            f"baseline {self.baseline:.6g} -> current {self.current:.6g} "
            f"({self.regression * 100:+.1f}% vs baseline)"
        )


def regression_fraction(
    baseline: float, current: float, higher_is_better: bool
) -> float:
    """How much worse ``current`` is than ``baseline`` (signed fraction).

    0.30 means "30% worse": for a lower-is-better latency that is a
    30% slowdown; for a higher-is-better throughput it is a 30% drop.
    Negative values are improvements.
    """
    if baseline <= 0:
        raise ValueError(f"non-positive baseline {baseline!r}")
    if higher_is_better:
        return (baseline - current) / baseline
    return (current - baseline) / baseline


def compare_metrics(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    *,
    metrics: Mapping[str, bool] = GATE_METRICS,
    warn_frac: float = WARN_FRAC,
    fail_frac: float = FAIL_FRAC,
) -> list[GateResult]:
    """Grade every gate metric; missing metrics are reported, not failed.

    A metric absent from either side cannot regress silently *or* block
    unrelated work, so it surfaces as ``missing`` (visible in CI logs)
    rather than ``fail``.
    """
    if not 0 <= warn_frac <= fail_frac:
        raise ValueError(
            f"need 0 <= warn_frac <= fail_frac, got {warn_frac}, {fail_frac}"
        )
    results: list[GateResult] = []
    for metric, higher_is_better in metrics.items():
        base = baseline.get(metric)
        cur = current.get(metric)
        if base is None or cur is None or base <= 0:
            results.append(
                GateResult(metric, base or float("nan"), cur or float("nan"),
                           0.0, "missing", higher_is_better)
            )
            continue
        reg = regression_fraction(base, cur, higher_is_better)
        if reg > fail_frac:
            status = "fail"
        elif reg > warn_frac:
            status = "warn"
        else:
            status = "ok"
        results.append(
            GateResult(metric, float(base), float(cur), reg, status,
                       higher_is_better)
        )
    return results


def _current_block(report: Mapping) -> Mapping[str, float]:
    """The ``current`` metrics block of a BENCH_<pr>.json payload."""
    block = report.get("current", report)
    if not isinstance(block, Mapping):
        raise ValueError("malformed bench report: no 'current' mapping")
    return block


def compare_reports(
    baseline_path: str | Path,
    current_path: str | Path,
    *,
    warn_frac: float = WARN_FRAC,
    fail_frac: float = FAIL_FRAC,
) -> list[GateResult]:
    """Compare two BENCH_<pr>.json files on the gate metrics."""
    baseline = json.loads(Path(baseline_path).read_text())
    current = json.loads(Path(current_path).read_text())
    return compare_metrics(
        _current_block(baseline),
        _current_block(current),
        warn_frac=warn_frac,
        fail_frac=fail_frac,
    )


def latest_committed_report(root: str | Path) -> Path:
    """The highest-numbered ``BENCH_<pr>.json`` at the repo root."""
    candidates = sorted(
        Path(root).glob("BENCH_*.json"),
        key=lambda p: int(p.stem.split("_")[1]),
    )
    if not candidates:
        raise FileNotFoundError(f"no BENCH_*.json baseline under {root}")
    return candidates[-1]


def gate_verdict(results: list[GateResult]) -> tuple[bool, str]:
    """(passed, human-readable report) for a list of metric verdicts."""
    lines = [r.describe() for r in results]
    failed = [r for r in results if not r.ok]
    if failed:
        lines.append(
            f"GATE FAILED: {len(failed)} metric(s) regressed beyond the "
            "failure threshold"
        )
    else:
        lines.append("GATE PASSED")
    return (not failed, "\n".join(lines))
