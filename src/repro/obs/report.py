"""Summarise a telemetry JSONL log (``repro report --telemetry``).

Aggregates ``span`` events by name (count, total/mean/max wall time,
total CPU time), keeps the final value of every counter and gauge, and
lists ad-hoc events — enough to answer "where did this campaign spend
its time?" without opening the raw log.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.events import TelemetryEvent


def _render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    floatfmt: str = ".3g",
    title: str | None = None,
) -> str:
    """Minimal fixed-width table renderer.

    Deliberately local: :mod:`repro.obs` is the bottom of the
    dependency stack (the campaign runner imports it), so it cannot
    lean on :mod:`repro.experiments.report` without creating an import
    cycle.
    """
    cells = [
        [format(v, floatfmt) if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [] if title is None else [title]
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def load_events(path: str | Path) -> list[TelemetryEvent]:
    """Parse a JSONL telemetry log, skipping torn trailing lines.

    A crashed run may leave a partially written final line; everything
    before it is still valid JSONL, so one bad line is tolerated and
    reported via the summary's ``skipped`` count rather than raised.
    """
    events: list[TelemetryEvent] = []
    skipped = 0
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TelemetryEvent.from_json(line))
            except (ValueError, KeyError):
                skipped += 1
    if skipped:
        events.append(
            TelemetryEvent(
                kind="event", name="report.skipped_lines",
                fields={"value": skipped},
            )
        )
    return events


@dataclass
class SpanStats:
    """Aggregate of every completion of one span name."""

    name: str
    count: int = 0
    total_wall_s: float = 0.0
    total_cpu_s: float = 0.0
    max_wall_s: float = 0.0
    errors: int = 0

    @property
    def mean_wall_s(self) -> float:
        return self.total_wall_s / self.count if self.count else 0.0


@dataclass
class TelemetrySummary:
    """Digest of one telemetry log."""

    spans: list[SpanStats] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    event_tally: dict[str, int] = field(default_factory=dict)
    num_events: int = 0


def summarize(events: Iterable[TelemetryEvent]) -> TelemetrySummary:
    """Aggregate an event stream into a :class:`TelemetrySummary`.

    Spans are sorted by total wall time, descending; counters and
    gauges keep their last (= final) emitted value.
    """
    spans: dict[str, SpanStats] = {}
    summary = TelemetrySummary()
    for event in events:
        summary.num_events += 1
        if event.kind == "span":
            stats = spans.setdefault(event.name, SpanStats(event.name))
            wall = float(event.fields.get("wall_s", 0.0))
            stats.count += 1
            stats.total_wall_s += wall
            stats.total_cpu_s += float(event.fields.get("cpu_s", 0.0))
            stats.max_wall_s = max(stats.max_wall_s, wall)
            if event.fields.get("error"):
                stats.errors += 1
        elif event.kind == "counter":
            summary.counters[event.name] = event.fields.get("value", 0)
        elif event.kind == "gauge":
            summary.gauges[event.name] = event.fields.get("value", 0)
        else:
            tally = TallyCounter(summary.event_tally)
            tally[event.name] += 1
            summary.event_tally = dict(tally)
    summary.spans = sorted(
        spans.values(), key=lambda s: s.total_wall_s, reverse=True
    )
    return summary


def render_summary(summary: TelemetrySummary, top: int = 10) -> str:
    """Human-readable digest: top-N spans, counters, gauges, events."""
    parts: list[str] = []
    span_rows = [
        [s.name, s.count, s.total_wall_s * 1e3, s.mean_wall_s * 1e3,
         s.max_wall_s * 1e3, s.total_cpu_s * 1e3, s.errors]
        for s in summary.spans[:top]
    ]
    parts.append(
        _render_table(
            ["span", "count", "total ms", "mean ms", "max ms",
             "cpu ms", "errors"],
            span_rows,
            floatfmt=".3f",
            title=f"Top spans by total wall time ({summary.num_events} events)",
        )
    )
    if summary.counters:
        parts.append(
            _render_table(
                ["counter", "value"],
                sorted(summary.counters.items()),
                title="Counters",
            )
        )
    if summary.gauges:
        parts.append(
            _render_table(
                ["gauge", "value"],
                sorted(summary.gauges.items()),
                floatfmt=".4g",
                title="Gauges",
            )
        )
    if summary.event_tally:
        parts.append(
            _render_table(
                ["event", "count"],
                sorted(summary.event_tally.items()),
                title="Events",
            )
        )
    return "\n\n".join(parts)


def report_telemetry(path: str | Path, top: int = 10) -> str:
    """Load + summarise + render one JSONL log (the CLI entry point)."""
    return render_summary(summarize(load_events(path)), top=top)
