"""Observability layer: spans, counters, structured events, sinks.

The substrate every long-running stage of the pipeline emits into —
benchmark campaigns (:mod:`repro.bench.runner`), model training
(:mod:`repro.core.selector`), and selection serving
(:mod:`repro.core.tuner`, :mod:`repro.core.surface`). See
``docs/observability.md`` for the event schema and span naming
conventions.

Typical wiring (what the CLI does for ``--telemetry run.jsonl``)::

    from repro.obs import FileSink, get_telemetry

    telemetry = get_telemetry()
    telemetry.add_sink(FileSink("run.jsonl"))
    ...  # run the pipeline
    telemetry.flush()  # counters -> events
"""

from repro.obs.drift import DriftDetector, ResidualStats
from repro.obs.events import TelemetryEvent
from repro.obs.gate import (
    GATE_METRICS,
    GateResult,
    compare_metrics,
    compare_reports,
    gate_verdict,
)
from repro.obs.report import (
    SpanStats,
    TelemetrySummary,
    load_events,
    render_summary,
    report_telemetry,
    summarize,
)
from repro.obs.sinks import FileSink, MemorySink, NullSink, Sink, StderrSink
from repro.obs.telemetry import (
    DEFAULT_BUCKETS_US,
    Histogram,
    HistogramSnapshot,
    Span,
    Telemetry,
    get_telemetry,
)

__all__ = [
    "TelemetryEvent",
    "Telemetry",
    "Span",
    "Histogram",
    "HistogramSnapshot",
    "DEFAULT_BUCKETS_US",
    "get_telemetry",
    "Sink",
    "MemorySink",
    "FileSink",
    "StderrSink",
    "NullSink",
    "SpanStats",
    "TelemetrySummary",
    "load_events",
    "summarize",
    "render_summary",
    "report_telemetry",
    "GATE_METRICS",
    "GateResult",
    "compare_metrics",
    "compare_reports",
    "gate_verdict",
    "DriftDetector",
    "ResidualStats",
]
