"""Structured telemetry events (the one schema every sink speaks).

Every record the observability layer emits — span completions, counter
flushes, gauges, ad-hoc events such as ``cache_corrupt`` — is one
:class:`TelemetryEvent`. The wire format is JSONL: one
``json.dumps(event.to_dict())`` per line, so logs concatenate, stream,
and ``grep`` trivially and ``repro report --telemetry`` can summarise
any run after the fact.

Schema (all events)::

    ts      float   unix timestamp at emission
    kind    str     "span" | "counter" | "gauge" | "histogram" | "event"
    name    str     hierarchical, "/"-separated (e.g. "campaign/d1/n=16")
    pid     int     emitting process
    thread  str     emitting thread name
    fields  dict    kind-specific payload

Kind-specific ``fields``:

* ``span`` — ``wall_s`` (elapsed wall time), ``cpu_s`` (thread CPU
  time), ``depth`` (nesting level, 0 = root), plus any annotations the
  instrumented code attached (``samples``, ``rows``, ``kernel`` ...).
* ``counter`` — ``value`` (cumulative count at flush time).
* ``gauge`` — ``value`` (last-write-wins scalar).
* ``histogram`` — ``count``, ``sum``, and (when non-empty) the
  interpolated ``p50``/``p99``/``p999`` quantiles at flush time.
* ``event`` — free-form payload (e.g. ``cache_corrupt`` carries
  ``path`` and ``error``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

#: the event kinds the schema admits
KINDS = ("span", "counter", "gauge", "histogram", "event")


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured telemetry record."""

    kind: str
    name: str
    fields: Mapping[str, Any] = field(default_factory=dict)
    ts: float = field(default_factory=time.time)
    pid: int = field(default_factory=os.getpid)
    thread: str = field(default_factory=lambda: threading.current_thread().name)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; one of {KINDS}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (stable key order, JSON-ready)."""
        return {
            "ts": self.ts,
            "kind": self.kind,
            "name": self.name,
            "pid": self.pid,
            "thread": self.thread,
            "fields": dict(self.fields),
        }

    def to_json(self) -> str:
        """One JSONL line (no trailing newline)."""
        return json.dumps(self.to_dict(), separators=(",", ":"), default=str)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "TelemetryEvent":
        """Inverse of :meth:`to_dict` (used by the report reader)."""
        return TelemetryEvent(
            kind=data["kind"],
            name=data["name"],
            fields=dict(data.get("fields", {})),
            ts=float(data.get("ts", 0.0)),
            pid=int(data.get("pid", 0)),
            thread=str(data.get("thread", "")),
        )

    @staticmethod
    def from_json(line: str) -> "TelemetryEvent":
        return TelemetryEvent.from_dict(json.loads(line))
