"""Performance dataset container (the paper's Table II objects).

A :class:`PerfDataset` holds one benchmarked sample per (configuration,
nodes, ppn, message size) tuple: exactly the labelled training data the
paper's tuning step consumes. Configurations are referenced by their
integer ``u`` id — the index into ``configs``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind


class CorruptDatasetError(ValueError):
    """A dataset carries rows no sane benchmark could have produced.

    NaN, infinite or negative runtimes (and non-positive instance
    axes) are the signature of a torn archive, a bad merge, or an
    unhandled fault upstream. Training would not crash on them — it
    would silently learn garbage — so loading and merging reject them
    loudly instead (with a ``dataset_corrupt`` telemetry event).
    """


@dataclass
class PerfDataset:
    """Benchmark results for one (collective, library, machine) triple."""

    name: str
    collective: CollectiveKind
    library: str
    machine: str
    configs: tuple[AlgorithmConfig, ...]
    #: parallel sample arrays
    config_id: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    nodes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    ppn: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    msize: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    time: np.ndarray = field(default_factory=lambda: np.empty(0, float))

    def __post_init__(self) -> None:
        n = len(self.config_id)
        for attr in ("nodes", "ppn", "msize", "time"):
            if len(getattr(self, attr)) != n:
                raise ValueError(f"column {attr} has wrong length")
        if n and (self.config_id.min() < 0 or self.config_id.max() >= len(self.configs)):
            raise ValueError("config_id out of range")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.config_id)

    # ------------------------------------------------------------------
    def validate(self) -> "PerfDataset":
        """Reject rows that would poison training; returns ``self``.

        Raises :class:`CorruptDatasetError` on NaN/infinite/negative
        runtimes or non-positive ``nodes``/``ppn`` (a 0-byte message
        is legitimate, so ``msize`` only needs to be >= 0). Called by
        :meth:`load` and :meth:`merge`; campaign output is clean by
        construction (the runner quarantines invalid measurements).
        """
        if len(self) == 0:
            return self
        bad_time = ~np.isfinite(self.time) | (self.time < 0)
        if bad_time.any():
            idx = np.flatnonzero(bad_time)
            raise CorruptDatasetError(
                f"dataset {self.name!r}: {len(idx)} row(s) with "
                f"NaN/inf/negative time (first at row {int(idx[0])}: "
                f"{self.time[idx[0]]!r})"
            )
        bad_axes = (self.nodes < 1) | (self.ppn < 1) | (self.msize < 0)
        if bad_axes.any():
            idx = int(np.flatnonzero(bad_axes)[0])
            raise CorruptDatasetError(
                f"dataset {self.name!r}: invalid instance axes at row "
                f"{idx} (nodes={int(self.nodes[idx])}, "
                f"ppn={int(self.ppn[idx])}, msize={int(self.msize[idx])})"
            )
        return self

    def merge(self, other: "PerfDataset", name: str | None = None) -> "PerfDataset":
        """Concatenate another dataset's rows (same tuning space).

        Both operands are validated first — merging is exactly where a
        corrupt shard would otherwise slip into a clean training set.
        """
        if self.configs != other.configs or self.collective != other.collective:
            raise ValueError(
                f"cannot merge {other.name!r} into {self.name!r}: "
                "different tuning spaces"
            )
        self.validate()
        other.validate()
        return PerfDataset(
            name=name or self.name,
            collective=self.collective,
            library=self.library,
            machine=self.machine,
            configs=self.configs,
            config_id=np.concatenate([self.config_id, other.config_id]),
            nodes=np.concatenate([self.nodes, other.nodes]),
            ppn=np.concatenate([self.ppn, other.ppn]),
            msize=np.concatenate([self.msize, other.msize]),
            time=np.concatenate([self.time, other.time]),
        )

    @property
    def num_algorithms(self) -> int:
        """Distinct algorithm ids (the paper's '#algorithms' column)."""
        return len({c.algid for c in self.configs})

    def subset(self, mask: np.ndarray, name: str | None = None) -> "PerfDataset":
        """New dataset with the rows selected by the boolean ``mask``."""
        return PerfDataset(
            name=name or self.name,
            collective=self.collective,
            library=self.library,
            machine=self.machine,
            configs=self.configs,
            config_id=self.config_id[mask],
            nodes=self.nodes[mask],
            ppn=self.ppn[mask],
            msize=self.msize[mask],
            time=self.time[mask],
        )

    def filter_nodes(self, node_counts, name: str | None = None) -> "PerfDataset":
        """Rows whose node count is in ``node_counts`` (Table III splits)."""
        mask = np.isin(self.nodes, np.asarray(list(node_counts)))
        return self.subset(mask, name)

    def rows_of_config(self, config_id: int) -> np.ndarray:
        """Boolean mask of the samples of one configuration."""
        return self.config_id == config_id

    # ------------------------------------------------------------------
    def instances(self) -> np.ndarray:
        """Unique (nodes, ppn, msize) triples, lexicographically sorted."""
        stacked = np.stack([self.nodes, self.ppn, self.msize], axis=1)
        return np.unique(stacked, axis=0)

    def instance_table(self) -> dict[tuple[int, int, int], dict[int, float]]:
        """{(n, ppn, m): {config_id: time}} lookup for evaluation.

        When a configuration was benchmarked repeatedly for the same
        instance, the last sample wins (datasets generated by the
        runner have unique keys).
        """
        table: dict[tuple[int, int, int], dict[int, float]] = {}
        for cid, n, ppn, m, t in zip(
            self.config_id, self.nodes, self.ppn, self.msize, self.time,
            strict=True,
        ):
            table.setdefault((int(n), int(ppn), int(m)), {})[int(cid)] = float(t)
        return table

    def summary(self) -> dict:
        """The dataset's Table II row."""
        return {
            "dataset": self.name,
            "routine": f"MPI_{str(self.collective).capitalize()}",
            "library": self.library,
            "machine": self.machine,
            "#algorithms": self.num_algorithms,
            "#nodes": len(np.unique(self.nodes)) if len(self) else 0,
            "#ppn": len(np.unique(self.ppn)) if len(self) else 0,
            "#msg_sizes": len(np.unique(self.msize)) if len(self) else 0,
            "#samples": len(self),
        }

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist to ``.npz`` (+ JSON sidecar for the config list).

        Both files are written atomically (temp file + ``os.replace``)
        so an interrupted run — ctrl-C mid-campaign, a full disk, two
        processes racing on the same cache — can never leave a torn,
        half-written archive behind. A reader either sees the previous
        complete file or the new complete file.
        """
        path = Path(path)
        npz_path = path.with_suffix(".npz")
        tmp_npz = npz_path.with_name(f".{npz_path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp_npz, "wb") as fh:
                np.savez_compressed(
                    fh,
                    config_id=self.config_id,
                    nodes=self.nodes,
                    ppn=self.ppn,
                    msize=self.msize,
                    time=self.time,
                )
            os.replace(tmp_npz, npz_path)  # atomic on POSIX
        finally:
            if tmp_npz.exists():  # failed write: leave no droppings
                tmp_npz.unlink()
        meta = {
            "name": self.name,
            "collective": str(self.collective),
            "library": self.library,
            "machine": self.machine,
            "configs": [
                {
                    "algid": c.algid,
                    "name": c.name,
                    "params": dict(c.params),
                }
                for c in self.configs
            ],
        }
        json_path = path.with_suffix(".json")
        tmp_json = json_path.with_name(f".{json_path.name}.{os.getpid()}.tmp")
        try:
            tmp_json.write_text(json.dumps(meta, indent=2))
            os.replace(tmp_json, json_path)
        finally:
            if tmp_json.exists():
                tmp_json.unlink()

    def to_csv(self, path: str | Path) -> None:
        """Export samples as CSV (one row per measurement).

        Columns mirror the authors' published dataset format: the
        instance axes, the configuration id plus its decoded algorithm
        name/parameters, and the measured runtime in seconds.
        """
        path = Path(path)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with tmp.open("w") as fh:
                fh.write(
                    "config_id,algid,algorithm,params,nodes,ppn,msize,time_s\n"
                )
                for cid, n, ppn, m, t in zip(
                    self.config_id, self.nodes, self.ppn, self.msize,
                    self.time, strict=True,
                ):
                    cfg = self.configs[int(cid)]
                    params = ";".join(f"{k}={v}" for k, v in cfg.params)
                    fh.write(
                        f"{int(cid)},{cfg.algid},{cfg.name},{params},"
                        f"{int(n)},{int(ppn)},{int(m)},{t:.9e}\n"
                    )
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()

    @staticmethod
    def load(path: str | Path) -> "PerfDataset":
        """Load a dataset saved with :meth:`save`.

        Rejects archives whose rows fail :meth:`validate` with a
        :class:`CorruptDatasetError` (plus a ``dataset_corrupt``
        telemetry event and a ``dataset.corrupt`` counter) — bad rows
        must never reach training silently. The on-disk cache treats
        that exactly like a torn file: discard and regenerate.
        """
        path = Path(path)
        arrays = np.load(path.with_suffix(".npz"))
        meta = json.loads(path.with_suffix(".json").read_text())
        configs = tuple(
            AlgorithmConfig.make(
                meta["collective"], c["algid"], c["name"], **c["params"]
            )
            for c in meta["configs"]
        )
        dataset = PerfDataset(
            name=meta["name"],
            collective=CollectiveKind(meta["collective"]),
            library=meta["library"],
            machine=meta["machine"],
            configs=configs,
            config_id=arrays["config_id"],
            nodes=arrays["nodes"],
            ppn=arrays["ppn"],
            msize=arrays["msize"],
            time=arrays["time"],
        )
        try:
            return dataset.validate()
        except CorruptDatasetError as exc:
            from repro.obs import get_telemetry  # local: keep import graph lean

            telemetry = get_telemetry()
            telemetry.event(
                "dataset_corrupt", path=str(path),
                error=f"{type(exc).__name__}: {exc}",
            )
            telemetry.add("dataset.corrupt")
            raise
