"""Size-class tuning: the framework applied to MVAPICH's knob shape.

MVAPICH cannot be told "use algorithm X at exactly (n, ppn, m)"; it can
only be told which algorithm serves each *message-size class* (paper
§IV-B). Tuning it with our models is therefore a small aggregation on
top of the per-configuration regressors: for a given allocation, pick
per class the configuration minimising the predicted runtime *summed
over representative message sizes of that class*.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.selector import AlgorithmSelector
from repro.mpilib.mvapich import (
    MEDIUM_LIMIT,
    SMALL_LIMIT,
    MVAPICHLibrary,
    SizeClass,
)
from repro.utils.units import KiB, MiB

#: representative message sizes probed per class
CLASS_PROBES: dict[SizeClass, tuple[int, ...]] = {
    SizeClass.SMALL: (16, 256, KiB, 4 * KiB),
    SizeClass.MEDIUM: (16 * KiB, 64 * KiB, 256 * KiB),
    SizeClass.LARGE: (MiB, 4 * MiB),
}


def _check_probes() -> None:
    for m in CLASS_PROBES[SizeClass.SMALL]:
        assert m < SMALL_LIMIT
    for m in CLASS_PROBES[SizeClass.MEDIUM]:
        assert SMALL_LIMIT <= m < MEDIUM_LIMIT
    for m in CLASS_PROBES[SizeClass.LARGE]:
        assert m >= MEDIUM_LIMIT


_check_probes()


def tune_size_classes(
    selector: AlgorithmSelector,
    nodes: int,
    ppn: int,
) -> dict[SizeClass, AlgorithmConfig]:
    """Best configuration per size class for one allocation.

    The selector must have been trained on a dataset over the *same*
    configuration space (``selector.configs_``); the per-class winner
    minimises the total predicted runtime over the class's probe sizes.
    """
    choice: dict[SizeClass, AlgorithmConfig] = {}
    for cls, probes in CLASS_PROBES.items():
        totals = np.zeros(len(selector.configs_))
        for m in probes:
            totals += selector.predict_times(nodes, ppn, m)[0]
        winner = int(np.argmin(totals))
        if not np.isfinite(totals[winner]):
            raise ValueError(f"no modelled configuration covers class {cls}")
        choice[cls] = selector.configs_[winner]
    return choice


def apply_class_tuning(
    library: MVAPICHLibrary,
    collective: CollectiveKind | str,
    selector: AlgorithmSelector,
    nodes: int,
    ppn: int,
) -> dict[SizeClass, AlgorithmConfig]:
    """Tune and install the per-class choices into the library."""
    choices = tune_size_classes(selector, nodes, ppn)
    for cls, config in choices.items():
        library.set_class_algorithm(collective, cls, config)
    return choices
