"""The selection designs the paper rejected (§III-A), for ablation A2.

Two alternative selector designs are implemented with the same
interface as :class:`AlgorithmSelector` so the A2 benchmark can compare
them head to head on identical splits:

* :class:`SpeedupRatioSelector` — the authors' *previous* design [9]:
  one model per configuration predicting the speed-up ratio against the
  default strategy, selection by argmax ratio. The paper's critique:
  the default is itself instance-dependent, so the target function has
  discontinuities wherever the default's decision boundaries lie, and
  ratios live in (0, inf) which biases split-based learners.
* :class:`BestLabelSelector` — directly predict the winning
  configuration's id as a label. The paper's critique: a few
  configurations win almost everywhere, so the label distribution is
  heavily imbalanced.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable

import numpy as np

from repro.core.dataset import PerfDataset
from repro.core.features import instance_features
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.ml.base import Regressor
from repro.ml.scaling import StandardScaler
from repro.mpilib.base import MPILibrary
from scipy.spatial import cKDTree


class SpeedupRatioSelector:
    """Per-configuration regression on speed-up *ratios* vs the default."""

    def __init__(
        self,
        learner_factory: Callable[[], Regressor],
        library: MPILibrary,
        machine: MachineModel,
        min_samples: int = 8,
    ) -> None:
        self.learner_factory = learner_factory
        self.library = library
        self.machine = machine
        self.min_samples = min_samples
        self.models_: dict[int, Regressor] = {}
        self.configs_ = ()
        self._fitted = False

    def fit(self, dataset: PerfDataset) -> "SpeedupRatioSelector":
        self.configs_ = dataset.configs
        table = dataset.instance_table()
        ds_index = {cfg: i for i, cfg in enumerate(dataset.configs)}
        # Default runtime per instance (the ratio denominator).
        default_time: dict[tuple[int, int, int], float] = {}
        for (n, ppn, m), measured in table.items():
            cfg = self.library.default_config(
                self.machine, Topology(n, ppn), dataset.collective, m
            )
            cid = ds_index.get(cfg)
            if cid is not None and cid in measured:
                default_time[(n, ppn, m)] = measured[cid]
        X_all = instance_features(dataset.nodes, dataset.ppn, dataset.msize)
        keys = list(zip(dataset.nodes, dataset.ppn, dataset.msize, strict=True))
        denominators = np.array(
            [default_time.get((int(n), int(p), int(m)), np.nan) for n, p, m in keys]
        )
        ratios = denominators / dataset.time  # >1 means faster than default
        valid = np.isfinite(ratios)
        for cid in range(len(dataset.configs)):
            mask = dataset.rows_of_config(cid) & valid
            if int(mask.sum()) < self.min_samples:
                continue
            model = self.learner_factory()
            model.fit(X_all[mask], ratios[mask])
            self.models_[cid] = model
        if not self.models_:
            raise ValueError("no configuration had enough valid ratio samples")
        self._fitted = True
        return self

    def predict_times(self, nodes, ppn, msize) -> np.ndarray:
        """Pseudo 'times' = negated ratios so argmin selects argmax ratio."""
        if not self._fitted:
            raise RuntimeError("SpeedupRatioSelector is not fitted yet")
        X = instance_features(nodes, ppn, msize)
        scores = np.full((len(X), len(self.configs_)), np.inf)
        for cid, model in self.models_.items():
            scores[:, cid] = -model.predict(X)
        return scores


class BestLabelSelector:
    """Directly predict the best configuration id (nearest-neighbour vote)."""

    def __init__(self, k: int = 5) -> None:
        self.k = k
        self._tree: cKDTree | None = None
        self._labels: np.ndarray | None = None
        self.configs_ = ()
        self.label_histogram_: Counter = Counter()

    def fit(self, dataset: PerfDataset) -> "BestLabelSelector":
        self.configs_ = dataset.configs
        table = dataset.instance_table()
        feats, labels = [], []
        for (n, ppn, m), measured in table.items():
            if not measured:
                continue
            best = min(measured, key=measured.get)
            feats.append((n, ppn, m))
            labels.append(best)
        feats = np.asarray(feats)
        X = instance_features(feats[:, 0], feats[:, 1], feats[:, 2])
        self._scaler = StandardScaler()
        self._tree = cKDTree(self._scaler.fit_transform(X))
        self._labels = np.asarray(labels)
        self.label_histogram_ = Counter(labels)
        return self

    def predict_times(self, nodes, ppn, msize) -> np.ndarray:
        """Pseudo 'times': 0 for the voted label, inf elsewhere."""
        if self._tree is None:
            raise RuntimeError("BestLabelSelector is not fitted yet")
        X = self._scaler.transform(instance_features(nodes, ppn, msize))
        k = min(self.k, len(self._labels))
        _, idx = self._tree.query(X, k=k)
        if k == 1:
            idx = idx[:, None]
        votes = self._labels[idx]
        out = np.full((len(X), len(self.configs_)), np.inf)
        for i, row in enumerate(votes):
            winner = Counter(row.tolist()).most_common(1)[0][0]
            out[i, winner] = 0.0
            # Runner-up ordering for fallback: vote counts as -rank.
            for cid, count in Counter(row.tolist()).items():
                if cid != winner:
                    out[i, cid] = 1.0 / count
        return out
