"""The paper's contribution: ML-driven algorithm selection for MPI collectives.

Workflow (paper Figure 1):

1. benchmark a library's tuning space over an instance grid
   (:mod:`repro.bench`) producing a :class:`PerfDataset`,
2. fit one regression model per algorithm configuration
   (:class:`AlgorithmSelector` with any :mod:`repro.ml` learner),
3. for an unseen instance, predict every configuration's runtime and
   pick the argmin (paper Figure 3),
4. optionally emit a configuration file to force the selection at
   ``mpirun`` time (:mod:`repro.core.config_gen`).
"""

from repro.core.dataset import CorruptDatasetError, PerfDataset
from repro.core.features import FEATURE_NAMES, instance_features
from repro.core.selector import AlgorithmSelector, NoModelError
from repro.core.evaluation import EvaluationResult, evaluate_selector
from repro.core.config_gen import (
    RulesValidationError,
    parse_ompi_rules,
    render_json,
    render_ompi_rules,
    selection_table,
    validate_rules,
)


def __getattr__(name: str):
    # AutoTuner pulls in repro.bench, which itself stores results as
    # repro.core.dataset.PerfDataset — resolve lazily (PEP 562) to keep
    # the import graph acyclic.
    if name == "AutoTuner":
        from repro.core.tuner import AutoTuner

        return AutoTuner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PerfDataset",
    "FEATURE_NAMES",
    "instance_features",
    "AlgorithmSelector",
    "EvaluationResult",
    "evaluate_selector",
    "AutoTuner",
    "selection_table",
    "render_ompi_rules",
    "render_json",
    "parse_ompi_rules",
    "validate_rules",
    "RulesValidationError",
    "CorruptDatasetError",
    "NoModelError",
]
