"""Online algorithm selection (the STAR-MPI baseline of §VI).

STAR-MPI (Faraj, Yuan & Lowenthal, ICS'06) tunes *inside* the running
application: the first calls of a collective cycle through candidate
algorithms and measure them in situ; once every candidate has been
observed, the fastest is used for the remaining calls. The cost is paid
in application time — every exploration call that picks a bad algorithm
is a slow application call.

This module implements that baseline (plus epsilon-greedy and UCB1
variants that keep exploring under noise) so the offline ML approach of
the paper can be compared against it: the paper's §II argues offline
prediction avoids exactly this in-application exploration cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.collectives.registry import algorithm_from_config
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary
from repro.utils.rng import SeedLike, as_generator


class Policy(str, enum.Enum):
    """Exploration policy of the online tuner."""

    #: measure every candidate once, then commit (STAR-MPI)
    STAR = "star"
    #: commit like STAR but keep exploring with probability epsilon
    EPSILON_GREEDY = "epsilon"
    #: UCB1 bandit on negative runtimes
    UCB = "ucb"


@dataclass
class OnlineResult:
    """Trace of one online-tuned call sequence."""

    #: runtime of each application call (seconds)
    call_times: np.ndarray
    #: configuration chosen at each call
    choices: list[AlgorithmConfig]
    #: configuration the tuner would use next (its final belief)
    final_config: AlgorithmConfig
    #: configuration minimising the true (noise-free) runtime
    oracle_config: AlgorithmConfig
    #: per-call runtime of the oracle (always-best) strategy
    oracle_times: np.ndarray

    @property
    def total_time(self) -> float:
        return float(self.call_times.sum())

    @property
    def regret(self) -> float:
        """Extra time spent versus always running the best algorithm."""
        return float((self.call_times - self.oracle_times).sum())

    @property
    def converged_to_best(self) -> bool:
        """Whether the final belief matches the oracle's choice."""
        return self.final_config == self.oracle_config


class OnlineSelector:
    """In-application tuner over a library's configuration space."""

    def __init__(
        self,
        machine: MachineModel,
        library: MPILibrary,
        collective: CollectiveKind | str,
        policy: Policy | str = Policy.STAR,
        epsilon: float = 0.05,
        ucb_scale: float = 0.3,
        exclude_algids: tuple[int, ...] = (),
        rng: SeedLike = None,
    ) -> None:
        self.machine = machine
        self.library = library
        self.collective = CollectiveKind(collective)
        self.policy = Policy(policy)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")
        self.epsilon = epsilon
        self.ucb_scale = ucb_scale
        self.exclude_algids = exclude_algids
        self._rng = as_generator(rng)

    # ------------------------------------------------------------------
    def run(
        self, topo: Topology, nbytes: int, num_calls: int
    ) -> OnlineResult:
        """Simulate ``num_calls`` collective calls under online tuning."""
        if num_calls < 1:
            raise ValueError("num_calls must be >= 1")
        space = [
            cfg
            for cfg in self.library.config_space(self.collective).configs
            if cfg.algid not in self.exclude_algids
        ]
        algos = [algorithm_from_config(cfg) for cfg in space]
        candidates = [
            (cfg, algo)
            for cfg, algo in zip(space, algos, strict=True)
            if algo.supported(topo, nbytes)
        ]
        if not candidates:
            raise ValueError("no supported configuration for this instance")
        base = np.array(
            [algo.base_time(self.machine, topo, nbytes) for _, algo in candidates]
        )
        oracle_time = float(base.min())

        k = len(candidates)
        counts = np.zeros(k, dtype=np.int64)
        sums = np.zeros(k)
        call_times = np.empty(num_calls)
        choices: list[AlgorithmConfig] = []

        for call in range(num_calls):
            idx = self._pick(call, k, counts, sums)
            observed = float(
                self.machine.noise.sample(base[idx], self._rng)
            )
            counts[idx] += 1
            sums[idx] += observed
            call_times[call] = observed
            choices.append(candidates[idx][0])

        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.inf)
        final = candidates[int(np.argmin(means))][0]
        return OnlineResult(
            call_times=call_times,
            choices=choices,
            final_config=final,
            oracle_config=candidates[int(np.argmin(base))][0],
            oracle_times=np.full(num_calls, oracle_time),
        )

    # ------------------------------------------------------------------
    def _pick(
        self, call: int, k: int, counts: np.ndarray, sums: np.ndarray
    ) -> int:
        # Exploration sweep first: every policy measures each candidate
        # once (STAR-MPI's measuring phase).
        if call < k:
            return call
        means = sums / counts
        if self.policy is Policy.STAR:
            return int(np.argmin(means))
        if self.policy is Policy.EPSILON_GREEDY:
            if self._rng.random() < self.epsilon:
                return int(self._rng.integers(k))
            return int(np.argmin(means))
        # UCB1 on rewards = -time, scaled to the observed range.
        scale = max(means.max() - means.min(), 1e-12) * self.ucb_scale
        bonus = scale * np.sqrt(2.0 * np.log(call + 1) / counts)
        return int(np.argmin(means - bonus))
