"""High-level auto-tuning façade: benchmark -> train -> select.

:class:`AutoTuner` wires the whole paper pipeline together for one
(machine, library, collective) triple. It is what the examples and the
CLI drive; the experiment scripts use the lower-level pieces directly
because they need the Table III train/test discipline.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import DatasetRunner, GridSpec
from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.config_gen import (
    DEFAULT_MSIZES,
    render_json,
    render_ompi_rules,
    selection_table,
)
from repro.core.dataset import PerfDataset
from repro.core.selector import AlgorithmSelector
from repro.core.surface import DecisionSurface
from repro.machine.model import MachineModel
from repro.ml import PAPER_LEARNERS
from repro.ml.base import Regressor
from repro.mpilib.base import MPILibrary
from repro.obs import get_telemetry


@dataclass
class AutoTuner:
    """One-stop tuning pipeline for a collective on a machine."""

    machine: MachineModel
    library: MPILibrary
    collective: CollectiveKind | str
    learner: str | Callable[[], Regressor] = "GAM"
    bench_spec: BenchmarkSpec = field(default_factory=BenchmarkSpec)
    seed: int = 0

    def __post_init__(self) -> None:
        self.collective = CollectiveKind(self.collective)
        if isinstance(self.learner, str):
            try:
                self._learner_factory = PAPER_LEARNERS[self.learner]
            except KeyError:
                raise ValueError(
                    f"unknown learner {self.learner!r}; "
                    f"choose from {sorted(PAPER_LEARNERS)} or pass a factory"
                ) from None
        else:
            self._learner_factory = self.learner
        self.dataset_: PerfDataset | None = None
        self.selector_: AlgorithmSelector | None = None
        self.surface_: DecisionSurface | None = None

    # ------------------------------------------------------------------
    def benchmark(
        self,
        grid: GridSpec,
        exclude_algids: tuple[int, ...] = (),
        name: str = "",
        n_jobs: int | None = None,
        checkpoint: str | None = None,
        resume: bool = False,
    ) -> PerfDataset:
        """Run the benchmark campaign (the offline training-data step).

        ``n_jobs`` spreads the grid's (nodes, ppn) columns over a
        thread pool (default: the ``REPRO_JOBS`` environment variable,
        else serial); the dataset is bit-identical either way.
        ``checkpoint``/``resume`` journal completed chunks so an
        interrupted campaign can resume bit-identically (see
        :meth:`repro.bench.runner.DatasetRunner.run`).
        """
        runner = DatasetRunner(
            self.machine, self.library, self.bench_spec, seed=self.seed
        )
        self.dataset_ = runner.run(
            self.collective, grid, name=name,
            exclude_algids=exclude_algids, n_jobs=n_jobs,
            checkpoint=checkpoint, resume=resume,
        )
        return self.dataset_

    def train(
        self,
        dataset: PerfDataset | None = None,
        n_jobs: int | None = None,
    ) -> AlgorithmSelector:
        """Fit the per-configuration regression ensemble.

        ``n_jobs`` trains the per-configuration models concurrently
        (thread pool; result identical for any worker count).
        """
        ds = dataset if dataset is not None else self.dataset_
        if ds is None:
            raise RuntimeError("benchmark() first, or pass a dataset")
        self.selector_ = AlgorithmSelector(self._learner_factory).fit(
            ds, n_jobs=n_jobs
        )
        self.surface_ = None  # stale: belongs to the previous selector
        return self.selector_

    # ------------------------------------------------------------------
    def build_surface(
        self,
        nodes: tuple[int, ...],
        ppns: tuple[int, ...],
        msizes: tuple[int, ...] = DEFAULT_MSIZES,
    ) -> DecisionSurface:
        """Precompute the argmin surface over a query grid.

        One batched ensemble evaluation; afterwards
        :meth:`recommend_fast` answers in O(1) by nearest-cell lookup
        without ever touching the models again.
        """
        if self.selector_ is None:
            raise RuntimeError("train() first")
        self.surface_ = DecisionSurface.from_selector(
            self.selector_, nodes, ppns, msizes
        )
        return self.surface_

    def recommend(self, nodes: int, ppn: int, msize: int) -> AlgorithmConfig:
        """Predicted-fastest configuration for an (unseen) instance.

        Always queries the live models (exact argmin); see
        :meth:`recommend_fast` for the precomputed-surface path.
        """
        if self.selector_ is None:
            raise RuntimeError("train() first")
        get_telemetry().add("tuner.recommend_full")
        return self.selector_.select(nodes, ppn, msize)

    def recommend_fast(
        self, nodes: int, ppn: int, msize: int
    ) -> AlgorithmConfig:
        """O(1) recommendation from the precomputed decision surface."""
        if self.surface_ is None:
            raise RuntimeError("build_surface() first")
        get_telemetry().add("tuner.recommend_fast")
        return self.surface_.recommend(nodes, ppn, msize)

    def write_rules(
        self,
        path: str,
        nodes: int,
        ppn: int,
        msizes: tuple[int, ...] = DEFAULT_MSIZES,
        fmt: str = "ompi",
    ) -> str:
        """Write the per-allocation selection table to ``path``.

        Returns the rendered text. ``fmt`` is ``"ompi"`` (dynamic rules
        file) or ``"json"``.
        """
        if self.selector_ is None:
            raise RuntimeError("train() first")
        table = selection_table(self.selector_, nodes, ppn, msizes)
        if fmt == "ompi":
            text = render_ompi_rules(self.collective, nodes, ppn, table)
        elif fmt == "json":
            text = render_json(self.collective, nodes, ppn, table)
        else:
            raise ValueError(f"unknown format {fmt!r}")
        with open(path, "w") as handle:
            handle.write(text)
        return text
