"""High-level auto-tuning façade: benchmark -> train -> select.

:class:`AutoTuner` wires the whole paper pipeline together for one
(machine, library, collective) triple. It is what the examples and the
CLI drive; the experiment scripts use the lower-level pieces directly
because they need the Table III train/test discipline.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.faults import FaultSpec, RetryPolicy
from repro.bench.repro_mpi import BenchmarkSpec
from repro.bench.runner import DatasetRunner, GridSpec
from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.config_gen import (
    DEFAULT_MSIZES,
    render_json,
    render_ompi_rules,
    selection_table,
    validate_rules,
)
from repro.core.dataset import PerfDataset
from repro.core.selector import AlgorithmSelector, NoModelError
from repro.core.surface import DecisionSurface
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.ml import PAPER_LEARNERS
from repro.ml.base import Regressor
from repro.mpilib.base import MPILibrary
from repro.obs import get_telemetry


@dataclass
class AutoTuner:
    """One-stop tuning pipeline for a collective on a machine."""

    machine: MachineModel
    library: MPILibrary
    collective: CollectiveKind | str
    learner: str | Callable[[], Regressor] = "GAM"
    bench_spec: BenchmarkSpec = field(default_factory=BenchmarkSpec)
    seed: int = 0
    #: optional deterministic fault injection for the campaign
    faults: FaultSpec | None = None
    #: transient-fault retry policy (campaign layer)
    retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        self.collective = CollectiveKind(self.collective)
        if isinstance(self.learner, str):
            try:
                self._learner_factory = PAPER_LEARNERS[self.learner]
            except KeyError:
                raise ValueError(
                    f"unknown learner {self.learner!r}; "
                    f"choose from {sorted(PAPER_LEARNERS)} or pass a factory"
                ) from None
        else:
            self._learner_factory = self.learner
        self.dataset_: PerfDataset | None = None
        self.selector_: AlgorithmSelector | None = None
        self.surface_: DecisionSurface | None = None
        #: quarantined measurement sites of the last campaign
        self.quarantine_: list = []
        #: training-grid axes captured by train(); serves servable()
        self._grid_axes: tuple[tuple[int, ...], ...] = ((), (), ())

    # ------------------------------------------------------------------
    def benchmark(
        self,
        grid: GridSpec,
        exclude_algids: tuple[int, ...] = (),
        name: str = "",
        n_jobs: int | None = None,
        checkpoint: str | None = None,
        resume: bool = False,
    ) -> PerfDataset:
        """Run the benchmark campaign (the offline training-data step).

        ``n_jobs`` spreads the grid's (nodes, ppn) columns over a
        thread pool (default: the ``REPRO_JOBS`` environment variable,
        else serial); the dataset is bit-identical either way.
        ``checkpoint``/``resume`` journal completed chunks so an
        interrupted campaign can resume bit-identically (see
        :meth:`repro.bench.runner.DatasetRunner.run`).
        """
        runner = DatasetRunner(
            self.machine, self.library, self.bench_spec, seed=self.seed,
            faults=self.faults, retry=self.retry,
        )
        self.dataset_ = runner.run(
            self.collective, grid, name=name,
            exclude_algids=exclude_algids, n_jobs=n_jobs,
            checkpoint=checkpoint, resume=resume,
        )
        self.quarantine_ = runner.quarantine_
        return self.dataset_

    def train(
        self,
        dataset: PerfDataset | None = None,
        n_jobs: int | None = None,
    ) -> AlgorithmSelector:
        """Fit the per-configuration regression ensemble.

        ``n_jobs`` trains the per-configuration models concurrently
        (thread pool; result identical for any worker count).
        """
        ds = dataset if dataset is not None else self.dataset_
        if ds is None:
            raise RuntimeError("benchmark() first, or pass a dataset")
        self.selector_ = AlgorithmSelector(self._learner_factory).fit(
            ds, n_jobs=n_jobs
        )
        self.surface_ = None  # stale: belongs to the previous selector
        # remember the training grid: it is the natural serving grid for
        # surface shards built over this selector (see servable())
        self._grid_axes = (
            tuple(int(v) for v in sorted(set(ds.nodes.tolist()))),
            tuple(int(v) for v in sorted(set(ds.ppn.tolist()))),
            tuple(int(v) for v in sorted(set(ds.msize.tolist()))),
        )
        return self.selector_

    # ------------------------------------------------------------------
    def build_surface(
        self,
        nodes: tuple[int, ...],
        ppns: tuple[int, ...],
        msizes: tuple[int, ...] = DEFAULT_MSIZES,
    ) -> DecisionSurface:
        """Precompute the argmin surface over a query grid.

        One batched ensemble evaluation; afterwards
        :meth:`recommend_fast` answers in O(1) by nearest-cell lookup
        without ever touching the models again.
        """
        if self.selector_ is None:
            raise RuntimeError("train() first")
        self.surface_ = DecisionSurface.from_selector(
            self.selector_, nodes, ppns, msizes
        )
        return self.surface_

    def default_config(self, nodes: int, ppn: int, msize: int) -> AlgorithmConfig:
        """The library's built-in decision logic for one instance.

        The graceful-degradation floor: whatever happened to the models
        — every candidate quarantined, the whole ensemble unusable —
        this answer is always available and always valid, because it is
        exactly what the library would have done without us.
        """
        return self.library.default_config(
            self.machine, Topology(nodes, ppn), self.collective, msize
        )

    def recommend(self, nodes: int, ppn: int, msize: int) -> AlgorithmConfig:
        """Predicted-fastest configuration for an (unseen) instance.

        Always queries the live models (exact argmin); see
        :meth:`recommend_fast` for the precomputed-surface path. When
        no model covers the instance (all candidates quarantined), the
        library's default decision logic answers instead — counted as
        ``tuner.fallback_default`` and reported via a
        ``tuner_fallback`` event.
        """
        if self.selector_ is None:
            raise RuntimeError("train() first")
        telemetry = get_telemetry()
        telemetry.add("tuner.recommend_full")
        try:
            return self.selector_.select(nodes, ppn, msize)
        except NoModelError:
            return self._fallback(nodes, ppn, msize, source="recommend")

    def recommend_fast(
        self, nodes: int, ppn: int, msize: int
    ) -> AlgorithmConfig:
        """O(1) recommendation from the precomputed decision surface.

        Falls back to the library default for uncovered cells, exactly
        like :meth:`recommend`.
        """
        if self.surface_ is None:
            raise RuntimeError("build_surface() first")
        get_telemetry().add("tuner.recommend_fast")
        try:
            return self.surface_.recommend(nodes, ppn, msize)
        except NoModelError:
            return self._fallback(nodes, ppn, msize, source="recommend_fast")

    def _fallback(
        self, nodes: int, ppn: int, msize: int, *, source: str
    ) -> AlgorithmConfig:
        config = self.default_config(nodes, ppn, msize)
        telemetry = get_telemetry()
        telemetry.add("tuner.fallback_default")
        telemetry.event(
            "tuner_fallback", source=source, nodes=nodes, ppn=ppn,
            msize=msize, config=config.label,
        )
        return config

    def servable(
        self,
        msizes: tuple[int, ...] | None = None,
    ):
        """Package the trained selector as a servable model.

        Returns a :class:`repro.serve.registry.SelectorModel` whose
        serving grid is the training grid (``msizes`` overrides the
        message-size axis, e.g. to densify surface shards). Publish it
        with :meth:`repro.serve.registry.ModelRegistry.publish` to put
        this tuner behind a
        :class:`~repro.serve.service.PredictionService`.
        """
        if self.selector_ is None:
            raise RuntimeError("train() first")
        from repro.serve.registry import SelectorModel  # avoid cycle

        nodes_axis, ppn_axis, msize_axis = self._grid_axes
        return SelectorModel(
            selector=self.selector_,
            collective=self.collective,
            grid_axes=(
                nodes_axis, ppn_axis,
                tuple(msizes) if msizes is not None else msize_axis,
            ),
        )

    def write_rules(
        self,
        path: str,
        nodes: int,
        ppn: int,
        msizes: tuple[int, ...] = DEFAULT_MSIZES,
        fmt: str = "ompi",
    ) -> str:
        """Write the per-allocation selection table to ``path``.

        Returns the rendered text. ``fmt`` is ``"ompi"`` (dynamic rules
        file) or ``"json"``.

        Robustness: message sizes no model covers fall back to the
        library's default decision logic (``tuner.fallback_default``),
        so the emitted file is always complete; the rendered text is
        **validated by parsing it back**
        (:func:`~repro.core.config_gen.validate_rules` — malformed,
        NaN or negative entries abort before touching disk); and the
        write is atomic (tmp + ``os.replace``, matching
        :meth:`~repro.core.dataset.PerfDataset.save`), so a crash
        mid-write can never leave a torn rules file for ``mpirun`` to
        load.
        """
        if self.selector_ is None:
            raise RuntimeError("train() first")

        def fallback(msize: int) -> AlgorithmConfig:
            return self._fallback(nodes, ppn, msize, source="write_rules")

        table = selection_table(
            self.selector_, nodes, ppn, msizes, fallback=fallback
        )
        if fmt == "ompi":
            text = render_ompi_rules(self.collective, nodes, ppn, table)
        elif fmt == "json":
            text = render_json(self.collective, nodes, ppn, table)
        else:
            raise ValueError(f"unknown format {fmt!r}")
        validate_rules(text, fmt, self.collective)
        target = Path(path)
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(text)
            os.replace(tmp, target)  # atomic on POSIX
        finally:
            if tmp.exists():  # failed write: leave no droppings
                tmp.unlink()
        return text
