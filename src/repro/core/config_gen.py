"""Emit selection tables as loadable configuration files.

The paper's deployment story (§II, Problem Statement): once the job's
allocation ``(n, ppn)`` is known — e.g. from SLURM — the model is
queried for 10-15 message sizes and a per-collective configuration file
is written, to be loaded when the application starts. Two formats are
provided:

* an Open MPI ``coll_tuned`` *dynamic rules file* (the format consumed
  by ``--mca coll_tuned_dynamic_rules_filename``), and
* a JSON table for everything else.
"""

from __future__ import annotations

import json
import math
from collections.abc import Callable

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.selector import AlgorithmSelector, NoModelError
from repro.utils.units import KiB, MiB


class RulesValidationError(ValueError):
    """An emitted rules file failed the round-trip validation.

    Raised before anything reaches disk: a malformed, NaN-bearing or
    negative-valued rules file loaded by an MPI job at startup is far
    more expensive than a failed tuning run.
    """

#: Open MPI collective ids used in dynamic rules files
#: (coll_base_functions.h ordering)
_OMPI_COLL_IDS = {
    CollectiveKind.ALLGATHER: 0,
    CollectiveKind.ALLREDUCE: 2,
    CollectiveKind.ALLTOALL: 3,
    CollectiveKind.BCAST: 7,
    CollectiveKind.REDUCE: 11,
}

#: default message-size grid queried when emitting a table (paper: 10-15)
DEFAULT_MSIZES: tuple[int, ...] = (
    0, 16, 256, KiB, 4 * KiB, 16 * KiB, 64 * KiB,
    256 * KiB, 512 * KiB, MiB, 4 * MiB,
)


def selection_table(
    selector: AlgorithmSelector,
    nodes: int,
    ppn: int,
    msizes: tuple[int, ...] = DEFAULT_MSIZES,
    *,
    fallback: Callable[[int], AlgorithmConfig] | None = None,
) -> list[tuple[int, AlgorithmConfig]]:
    """Predicted-best configuration per message size for one allocation.

    All message sizes are scored in **one batched**
    :meth:`~repro.core.selector.AlgorithmSelector.predict_times` call
    (scalar ``nodes``/``ppn`` broadcast against the msize vector), so a
    table over an ensemble of ``k`` models costs ``k`` batch predicts —
    not ``k * len(msizes)`` single-row ones.

    ``fallback(msize)`` supplies the configuration for message sizes no
    model covers (every candidate quarantined or unmodelled) — the
    tuner passes the library's built-in decision logic here, so a
    partially degraded ensemble still yields a complete table. Without
    a fallback such a row raises
    :class:`~repro.core.selector.NoModelError`.
    """
    if not msizes:
        return []
    cids = selector.select_ids(nodes, ppn, np.asarray(msizes, dtype=np.int64))
    table: list[tuple[int, AlgorithmConfig]] = []
    for m, cid in zip(msizes, cids, strict=True):
        if cid >= 0:
            table.append((int(m), selector.configs_[int(cid)]))
        elif fallback is not None:
            table.append((int(m), fallback(int(m))))
        else:
            raise NoModelError(
                f"no model covers msize={int(m)} at (nodes={nodes}, "
                f"ppn={ppn}) and no fallback was provided"
            )
    return table


def render_ompi_rules(
    collective: CollectiveKind | str,
    nodes: int,
    ppn: int,
    table: list[tuple[int, AlgorithmConfig]],
) -> str:
    """Render an Open MPI ``coll_tuned`` dynamic rules file.

    Format (one communicator-size rule): for every message size, the
    line ``<msize> <algorithm> <fanout> <segsize>``.
    """
    kind = CollectiveKind(collective)
    comm_size = nodes * ppn
    lines = [
        "1  # num of collectives",
        f"{_OMPI_COLL_IDS[kind]}  # collective id ({kind})",
        "1  # number of comm sizes",
        f"{comm_size}  # comm size ({nodes} nodes x {ppn} ppn)",
        f"{len(table)}  # number of msg sizes",
    ]
    for m, cfg in table:
        params = cfg.param_dict
        fanout = params.get("chains", params.get("radix", 0)) or 0
        seg = params.get("segsize") or 0
        lines.append(
            f"{m} {cfg.algid} {fanout} {seg}  # {cfg.label}"
        )
    return "\n".join(lines) + "\n"


def parse_ompi_rules(
    text: str,
) -> tuple[CollectiveKind, int, list[tuple[int, int, int, int]]]:
    """Parse a dynamic rules file produced by :func:`render_ompi_rules`.

    Returns ``(collective, comm_size, rules)`` with one
    ``(msize, algid, fanout, segsize)`` tuple per message-size rule.
    Inverse of the renderer (tested as a round trip); also accepts
    hand-written files in the same single-collective layout.
    """
    values: list[list[int]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            values.append([int(tok) for tok in line.split()])
    if len(values) < 5:
        raise ValueError("truncated rules file")
    (n_coll,), (coll_id,), (n_comm,), (comm_size,), (n_rules,) = values[:5]
    if n_coll != 1 or n_comm != 1:
        raise ValueError(
            "only single-collective/single-comm-size files are supported"
        )
    by_id = {v: k for k, v in _OMPI_COLL_IDS.items()}
    try:
        kind = by_id[coll_id]
    except KeyError:
        raise ValueError(f"unknown Open MPI collective id {coll_id}") from None
    rules = values[5 : 5 + n_rules]
    if len(rules) != n_rules or any(len(r) != 4 for r in rules):
        raise ValueError("rule lines must be '<msize> <alg> <fanout> <segsize>'")
    return kind, comm_size, [tuple(r) for r in rules]


def render_json(
    collective: CollectiveKind | str,
    nodes: int,
    ppn: int,
    table: list[tuple[int, AlgorithmConfig]],
) -> str:
    """Render the generic JSON selection table."""
    payload = {
        "collective": str(CollectiveKind(collective)),
        "nodes": nodes,
        "ppn": ppn,
        "rules": [
            {
                "msize": m,
                "algid": cfg.algid,
                "algorithm": cfg.name,
                "params": cfg.param_dict,
            }
            for m, cfg in table
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


# ----------------------------------------------------------------------
def validate_rules(
    text: str,
    fmt: str,
    collective: CollectiveKind | str,
) -> None:
    """Strict round-trip validation of an emitted rules file.

    Parses ``text`` back with the *reader* for its format and rejects
    anything an MPI job could choke on at startup: malformed structure,
    a collective mismatch, non-integer fields, NaN/infinite values and
    negative sizes/ids. Raises :class:`RulesValidationError`; returns
    ``None`` on success.
    """
    kind = CollectiveKind(collective)
    if fmt == "ompi":
        try:
            parsed_kind, comm_size, rules = parse_ompi_rules(text)
        except (ValueError, KeyError, TypeError) as exc:
            raise RulesValidationError(
                f"emitted ompi rules do not parse back: {exc}"
            ) from exc
        if parsed_kind is not kind:
            raise RulesValidationError(
                f"rules file is for {parsed_kind}, expected {kind}"
            )
        if comm_size <= 0:
            raise RulesValidationError(f"non-positive comm size {comm_size}")
        for msize, algid, fanout, segsize in rules:
            if min(msize, algid, fanout, segsize) < 0:
                raise RulesValidationError(
                    f"negative field in rule {(msize, algid, fanout, segsize)}"
                )
    elif fmt == "json":
        def _reject_constant(token: str) -> None:
            raise RulesValidationError(
                f"non-finite constant {token!r} in JSON rules"
            )

        try:
            payload = json.loads(text, parse_constant=_reject_constant)
        except json.JSONDecodeError as exc:
            raise RulesValidationError(
                f"emitted JSON rules do not parse back: {exc}"
            ) from exc
        if payload.get("collective") != str(kind):
            raise RulesValidationError(
                f"rules file is for {payload.get('collective')!r}, "
                f"expected {kind}"
            )
        rules_list = payload.get("rules")
        if not isinstance(rules_list, list):
            raise RulesValidationError("JSON rules payload has no rule list")
        for rule in rules_list:
            if not isinstance(rule, dict):
                raise RulesValidationError(f"malformed rule entry {rule!r}")
            for key in ("msize", "algid"):
                value = rule.get(key)
                if not isinstance(value, int) or value < 0:
                    raise RulesValidationError(
                        f"rule field {key}={value!r} must be a "
                        "non-negative integer"
                    )
            for pkey, pval in (rule.get("params") or {}).items():
                if isinstance(pval, float) and not math.isfinite(pval):
                    raise RulesValidationError(
                        f"non-finite parameter {pkey}={pval!r}"
                    )
    else:
        raise RulesValidationError(f"unknown rules format {fmt!r}")
