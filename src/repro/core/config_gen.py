"""Emit selection tables as loadable configuration files.

The paper's deployment story (§II, Problem Statement): once the job's
allocation ``(n, ppn)`` is known — e.g. from SLURM — the model is
queried for 10-15 message sizes and a per-collective configuration file
is written, to be loaded when the application starts. Two formats are
provided:

* an Open MPI ``coll_tuned`` *dynamic rules file* (the format consumed
  by ``--mca coll_tuned_dynamic_rules_filename``), and
* a JSON table for everything else.
"""

from __future__ import annotations

import json

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.core.selector import AlgorithmSelector
from repro.utils.units import KiB, MiB

#: Open MPI collective ids used in dynamic rules files
#: (coll_base_functions.h ordering)
_OMPI_COLL_IDS = {
    CollectiveKind.ALLGATHER: 0,
    CollectiveKind.ALLREDUCE: 2,
    CollectiveKind.ALLTOALL: 3,
    CollectiveKind.BCAST: 7,
    CollectiveKind.REDUCE: 11,
}

#: default message-size grid queried when emitting a table (paper: 10-15)
DEFAULT_MSIZES: tuple[int, ...] = (
    0, 16, 256, KiB, 4 * KiB, 16 * KiB, 64 * KiB,
    256 * KiB, 512 * KiB, MiB, 4 * MiB,
)


def selection_table(
    selector: AlgorithmSelector,
    nodes: int,
    ppn: int,
    msizes: tuple[int, ...] = DEFAULT_MSIZES,
) -> list[tuple[int, AlgorithmConfig]]:
    """Predicted-best configuration per message size for one allocation.

    All message sizes are scored in **one batched**
    :meth:`~repro.core.selector.AlgorithmSelector.predict_times` call
    (scalar ``nodes``/``ppn`` broadcast against the msize vector), so a
    table over an ensemble of ``k`` models costs ``k`` batch predicts —
    not ``k * len(msizes)`` single-row ones.
    """
    if not msizes:
        return []
    cids = selector.select_ids(nodes, ppn, np.asarray(msizes, dtype=np.int64))
    return [
        (int(m), selector.configs_[int(cid)])
        for m, cid in zip(msizes, cids)
    ]


def render_ompi_rules(
    collective: CollectiveKind | str,
    nodes: int,
    ppn: int,
    table: list[tuple[int, AlgorithmConfig]],
) -> str:
    """Render an Open MPI ``coll_tuned`` dynamic rules file.

    Format (one communicator-size rule): for every message size, the
    line ``<msize> <algorithm> <fanout> <segsize>``.
    """
    kind = CollectiveKind(collective)
    comm_size = nodes * ppn
    lines = [
        "1  # num of collectives",
        f"{_OMPI_COLL_IDS[kind]}  # collective id ({kind})",
        "1  # number of comm sizes",
        f"{comm_size}  # comm size ({nodes} nodes x {ppn} ppn)",
        f"{len(table)}  # number of msg sizes",
    ]
    for m, cfg in table:
        params = cfg.param_dict
        fanout = params.get("chains", params.get("radix", 0)) or 0
        seg = params.get("segsize") or 0
        lines.append(
            f"{m} {cfg.algid} {fanout} {seg}  # {cfg.label}"
        )
    return "\n".join(lines) + "\n"


def parse_ompi_rules(
    text: str,
) -> tuple[CollectiveKind, int, list[tuple[int, int, int, int]]]:
    """Parse a dynamic rules file produced by :func:`render_ompi_rules`.

    Returns ``(collective, comm_size, rules)`` with one
    ``(msize, algid, fanout, segsize)`` tuple per message-size rule.
    Inverse of the renderer (tested as a round trip); also accepts
    hand-written files in the same single-collective layout.
    """
    values: list[list[int]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            values.append([int(tok) for tok in line.split()])
    if len(values) < 5:
        raise ValueError("truncated rules file")
    (n_coll,), (coll_id,), (n_comm,), (comm_size,), (n_rules,) = values[:5]
    if n_coll != 1 or n_comm != 1:
        raise ValueError(
            "only single-collective/single-comm-size files are supported"
        )
    by_id = {v: k for k, v in _OMPI_COLL_IDS.items()}
    try:
        kind = by_id[coll_id]
    except KeyError:
        raise ValueError(f"unknown Open MPI collective id {coll_id}") from None
    rules = values[5 : 5 + n_rules]
    if len(rules) != n_rules or any(len(r) != 4 for r in rules):
        raise ValueError("rule lines must be '<msize> <alg> <fanout> <segsize>'")
    return kind, comm_size, [tuple(r) for r in rules]


def render_json(
    collective: CollectiveKind | str,
    nodes: int,
    ppn: int,
    table: list[tuple[int, AlgorithmConfig]],
) -> str:
    """Render the generic JSON selection table."""
    payload = {
        "collective": str(CollectiveKind(collective)),
        "nodes": nodes,
        "ppn": ppn,
        "rules": [
            {
                "msize": m,
                "algid": cfg.algid,
                "algorithm": cfg.name,
                "params": cfg.param_dict,
            }
            for m, cfg in table
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
