"""Precomputed decision surfaces: O(1) selection lookups.

A fitted :class:`~repro.core.selector.AlgorithmSelector` answers
"which configuration is fastest here?" by querying every per-config
model — fine for a handful of queries, wasteful when the same selector
is interrogated thousands of times (plot grids, simulated schedulers,
per-message dispatch studies). :class:`DecisionSurface` materialises
the selector's argmin over a (nodes, ppn, msize) grid **once**, with a
single batched :meth:`predict_times` call over the full mesh, and then
serves recommendations by nearest-cell lookup:

* ``nodes`` and ``ppn`` snap to the nearest grid value on the linear
  scale,
* ``msize`` snaps on the **log scale** (``log2(m + 1)``, the same
  transform the feature encoding uses), because message-size grids are
  geometric — linear snapping would glue everything to the largest
  cell.

Lookups never touch the underlying models again, so a query costs
three ``searchsorted`` probes on tiny axes — O(1) for all practical
purposes, and ~10^4x cheaper than re-running a 200-round booster per
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collectives.base import AlgorithmConfig
from repro.core.selector import AlgorithmSelector, NoModelError
from repro.obs import get_telemetry


def _nearest(axis: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Index of the nearest element of sorted ``axis`` per value.

    Equidistant queries snap to the larger grid value.
    """
    if len(axis) == 1:
        return np.zeros(np.shape(values), dtype=np.intp)
    pos = np.clip(np.searchsorted(axis, values), 1, len(axis) - 1)
    left = axis[pos - 1]
    right = axis[pos]
    return pos - (values - left < right - values)


@dataclass(frozen=True)
class DecisionSurface:
    """Argmin lookup grid over (nodes, ppn, msize)."""

    nodes_axis: np.ndarray  #: sorted int64, shape (Nn,)
    ppn_axis: np.ndarray  #: sorted int64, shape (Np,)
    msize_axis: np.ndarray  #: sorted int64, shape (Nm,)
    best_cid: np.ndarray  #: int64, shape (Nn, Np, Nm)
    best_time: np.ndarray  #: float64 predicted runtime of the winner
    configs: tuple[AlgorithmConfig, ...]

    @staticmethod
    def from_selector(
        selector: AlgorithmSelector,
        nodes: tuple[int, ...] | np.ndarray,
        ppns: tuple[int, ...] | np.ndarray,
        msizes: tuple[int, ...] | np.ndarray,
    ) -> "DecisionSurface":
        """Evaluate the selector over the full mesh in one batched call."""
        nodes_axis = np.unique(np.asarray(nodes, dtype=np.int64))
        ppn_axis = np.unique(np.asarray(ppns, dtype=np.int64))
        msize_axis = np.unique(np.asarray(msizes, dtype=np.int64))
        if min(len(nodes_axis), len(ppn_axis), len(msize_axis)) == 0:
            raise ValueError("all three grid axes must be non-empty")
        grid_n, grid_p, grid_m = np.meshgrid(
            nodes_axis, ppn_axis, msize_axis, indexing="ij"
        )
        with get_telemetry().span(
            "surface/build", cells=int(grid_n.size),
            configs=len(selector.configs_),
        ):
            times = selector.predict_times(
                grid_n.ravel(), grid_p.ravel(), grid_m.ravel()
            )
        shape = grid_n.shape
        best = np.argmin(times, axis=1)
        # Cells where every configuration predicts +inf (all candidates
        # quarantined/unmodelled) carry the sentinel -1 instead of a
        # meaningless argmin; recommend() surfaces them as NoModelError
        # so callers (AutoTuner.recommend_fast) can fall back to the
        # library default.
        covered = np.isfinite(times).any(axis=1)
        if not covered.all():
            best = np.where(covered, best, -1)
            get_telemetry().add(
                "surface.uncovered_cells", int((~covered).sum())
            )
        return DecisionSurface(
            nodes_axis=nodes_axis,
            ppn_axis=ppn_axis,
            msize_axis=msize_axis,
            best_cid=best.reshape(shape),
            best_time=times[np.arange(len(best)), np.maximum(best, 0)]
            .reshape(shape),
            configs=selector.configs_,
        )

    # ------------------------------------------------------------------
    def cell_of(
        self,
        nodes: np.ndarray | int,
        ppn: np.ndarray | int,
        msize: np.ndarray | int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Nearest grid cell per query (log-scale snap on msize)."""
        nodes_v, ppn_v, msize_v = np.broadcast_arrays(
            np.atleast_1d(np.asarray(nodes, dtype=float)),
            np.atleast_1d(np.asarray(ppn, dtype=float)),
            np.atleast_1d(np.asarray(msize, dtype=float)),
        )
        i = _nearest(self.nodes_axis.astype(float), nodes_v)
        j = _nearest(self.ppn_axis.astype(float), ppn_v)
        k = _nearest(
            np.log2(self.msize_axis.astype(float) + 1.0),
            np.log2(msize_v + 1.0),
        )
        return i, j, k

    def exact_cell_of(
        self,
        nodes: np.ndarray | int,
        ppn: np.ndarray | int,
        msize: np.ndarray | int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exact axis positions per query; ``-1`` where a value is off-axis.

        Unlike :meth:`cell_of` this never snaps: a position is returned
        only when the queried value is literally a grid point, which is
        what the decision-table compiler (:mod:`repro.serve.compiled`)
        needs — an exact cell's argmin came from a real
        ``predict_times`` row for that very instance, so serving it is
        bit-identical to the cold selector.
        """

        def exact(axis: np.ndarray, values: np.ndarray) -> np.ndarray:
            pos = np.clip(np.searchsorted(axis, values), 0, len(axis) - 1)
            return np.where(axis[pos] == values, pos, -1)

        nodes_v, ppn_v, msize_v = np.broadcast_arrays(
            np.atleast_1d(np.asarray(nodes, dtype=np.int64)),
            np.atleast_1d(np.asarray(ppn, dtype=np.int64)),
            np.atleast_1d(np.asarray(msize, dtype=np.int64)),
        )
        return (
            exact(self.nodes_axis, nodes_v),
            exact(self.ppn_axis, ppn_v),
            exact(self.msize_axis, msize_v),
        )

    def select_ids(
        self,
        nodes: np.ndarray | int,
        ppn: np.ndarray | int,
        msize: np.ndarray | int,
    ) -> np.ndarray:
        """Winning configuration id per query instance (-1 = uncovered)."""
        i, j, k = self.cell_of(nodes, ppn, msize)
        get_telemetry().add("surface.lookups", int(np.size(i)))
        return self.best_cid[i, j, k]

    def recommend(self, nodes: int, ppn: int, msize: int) -> AlgorithmConfig:
        """Predicted-fastest configuration (nearest-cell, O(1)).

        Raises :class:`~repro.core.selector.NoModelError` for cells no
        model covers (sentinel ``-1`` in ``best_cid``).
        """
        cid = int(self.select_ids(nodes, ppn, msize)[0])
        if cid < 0:
            raise NoModelError(
                f"no model covers the cell nearest to (nodes={nodes}, "
                f"ppn={ppn}, msize={msize})"
            )
        return self.configs[cid]

    def on_grid(self, nodes: int, ppn: int, msize: int) -> bool:
        """Whether the instance is an exact grid point (no snapping).

        On-grid queries return the selector's *exact* argmin (the
        surface cell was computed from a real ``predict_times`` row for
        this very instance); off-grid queries are nearest-cell
        approximations. The serving layer uses this to report whether a
        surface-mode answer is exact or snapped.
        """
        i, j, k = self.exact_cell_of(nodes, ppn, msize)
        return bool(i[0] >= 0 and j[0] >= 0 and k[0] >= 0)

    def predicted_time(self, nodes: int, ppn: int, msize: int) -> float:
        """The winner's predicted runtime at the snapped cell."""
        i, j, k = self.cell_of(nodes, ppn, msize)
        return float(self.best_time[i, j, k][0])

    @property
    def num_cells(self) -> int:
        return int(self.best_cid.size)
