"""Evaluation of selection strategies against measured data.

The paper's evaluation protocol (§V): all runtimes — of the predicted,
the default, and the empirically best configuration — are *looked up in
the measured dataset*, never re-benchmarked, so the comparison is
exact. Three per-instance quantities result:

* ``best`` — exhaustive-search oracle (normalisation reference),
* ``default`` — the library's hard-coded decision logic,
* ``predicted`` — the measured runtime of the configuration our
  selector picked.

Table IV reports the mean speed-up ``default / predicted``; the figures
plot runtimes normalised by ``best``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import PerfDataset
from repro.core.selector import AlgorithmSelector
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary


@dataclass
class EvaluationResult:
    """Per-instance strategy comparison over a test dataset."""

    #: instance axes, one row per evaluated instance
    nodes: np.ndarray
    ppn: np.ndarray
    msize: np.ndarray
    #: measured runtimes per strategy
    best_time: np.ndarray
    default_time: np.ndarray
    predicted_time: np.ndarray
    #: chosen configuration ids
    best_id: np.ndarray
    default_id: np.ndarray
    predicted_id: np.ndarray
    #: dataset the lookup was done against
    dataset_name: str = ""
    skipped: int = 0

    # ------------------------------------------------------------------
    @property
    def speedup_vs_default(self) -> np.ndarray:
        """Per-instance ``default / predicted`` (the paper's Table IV stat)."""
        return self.default_time / self.predicted_time

    @property
    def mean_speedup(self) -> float:
        return float(np.mean(self.speedup_vs_default))

    @property
    def normalized_predicted(self) -> np.ndarray:
        """Predicted strategy runtime normalised by the oracle."""
        return self.predicted_time / self.best_time

    @property
    def normalized_default(self) -> np.ndarray:
        return self.default_time / self.best_time

    def __len__(self) -> int:
        return len(self.nodes)

    def filter(self, **axes: int) -> "EvaluationResult":
        """Sub-result for fixed instance axes, e.g. ``filter(nodes=27, ppn=16)``."""
        mask = np.ones(len(self), dtype=bool)
        for name, value in axes.items():
            mask &= getattr(self, name) == value
        return EvaluationResult(
            nodes=self.nodes[mask],
            ppn=self.ppn[mask],
            msize=self.msize[mask],
            best_time=self.best_time[mask],
            default_time=self.default_time[mask],
            predicted_time=self.predicted_time[mask],
            best_id=self.best_id[mask],
            default_id=self.default_id[mask],
            predicted_id=self.predicted_id[mask],
            dataset_name=self.dataset_name,
            skipped=self.skipped,
        )


def evaluate_selector(
    selector: AlgorithmSelector,
    test_dataset: PerfDataset,
    library: MPILibrary,
    machine: MachineModel,
) -> EvaluationResult:
    """Compare predicted vs default vs oracle on a held-out dataset.

    The default strategy's configuration is asked from the library's
    decision logic per instance; if that exact configuration was not
    benchmarked on the instance (e.g. the dataset excludes a broken
    algorithm id), the instance is skipped and counted in ``skipped``
    — mirroring the paper, which only evaluates where all three
    strategies have measured times.
    """
    table = test_dataset.instance_table()
    # Map library-space configs onto dataset config ids.
    ds_index = {cfg: i for i, cfg in enumerate(test_dataset.configs)}

    rows: dict[str, list] = {k: [] for k in (
        "nodes", "ppn", "msize", "best_time", "default_time",
        "predicted_time", "best_id", "default_id", "predicted_id",
    )}
    skipped = 0

    instances = test_dataset.instances()
    pred_matrix = selector.predict_times(
        instances[:, 0], instances[:, 1], instances[:, 2]
    )
    for row, pred_times in zip(instances, pred_matrix, strict=True):
        n, ppn, m = (int(v) for v in row)
        measured = table[(n, ppn, m)]
        if not measured:
            skipped += 1
            continue
        # Oracle.
        best_id = min(measured, key=measured.get)
        # Default.
        default_cfg = library.default_config(
            machine, Topology(n, ppn), test_dataset.collective, m
        )
        default_id = ds_index.get(default_cfg)
        if default_id is None or default_id not in measured:
            skipped += 1
            continue
        # Prediction: best predicted config that was actually measured.
        order = np.argsort(pred_times)
        predicted_id = None
        for cid in order:
            if not np.isfinite(pred_times[cid]):
                break
            if int(cid) in measured:
                predicted_id = int(cid)
                break
        if predicted_id is None:
            skipped += 1
            continue
        rows["nodes"].append(n)
        rows["ppn"].append(ppn)
        rows["msize"].append(m)
        rows["best_time"].append(measured[best_id])
        rows["default_time"].append(measured[default_id])
        rows["predicted_time"].append(measured[predicted_id])
        rows["best_id"].append(best_id)
        rows["default_id"].append(default_id)
        rows["predicted_id"].append(predicted_id)

    return EvaluationResult(
        nodes=np.asarray(rows["nodes"], dtype=np.int64),
        ppn=np.asarray(rows["ppn"], dtype=np.int64),
        msize=np.asarray(rows["msize"], dtype=np.int64),
        best_time=np.asarray(rows["best_time"]),
        default_time=np.asarray(rows["default_time"]),
        predicted_time=np.asarray(rows["predicted_time"]),
        best_id=np.asarray(rows["best_id"], dtype=np.int64),
        default_id=np.asarray(rows["default_id"], dtype=np.int64),
        predicted_id=np.asarray(rows["predicted_id"], dtype=np.int64),
        dataset_name=test_dataset.name,
        skipped=skipped,
    )
