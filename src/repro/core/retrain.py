"""Drift-triggered background retraining with active sampling.

The *retrain* step of the closed loop. A :class:`Retrainer` owns a
base (offline) campaign dataset, a fitted baseline selector and a
:class:`~repro.obs.drift.DriftDetector`; it watches the serve-side
feedback log (:mod:`repro.core.feedback`) and, when the residual
median of a collective moves past the drift threshold, refits the
:class:`~repro.core.selector.AlgorithmSelector` on base + feedback
rows — spending fresh benchmark budget *only where model families
disagree* (active sampling).

Active sampling, concretely (the Nuriyev & Lastovetsky idea of using
analytical models as a cheap prior):

1. Estimate per-algorithm **calibration factors** from the feedback
   rows themselves: ``calib[algid] = median(observed / predicted)``.
   This is everything the retrainer learns about the shifted world —
   it never sees the injected :class:`~repro.core.feedback.WorldShift`
   directly.
2. For every distinct feedback instance, compare the **calibrated
   analytical argmin** against the **base selector's argmin**. Where
   the two families agree the base model is presumed still right and
   no budget is spent; where they disagree (or the base selector has
   no coverage) the full supported-configuration column at that
   instance is re-measured.
3. ``budget_frac = measured_samples / full_grid_samples`` — the
   headline number :mod:`scripts.bench_report` exports as
   ``retrain_budget_frac`` and the gate keeps ≤ the naive full-grid
   refit.

Re-measured instances *replace* the stale base rows at those sites
(mixing pre- and post-shift samples of the same configuration would
poison the regression); feedback rows replace base rows at their exact
``(instance, config)`` sites for the same reason. The refit goes
through the ordinary :meth:`AutoTuner.train` path, so publishing is
the existing machinery too: :meth:`AutoTuner.write_rules` for the
fleet's two-phase ``stage``/``commit`` reload, or
:meth:`AutoTuner.servable` for an in-process registry publish.

After a successful retrain the detector is **rebased** to the median
residual the refit just corrected for — the same shift never
re-triggers, a further shift does.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.collectives.base import CollectiveKind
from repro.collectives.registry import algorithm_from_config
from repro.core.dataset import PerfDataset
from repro.core.feedback import FeedbackRow, WorldShift, read_feedback
from repro.core.selector import AlgorithmSelector
from repro.core.tuner import AutoTuner
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary
from repro.obs import get_telemetry
from repro.obs.drift import (
    DEFAULT_MIN_SAMPLES,
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    DriftDetector,
    ResidualStats,
)
from repro.utils.rng import as_generator, stable_seed

Instance = tuple[int, int, int]


@dataclass(frozen=True)
class RetrainPolicy:
    """Knobs of the drift trigger and the active-sampling budget."""

    #: drift trigger: |median residual - baseline| > threshold
    threshold: float = DEFAULT_THRESHOLD
    #: residuals required before the trigger may fire
    min_samples: int = DEFAULT_MIN_SAMPLES
    #: bounded residual window per (collective, version)
    window: int = DEFAULT_WINDOW
    #: measure everything (the naive refit active sampling is graded
    #: against); exposed so the bench harness can compare budgets
    exhaustive: bool = False
    #: relative regret under which two choices count as agreeing —
    #: config spaces contain exact analytical ties (e.g. every segsize
    #: >= msize behaves identically), so id-equality is meaningless
    margin: float = 0.02


@dataclass
class RetrainResult:
    """Outcome of one retrain round (the bench-report raw material)."""

    collective: str
    #: distinct feedback instances considered
    instances: int
    #: instances whose column was re-measured (families disagreed)
    disagreements: int
    #: samples actually measured this round
    measured_samples: int
    #: samples a naive full-grid refit over the same instances costs
    full_grid_samples: int
    #: median log-residual the refit corrected for (detector rebase)
    log_shift: float
    #: the refitted tuner — ``write_rules``/``servable`` publish it
    tuner: AutoTuner
    #: base + replacements + feedback, what the tuner was fitted on
    dataset: PerfDataset
    rules_path: str = ""

    @property
    def budget_frac(self) -> float:
        """Measured / full-grid samples — the gated headline metric."""
        if self.full_grid_samples <= 0:
            return 0.0
        return self.measured_samples / self.full_grid_samples

    @property
    def selector(self) -> AlgorithmSelector:
        selector = self.tuner.selector_
        assert selector is not None  # train() ran in retrain()
        return selector


def shifted_times(
    machine: MachineModel,
    library: MPILibrary,
    collective: CollectiveKind | str,
    instance: Instance,
    *,
    shift: WorldShift | None = None,
) -> np.ndarray:
    """True (noise-free) shifted time of every config at one instance.

    Unsupported configurations are ``+inf``. This is the ground truth
    the closed-loop tests and the bench report grade selections
    against.
    """
    kind = CollectiveKind(collective)
    shift = shift if shift is not None else WorldShift()
    nodes, ppn, msize = instance
    topo = Topology(nodes, ppn)
    algos = [
        algorithm_from_config(cfg)
        for cfg in library.config_space(kind).configs
    ]
    out = np.full(len(algos), np.inf)
    for cid, algo in enumerate(algos):
        if algo.supported(topo, msize):
            out[cid] = algo.base_time(machine, topo, msize) * shift.scale(
                algo.config.algid
            )
    return out


def oracle_ids(
    machine: MachineModel,
    library: MPILibrary,
    collective: CollectiveKind | str,
    instances: Sequence[Instance],
    *,
    shift: WorldShift | None = None,
) -> list[int]:
    """Ground-truth best config id per instance under ``shift``.

    Noise-free argmin over the *shifted* analytical base times.
    Instances with no supported configuration get ``-1``. Beware exact
    ties — several configurations can share the optimum (every segsize
    >= msize behaves identically), which is why agreement is graded on
    *times* (:func:`selection_agreement`), not ids.
    """
    out: list[int] = []
    for instance in instances:
        times = shifted_times(
            machine, library, collective, instance, shift=shift
        )
        cid = int(np.argmin(times))
        out.append(cid if math.isfinite(times[cid]) else -1)
    return out


def selection_agreement(
    selector: AlgorithmSelector,
    machine: MachineModel,
    library: MPILibrary,
    collective: CollectiveKind | str,
    instances: Sequence[Instance],
    *,
    shift: WorldShift | None = None,
    margin: float = 0.02,
) -> float:
    """Fraction of instances whose pick is within ``margin`` of oracle.

    A selection *agrees* with the shifted oracle when its true shifted
    runtime is within ``(1 + margin)`` of the oracle optimum — the
    tie-robust notion of agreement (config spaces contain exact
    analytical ties, so id-equality would under-count arbitrarily).
    """
    if not instances:
        return 1.0
    nodes = np.asarray([i[0] for i in instances])
    ppn = np.asarray([i[1] for i in instances])
    msize = np.asarray([i[2] for i in instances])
    chosen = selector.select_ids(nodes, ppn, msize)
    hits = 0
    for instance, cid in zip(instances, chosen):
        if int(cid) < 0:
            continue
        times = shifted_times(
            machine, library, collective, instance, shift=shift
        )
        best = float(np.min(times))
        if math.isfinite(best) and times[int(cid)] <= best * (1.0 + margin):
            hits += 1
    return hits / len(instances)


class Retrainer:
    """Watches feedback, refits on drift, publishes via the tuner.

    The ``shift`` here plays the *machine*: when the retrainer decides
    to re-measure a column it samples the machine's noise model around
    the shifted analytical time, exactly as the serve-side feedback
    logger does — it stands in for running the real benchmark on the
    drifted system. Decisions (what to measure) only ever use the
    feedback-derived calibration, never ``shift`` itself.
    """

    def __init__(
        self,
        machine: MachineModel,
        library: MPILibrary,
        collective: CollectiveKind | str,
        base_dataset: PerfDataset,
        *,
        seed: int = 0,
        learner: str = "GAM",
        policy: RetrainPolicy = RetrainPolicy(),
        shift: WorldShift | None = None,
        detector: DriftDetector | None = None,
    ) -> None:
        self.machine = machine
        self.library = library
        self.collective = CollectiveKind(collective)
        self.base_dataset = base_dataset
        self.seed = int(seed)
        self.learner = learner
        self.policy = policy
        self.shift = shift if shift is not None else WorldShift()
        self.detector = (
            detector
            if detector is not None
            else DriftDetector(
                threshold=policy.threshold,
                min_samples=policy.min_samples,
                window=policy.window,
            )
        )
        self._configs = library.config_space(self.collective).configs
        self._algos = [algorithm_from_config(c) for c in self._configs]
        base_tuner = AutoTuner(
            machine, library, self.collective, learner=learner, seed=seed
        )
        self._base_selector = base_tuner.train(base_dataset)
        #: feedback rows already fed to the detector (watch() bookkeeping)
        self._fed = 0

    # -- drift scan ----------------------------------------------------
    def scan(self, rows: Sequence[FeedbackRow]) -> list[ResidualStats]:
        """Feed *new* rows into the detector; return drifting groups.

        Idempotent over a growing log: remembers how many rows it has
        already consumed, so calling it repeatedly with the full
        re-read log only feeds the tail.
        """
        fresh = rows[self._fed:]
        if fresh:
            self.detector.observe_rows(fresh)
            self._fed = len(rows)
        return self.detector.drifting()

    # -- active sampling -----------------------------------------------
    def calibration(
        self, rows: Iterable[FeedbackRow]
    ) -> dict[int, float]:
        """Per-algid median observed/predicted — the learned prior.

        The only window the retrainer has onto the shifted world;
        algorithms with no feedback default to factor 1.0.
        """
        ratios: dict[int, list[float]] = {}
        kind = str(self.collective)
        for row in rows:
            if row.collective != kind or row.config_id >= len(self._configs):
                continue
            algid = self._configs[row.config_id].algid
            ratios.setdefault(algid, []).append(
                row.observed_time / row.predicted_time
            )
        return {
            algid: float(np.median(values))
            for algid, values in ratios.items()
        }

    def _supported(self, instance: Instance) -> list[int]:
        nodes, ppn, msize = instance
        topo = Topology(nodes, ppn)
        return [
            cid
            for cid, algo in enumerate(self._algos)
            if algo.supported(topo, msize)
        ]

    def _calibrated_times(
        self, instance: Instance, supported: list[int], calib: dict[int, float]
    ) -> dict[int, float]:
        """Analytical times under the feedback-estimated calibration."""
        nodes, ppn, msize = instance
        topo = Topology(nodes, ppn)
        out: dict[int, float] = {}
        for cid in supported:
            algo = self._algos[cid]
            out[cid] = algo.base_time(self.machine, topo, msize) * calib.get(
                algo.config.algid, 1.0
            )
        return out

    def _families_disagree(
        self, instance: Instance, supported: list[int],
        calib: dict[int, float], base_cid: int,
    ) -> bool:
        """Does the calibrated prior call the base model's pick bad?

        The active-sampling trigger: the learned family (base selector)
        and the analytical family (calibrated by feedback) disagree
        when the base pick's calibrated time exceeds the calibrated
        optimum by more than the policy margin — or when the base model
        has no coverage at all. Margin-based, not argmin-equality:
        config spaces contain exact analytical ties.
        """
        if base_cid < 0 or base_cid not in supported:
            return True
        times = self._calibrated_times(instance, supported, calib)
        best = min(times.values())
        return times[base_cid] > best * (1.0 + self.policy.margin)

    def _measure_column(
        self, instance: Instance, supported: list[int]
    ) -> list[tuple[int, float]]:
        """Benchmark one instance's supported configs on the shifted world."""
        nodes, ppn, msize = instance
        topo = Topology(nodes, ppn)
        out: list[tuple[int, float]] = []
        for cid in supported:
            algo = self._algos[cid]
            base = float(algo.base_time(self.machine, topo, msize))
            rng = as_generator(
                stable_seed(
                    "retrain", self.seed, str(self.collective),
                    nodes, ppn, msize, algo.config.algid,
                )
            )
            observed = float(
                self.machine.noise.sample(
                    base * self.shift.scale(algo.config.algid), rng
                )
            )
            out.append((cid, observed))
        return out

    # -- the retrain round ---------------------------------------------
    def retrain(
        self,
        rows: Sequence[FeedbackRow],
        *,
        n_jobs: int | None = None,
    ) -> RetrainResult:
        """One refit round over the current feedback log.

        Deterministic: the same ``(base dataset, rows, seed)`` yields a
        bit-identical merged dataset and selector.
        """
        telemetry = get_telemetry()
        kind = str(self.collective)
        mine = [r for r in rows if r.collective == kind]
        instances = sorted({(r.nodes, r.ppn, r.msize) for r in mine})
        calib = self.calibration(mine)
        supported = {inst: self._supported(inst) for inst in instances}
        full_grid = sum(len(cids) for cids in supported.values())

        flagged: list[Instance] = []
        if instances:
            nodes = np.asarray([i[0] for i in instances])
            ppn = np.asarray([i[1] for i in instances])
            msize = np.asarray([i[2] for i in instances])
            base_ids = self._base_selector.select_ids(nodes, ppn, msize)
            for inst, base_cid in zip(instances, base_ids):
                if self.policy.exhaustive or self._families_disagree(
                    inst, supported[inst], calib, int(base_cid)
                ):
                    flagged.append(inst)

        with telemetry.span(
            "retrain/measure", collective=kind, instances=len(instances),
            flagged=len(flagged),
        ):
            m_cid: list[int] = []
            m_nodes: list[int] = []
            m_ppn: list[int] = []
            m_msize: list[int] = []
            m_time: list[float] = []
            for inst in flagged:
                for cid, observed in self._measure_column(
                    inst, supported[inst]
                ):
                    m_cid.append(cid)
                    m_nodes.append(inst[0])
                    m_ppn.append(inst[1])
                    m_msize.append(inst[2])
                    m_time.append(observed)
        measured_samples = len(m_time)

        merged = self._merge(mine, flagged, m_cid, m_nodes, m_ppn,
                             m_msize, m_time)
        tuner = AutoTuner(
            self.machine, self.library, self.collective,
            learner=self.learner, seed=self.seed,
        )
        with telemetry.span(
            "retrain/fit", collective=kind, rows=len(merged),
        ):
            tuner.train(merged, n_jobs=n_jobs)

        residuals = sorted(r.residual for r in mine)
        log_shift = 0.0
        if residuals:
            mid = len(residuals) // 2
            log_shift = (
                residuals[mid]
                if len(residuals) % 2
                else 0.5 * (residuals[mid - 1] + residuals[mid])
            )
        self.detector.rebase(kind, log_shift)

        telemetry.add("retrain.rounds")
        telemetry.add("retrain.measured_samples", measured_samples)
        telemetry.event(
            "retrain_round", collective=kind, instances=len(instances),
            disagreements=len(flagged), measured_samples=measured_samples,
            full_grid_samples=full_grid, log_shift=log_shift,
        )
        return RetrainResult(
            collective=kind,
            instances=len(instances),
            disagreements=len(flagged),
            measured_samples=measured_samples,
            full_grid_samples=full_grid,
            log_shift=log_shift,
            tuner=tuner,
            dataset=merged,
        )

    def _merge(
        self,
        rows: list[FeedbackRow],
        flagged: list[Instance],
        m_cid: list[int],
        m_nodes: list[int],
        m_ppn: list[int],
        m_msize: list[int],
        m_time: list[float],
    ) -> PerfDataset:
        """Base minus stale sites, plus measurements, plus feedback."""
        base = self.base_dataset
        flagged_set = set(flagged)
        feedback_sites = {
            (r.nodes, r.ppn, r.msize, r.config_id) for r in rows
        }
        keep = np.asarray([
            (n, p, m) not in flagged_set
            and (n, p, m, c) not in feedback_sites
            for n, p, m, c in zip(
                base.nodes, base.ppn, base.msize, base.config_id
            )
        ], dtype=bool)
        name = f"{base.name}+retrain"
        pruned = PerfDataset(
            name=name,
            collective=base.collective,
            library=base.library,
            machine=base.machine,
            configs=base.configs,
            config_id=base.config_id[keep],
            nodes=base.nodes[keep],
            ppn=base.ppn[keep],
            msize=base.msize[keep],
            time=base.time[keep],
        )
        fresh = PerfDataset(
            name=name,
            collective=base.collective,
            library=base.library,
            machine=base.machine,
            configs=base.configs,
            config_id=np.asarray(
                m_cid + [r.config_id for r in rows], dtype=np.int64
            ),
            nodes=np.asarray(
                m_nodes + [r.nodes for r in rows], dtype=np.int64
            ),
            ppn=np.asarray(m_ppn + [r.ppn for r in rows], dtype=np.int64),
            msize=np.asarray(
                m_msize + [r.msize for r in rows], dtype=np.int64
            ),
            time=np.asarray(
                m_time + [r.observed_time for r in rows], dtype=float
            ),
        )
        fresh.validate()
        if not len(fresh):
            return pruned
        merged = pruned.merge(fresh, name=name)
        merged.validate()
        return merged

    # -- the watch loop ------------------------------------------------
    def watch(
        self,
        feedback_path: str | Path,
        *,
        interval_s: float = 0.5,
        max_rounds: int = 0,
        stop: threading.Event | None = None,
        on_result: Callable[[RetrainResult], None] | None = None,
        n_jobs: int | None = None,
    ) -> list[RetrainResult]:
        """Poll the feedback log; retrain whenever drift fires.

        ``max_rounds`` > 0 exits after that many retrains (the CI
        one-shot uses 1); otherwise the loop runs until ``stop`` is
        set. ``on_result`` is the publish hook — the CLI writes rules
        and pokes the fleet's two-phase reload from it.
        """
        stop = stop if stop is not None else threading.Event()
        results: list[RetrainResult] = []
        telemetry = get_telemetry()
        while not stop.is_set():
            rows = read_feedback(feedback_path)
            drifting = self.scan(rows)
            if drifting:
                telemetry.add("retrain.triggers")
                telemetry.event(
                    "retrain_triggered",
                    collectives=",".join(
                        sorted({s.collective for s in drifting})
                    ),
                    excess=max(s.excess for s in drifting),
                )
                result = self.retrain(rows, n_jobs=n_jobs)
                results.append(result)
                if on_result is not None:
                    on_result(result)
                if max_rounds and len(results) >= max_rounds:
                    break
            stop.wait(interval_s)
        return results


__all__ = [
    "Instance",
    "RetrainPolicy",
    "RetrainResult",
    "Retrainer",
    "oracle_ids",
    "selection_agreement",
]
