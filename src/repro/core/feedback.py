"""Serve-side feedback logging: the *measure* step of the closed loop.

The offline pipeline trains once on a benchmark campaign and never
hears back from serving. This module closes that gap: a
:class:`~repro.serve.service.PredictionService` (or each fleet worker)
configured with a :class:`FeedbackLogger` appends one JSONL row per
served recommendation::

    {"schema": 1, "collective": "bcast", "nodes": 8, "ppn": 2,
     "msize": 65536, "config_id": 7, "config": "chain[...]",
     "observed_time": 1.2e-4, "predicted_time": 1.1e-4,
     "version": 1, "source": "model"}

``observed_time`` is the (simulated) runtime the recommendation
actually achieved — sampled from the machine's noise model around the
analytical base time, optionally scaled by an injected
:class:`WorldShift` standing in for a genuinely drifting machine.
``predicted_time`` is the analytical prediction for the *chosen*
configuration, so ``log(observed/predicted)`` is the residual the
drift detector (:mod:`repro.obs.drift`) watches.

Durability discipline mirrors :mod:`repro.obs`: the writer emits one
flushed line per row (append-only — a crash can tear at most the last
line), and :func:`read_feedback` skips torn/garbage lines with a
``feedback_skipped_lines`` event and a ``serve.feedback.skipped_lines``
counter instead of ever raising — the same reader contract as
:func:`repro.obs.report.load_events`.

Rows convert back into training data through :func:`feedback_dataset`
(a :class:`~repro.core.dataset.PerfDataset` over the library's config
space, ``validate()``-checked) and :func:`merge_feedback` (merged into
a base campaign via the existing ``PerfDataset.merge`` path) — which
is what the background retrainer (:mod:`repro.core.retrain`) refits
on.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Sequence

import numpy as np

from repro.collectives.base import AlgorithmConfig, CollectiveKind
from repro.collectives.registry import algorithm_from_config
from repro.core.dataset import PerfDataset
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.mpilib.base import MPILibrary
from repro.obs import get_telemetry
from repro.utils.rng import as_generator, stable_seed

#: bump when the row shape changes; readers skip unknown schemas
FEEDBACK_SCHEMA = 1


@dataclass(frozen=True)
class WorldShift:
    """Injected drift: scale observed times of selected algorithms.

    A pure simulation stand-in for a machine whose behaviour changed
    under the served model's feet (a degraded link, a fabric firmware
    update). ``factor`` multiplies the base time of every algorithm in
    ``algids`` (all algorithms when empty). A per-``algid`` shift
    changes the *ranking* of configurations — which is what makes the
    served model stale and retraining necessary; a uniform shift only
    moves the residual gauges.
    """

    factor: float = 1.0
    algids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not (self.factor > 0 and math.isfinite(self.factor)):
            raise ValueError(
                f"shift factor must be finite and > 0, got {self.factor!r}"
            )
        object.__setattr__(self, "algids", tuple(int(a) for a in self.algids))

    def scale(self, algid: int) -> float:
        """The factor applied to ``algid``'s observed times."""
        if self.factor == 1.0:
            return 1.0
        if self.algids and int(algid) not in self.algids:
            return 1.0
        return self.factor

    @property
    def identity(self) -> bool:
        return self.factor == 1.0


@dataclass(frozen=True)
class FeedbackRow:
    """One served recommendation plus its measured outcome."""

    collective: str
    nodes: int
    ppn: int
    msize: int
    #: index into the library config space (== PerfDataset config_id)
    config_id: int
    #: configuration label — human-readable, cross-checked on merge
    config: str
    observed_time: float
    predicted_time: float
    #: registry model version that made the choice
    version: int
    source: str = "model"

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.ppn < 1:
            raise ValueError(
                f"nodes/ppn must be >= 1, got {self.nodes}/{self.ppn}"
            )
        if self.msize < 0:
            raise ValueError(f"msize must be >= 0, got {self.msize}")
        if self.config_id < 0:
            raise ValueError(f"config_id must be >= 0, got {self.config_id}")
        if self.version < 0:
            raise ValueError(f"version must be >= 0, got {self.version}")
        for name in ("observed_time", "predicted_time"):
            value = getattr(self, name)
            if not (value > 0 and math.isfinite(value)):
                raise ValueError(
                    f"{name} must be finite and > 0, got {value!r}"
                )

    @property
    def residual(self) -> float:
        """``log(observed / predicted)`` — what the drift detector eats."""
        return math.log(self.observed_time / self.predicted_time)

    def to_dict(self) -> dict:
        return {
            "schema": FEEDBACK_SCHEMA,
            "collective": self.collective,
            "nodes": self.nodes,
            "ppn": self.ppn,
            "msize": self.msize,
            "config_id": self.config_id,
            "config": self.config,
            "observed_time": self.observed_time,
            "predicted_time": self.predicted_time,
            "version": self.version,
            "source": self.source,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def from_dict(payload: dict) -> "FeedbackRow":
        """Strict parse: raises ``ValueError``/``KeyError`` on bad rows
        (the reader turns those into skip-counted lines)."""
        if not isinstance(payload, dict):
            raise ValueError("feedback row must be a JSON object")
        if payload.get("schema") != FEEDBACK_SCHEMA:
            raise ValueError(
                f"unknown feedback schema {payload.get('schema')!r}"
            )
        return FeedbackRow(
            collective=str(payload["collective"]),
            nodes=int(payload["nodes"]),
            ppn=int(payload["ppn"]),
            msize=int(payload["msize"]),
            config_id=int(payload["config_id"]),
            config=str(payload["config"]),
            observed_time=float(payload["observed_time"]),
            predicted_time=float(payload["predicted_time"]),
            version=int(payload["version"]),
            source=str(payload.get("source", "model")),
        )


class FeedbackWriter:
    """Append-only JSONL feedback log; one flushed line per row.

    Appending (never rewriting) is the same durability contract as
    :class:`repro.obs.sinks.FileSink`: a crash mid-write can tear at
    most the final line, and the reader skips torn lines by design.
    Thread-safe — request threads log concurrently.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh: IO[str] | None = self.path.open("a")

    def append(self, row: FeedbackRow) -> None:
        line = row.to_json() + "\n"
        with self._lock:
            if self._fh is None:
                raise ValueError(f"FeedbackWriter {self.path} is closed")
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "FeedbackWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_feedback(path: str | Path) -> list[FeedbackRow]:
    """Load a feedback log, skipping torn/garbage lines — never raises.

    Same reader discipline as :func:`repro.obs.report.load_events`: a
    line that fails to parse or validate is counted and skipped, the
    tally surfaces as a ``serve.feedback.skipped_lines`` counter plus a
    ``feedback_skipped_lines`` event. A missing file is an empty log.
    ``path`` may also be a directory: every ``*.jsonl`` inside is read
    in sorted order (the fleet writes one file per worker).
    """
    path = Path(path)
    if path.is_dir():
        rows: list[FeedbackRow] = []
        for child in sorted(path.glob("*.jsonl")):
            rows.extend(read_feedback(child))
        return rows
    if not path.exists():
        return []
    rows = []
    skipped = 0
    with path.open("r", encoding="utf-8", errors="replace") as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            try:
                rows.append(FeedbackRow.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                skipped += 1
    if skipped:
        telemetry = get_telemetry()
        telemetry.add("serve.feedback.skipped_lines", skipped)
        telemetry.event(
            "feedback_skipped_lines", path=str(path), value=skipped
        )
    return rows


def feedback_dataset(
    rows: Iterable[FeedbackRow],
    *,
    library: MPILibrary,
    collective: CollectiveKind | str,
    machine: str = "",
    name: str = "feedback",
) -> PerfDataset:
    """Convert feedback rows into a validated :class:`PerfDataset`.

    Rows of other collectives are ignored; rows whose ``config_id``
    falls outside the library's config space or whose label no longer
    matches it (a library change under an old log) are skipped and
    counted as ``serve.feedback.stale_rows``.
    """
    kind = CollectiveKind(collective)
    configs = library.config_space(kind).configs
    keep: list[FeedbackRow] = []
    stale = 0
    for row in rows:
        if row.collective != str(kind):
            continue
        if (
            row.config_id >= len(configs)
            or configs[row.config_id].label != row.config
        ):
            stale += 1
            continue
        keep.append(row)
    if stale:
        telemetry = get_telemetry()
        telemetry.add("serve.feedback.stale_rows", stale)
        telemetry.event(
            "feedback_stale_rows", collective=str(kind), value=stale
        )
    dataset = PerfDataset(
        name=name,
        collective=kind,
        library=library.name,
        machine=machine,
        configs=configs,
        config_id=np.asarray([r.config_id for r in keep], dtype=np.int64),
        nodes=np.asarray([r.nodes for r in keep], dtype=np.int64),
        ppn=np.asarray([r.ppn for r in keep], dtype=np.int64),
        msize=np.asarray([r.msize for r in keep], dtype=np.int64),
        time=np.asarray([r.observed_time for r in keep], dtype=float),
    )
    dataset.validate()
    return dataset


def merge_feedback(
    base: PerfDataset, rows: Iterable[FeedbackRow], *, library: MPILibrary
) -> PerfDataset:
    """Merge feedback rows into a base campaign dataset.

    Goes through the existing ``validate()``/``merge()`` path, so the
    merged dataset carries every invariant the offline pipeline
    enforces. Returns ``base`` unchanged when no row survives
    validation.
    """
    feedback = feedback_dataset(
        rows, library=library, collective=base.collective,
        machine=base.machine, name=f"{base.name}+feedback",
    )
    if not len(feedback):
        return base
    return base.merge(feedback, name=f"{base.name}+feedback")


@dataclass(frozen=True)
class FeedbackConfig:
    """JSON-shippable knobs for serve-side feedback logging.

    Travels inside the fleet worker spec, so every field is plain data.
    ``seed`` keys the per-site observation RNG
    (``stable_seed("feedback", seed, site...)``) — a respawned worker
    replays identical observations, which keeps chaos campaigns
    bit-identical to their fault-free twins. ``shift``/``shift_algids``
    describe the injected :class:`WorldShift`.
    """

    path: str
    seed: int = 0
    shift: float = 1.0
    shift_algids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("feedback path must be non-empty")
        object.__setattr__(
            self, "shift_algids", tuple(int(a) for a in self.shift_algids)
        )

    def world_shift(self) -> WorldShift:
        return WorldShift(factor=self.shift, algids=self.shift_algids)

    def to_spec(self) -> dict:
        """The worker-spec JSON fragment."""
        return {
            "path": self.path,
            "seed": self.seed,
            "shift": self.shift,
            "shift_algids": list(self.shift_algids),
        }

    @staticmethod
    def from_spec(spec: dict) -> "FeedbackConfig":
        return FeedbackConfig(
            path=str(spec["path"]),
            seed=int(spec.get("seed", 0)),
            shift=float(spec.get("shift", 1.0)),
            shift_algids=tuple(spec.get("shift_algids", ())),
        )


class FeedbackLogger:
    """Measures (simulated) and logs every served recommendation.

    Owned by a :class:`~repro.serve.service.PredictionService`; `record`
    is called once per resolved recommendation. Besides appending the
    JSONL row it feeds the in-process
    :class:`~repro.obs.drift.DriftDetector` (exported as labelled
    gauges by the fleet) and runs Hunold's performance-guideline check
    once per *distinct* instance as a semantic tripwire
    (``serve.feedback.guideline_violations``).

    Observation determinism: the RNG for one observation is keyed by
    ``stable_seed("feedback", seed, collective, nodes, ppn, msize,
    algid, version)`` — a pure function of the site, so a respawned
    worker re-serving the same instance logs a bit-identical row.

    Failure posture: feedback is telemetry, not the request path. Any
    error inside :meth:`record` is swallowed after counting
    (``serve.feedback.errors``) and emitting a ``feedback_error``
    event — a full disk can never fail a recommendation.
    """

    def __init__(
        self,
        config: FeedbackConfig,
        machine: MachineModel,
        library: MPILibrary,
        detector=None,
    ) -> None:
        from repro.obs.drift import DriftDetector

        self.config = config
        self.machine = machine
        self.library = library
        self.detector = detector if detector is not None else DriftDetector()
        self._writer = FeedbackWriter(config.path)
        self._shift = config.world_shift()
        self._lock = threading.Lock()
        #: collective -> {AlgorithmConfig: config-space index}
        self._cids: dict[str, dict[AlgorithmConfig, int]] = {}
        #: instances already guideline-checked (the tripwire runs once
        #: per distinct instance, not once per request)
        self._checked: set[tuple[int, int, int]] = set()

    @property
    def path(self) -> Path:
        return self._writer.path

    def close(self) -> None:
        self._writer.close()

    # ------------------------------------------------------------------
    def record(self, rec) -> None:
        """Log one served recommendation (never raises)."""
        try:
            self._record(rec)
        except Exception as exc:
            telemetry = get_telemetry()
            telemetry.add("serve.feedback.errors")
            telemetry.event(
                "feedback_error", error=f"{type(exc).__name__}: {exc}"
            )

    def record_many(self, recs: Sequence) -> None:
        for rec in recs:
            self.record(rec)

    def _config_id(self, collective: str, config: AlgorithmConfig) -> int:
        with self._lock:
            table = self._cids.get(collective)
            if table is None:
                space = self.library.config_space(collective)
                table = self._cids[collective] = {
                    cfg: cid for cid, cfg in enumerate(space.configs)
                }
        cid = table.get(config, -1)
        if cid < 0:
            raise ValueError(
                f"served config {config.label!r} is not in the "
                f"{collective} config space"
            )
        return cid

    def observe(
        self,
        config: AlgorithmConfig,
        nodes: int,
        ppn: int,
        msize: int,
        *,
        version: int = 0,
    ) -> tuple[float, float]:
        """(observed, predicted) for one site — the simulated measure.

        ``predicted`` is the analytical base time of the chosen
        configuration; ``observed`` samples the machine's noise model
        around that base scaled by the injected world shift. Pure
        function of ``(config.seed, site)``.
        """
        topo = Topology(nodes, ppn)
        predicted = float(
            algorithm_from_config(config).base_time(self.machine, topo, msize)
        )
        rng = as_generator(
            stable_seed(
                "feedback", self.config.seed, str(config.collective),
                nodes, ppn, msize, config.algid, version,
            )
        )
        observed = float(
            self.machine.noise.sample(
                predicted * self._shift.scale(config.algid), rng
            )
        )
        return observed, predicted

    def _record(self, rec) -> None:
        collective = str(rec.collective)
        cid = self._config_id(collective, rec.config)
        observed, predicted = self.observe(
            rec.config, rec.nodes, rec.ppn, rec.msize, version=rec.version,
        )
        row = FeedbackRow(
            collective=collective,
            nodes=rec.nodes,
            ppn=rec.ppn,
            msize=rec.msize,
            config_id=cid,
            config=rec.config.label,
            observed_time=observed,
            predicted_time=predicted,
            version=rec.version,
            source=rec.source,
        )
        self._writer.append(row)
        self.detector.observe(collective, rec.version, observed, predicted)
        telemetry = get_telemetry()
        telemetry.add("serve.feedback.rows")
        self._check_guidelines(rec.nodes, rec.ppn, rec.msize, collective)

    def _check_guidelines(
        self, nodes: int, ppn: int, msize: int, collective: str
    ) -> None:
        """Hunold's self-consistency tripwire, once per distinct instance."""
        instance = (nodes, ppn, msize)
        with self._lock:
            if instance in self._checked:
                return
            self._checked.add(instance)
        # local import: experiments sits above core in the layer stack
        from repro.experiments.guidelines import check_guidelines

        checks = check_guidelines(self.machine, self.library, [instance])
        violated = sum(1 for check in checks if check.violated)
        if violated:
            telemetry = get_telemetry()
            telemetry.add("serve.feedback.guideline_violations", violated)
            telemetry.event(
                "feedback_guideline_violation", nodes=nodes, ppn=ppn,
                msize=msize, value=violated,
            )
            self.detector.record_violations(collective, violated)


__all__ = [
    "FEEDBACK_SCHEMA",
    "FeedbackConfig",
    "FeedbackLogger",
    "FeedbackRow",
    "FeedbackWriter",
    "WorldShift",
    "feedback_dataset",
    "merge_feedback",
    "read_feedback",
]
