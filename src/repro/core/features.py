"""Instance feature encoding.

An instance is ``(collective, m, n, N)`` (paper §II); the collective is
fixed per selector, so the feature vector encodes the numeric triple
plus the derived total process count ``p = n * N``:

====================  =====================================================
feature               rationale
====================  =====================================================
``log2(m + 1)``       message sizes span seven orders of magnitude and all
                      crossover phenomena are multiplicative in m
``n``                 number of compute nodes
``ppn``               processes per node (NIC-contention axis)
``n * ppn``           total communicator size; trees/butterflies scale
                      with p, so giving it explicitly saves every learner
                      from having to synthesise a product
====================  =====================================================
"""

from __future__ import annotations

import numpy as np

FEATURE_NAMES: tuple[str, ...] = ("log2_msize", "nodes", "ppn", "procs")


def instance_features(
    nodes: np.ndarray | int,
    ppn: np.ndarray | int,
    msize: np.ndarray | int,
) -> np.ndarray:
    """Encode instances as a float feature matrix (n_instances, 4).

    Scalars broadcast; a single instance yields shape (1, 4).
    """
    nodes_arr = np.atleast_1d(np.asarray(nodes, dtype=float))
    ppn_arr = np.atleast_1d(np.asarray(ppn, dtype=float))
    msize_arr = np.atleast_1d(np.asarray(msize, dtype=float))
    nodes_arr, ppn_arr, msize_arr = np.broadcast_arrays(
        nodes_arr, ppn_arr, msize_arr
    )
    if (nodes_arr < 1).any() or (ppn_arr < 1).any():
        raise ValueError("nodes and ppn must be >= 1")
    if (msize_arr < 0).any():
        raise ValueError("message sizes must be >= 0")
    return np.column_stack(
        [
            np.log2(msize_arr + 1.0),
            nodes_arr,
            ppn_arr,
            nodes_arr * ppn_arr,
        ]
    )
