"""Per-configuration regression and argmin selection (paper Figure 3).

One regression model is fitted per algorithm configuration ``u_{j,l}``
on that configuration's benchmarked runtimes. Selecting for an unseen
instance queries every model and returns the configuration with the
smallest predicted runtime. This design avoids both biases the paper
calls out in §III-A:

* regressing *ratios against the default strategy* inherits the
  default's discontinuities (the default is a strategy, not an
  algorithm),
* predicting the best algorithm's *label* is class-imbalanced, because
  a handful of algorithms win almost everywhere.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

import threading

from repro.collectives.base import AlgorithmConfig
from repro.core.dataset import PerfDataset
from repro.core.features import instance_features
from repro.ml import _ckernel
from repro.ml.base import Regressor
from repro.obs import get_telemetry
from repro.utils.parallel import parallel_map


class NoModelError(RuntimeError):
    """No trained model covers the queried instance.

    Raised by :meth:`AlgorithmSelector.select` when every
    configuration's prediction is ``+inf`` — all candidates were
    quarantined (fit failures) or unmodelled (too few samples). Callers
    with a sensible fallback (:class:`repro.core.tuner.AutoTuner` uses
    the library's built-in decision logic) catch this instead of
    receiving a silently meaningless argmin.
    """


class AlgorithmSelector:
    """Runtime-regression ensemble over a tuning space."""

    def __init__(
        self,
        learner_factory: Callable[[], Regressor],
        min_samples: int = 8,
    ) -> None:
        """``learner_factory`` builds one fresh regressor per configuration.

        Configurations with fewer than ``min_samples`` training rows are
        left unmodelled (they are never selected) — a configuration the
        benchmark could not run is not a configuration we can trust.
        """
        self.learner_factory = learner_factory
        self.min_samples = min_samples
        self.models_: dict[int, Regressor] = {}
        self.configs_: tuple[AlgorithmConfig, ...] = ()
        #: configuration ids whose fit raised — excluded from selection
        #: (their predictions are ``+inf``), reported via telemetry
        self.quarantined_: set[int] = set()
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self, dataset: PerfDataset, *, n_jobs: int | None = None
    ) -> "AlgorithmSelector":
        """Fit one model per configuration present in ``dataset``.

        ``n_jobs`` (default: the ``REPRO_JOBS`` environment variable,
        else serial) trains the per-configuration models on a thread
        pool. The result is bit-identical for any worker count: models
        are *created* serially in configuration order — so a factory
        drawing seeds from shared state sees the same call sequence —
        and each model then trains only on its own private RNG.

        Robustness: a configuration whose ``model.fit`` raises is
        **quarantined** instead of killing the whole campaign — the
        exception is recorded (``selector_fit_failure`` event,
        ``selector.fit_failures`` counter), the config id lands in
        ``quarantined_``, and its predictions are ``+inf`` so it can
        never win the argmin. Only if *no* configuration trains at all
        does ``fit`` raise.
        """
        telemetry = get_telemetry()
        self.configs_ = dataset.configs
        self.models_ = {}
        self.quarantined_ = set()
        quarantine_lock = threading.Lock()
        with telemetry.span(
            f"selector/fit/{dataset.name}", dataset=dataset.name,
            rows=len(dataset), configs=len(dataset.configs),
        ) as fit_span:
            X_all = instance_features(
                dataset.nodes, dataset.ppn, dataset.msize
            )
            # Serial, order-stable phase: eligibility + model creation.
            tasks: list[tuple[int, Regressor, np.ndarray]] = []
            for cid in range(len(dataset.configs)):
                mask = dataset.rows_of_config(cid)
                if int(mask.sum()) < self.min_samples:
                    continue
                tasks.append((cid, self.learner_factory(), mask))

            # Parallel phase: each fit touches only its own model and a
            # read-only view of the feature matrix.
            def fit_one(task: tuple[int, Regressor, np.ndarray]) -> None:
                cid, model, mask = task
                try:
                    with telemetry.span(
                        f"selector/fit/{dataset.name}/cid={cid}",
                        absolute=True, samples=int(mask.sum()),
                    ):
                        model.fit(X_all[mask], dataset.time[mask])
                except Exception as exc:
                    with quarantine_lock:
                        self.quarantined_.add(cid)
                    telemetry.add("selector.fit_failures")
                    telemetry.event(
                        "selector_fit_failure", dataset=dataset.name,
                        cid=cid, config=dataset.configs[cid].label,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    return
                telemetry.add("selector.models_fitted")

            parallel_map(fit_one, tasks, n_jobs=n_jobs)
            self.models_ = {
                cid: model
                for cid, model, _ in tasks
                if cid not in self.quarantined_
            }
            fit_span.annotate(
                models=len(self.models_), quarantined=len(self.quarantined_)
            )
        if not self.models_:
            if self.quarantined_:
                raise ValueError(
                    f"every eligible configuration failed to fit "
                    f"({len(self.quarantined_)} quarantined)"
                )
            raise ValueError(
                "no configuration had enough samples to train on "
                f"(min_samples={self.min_samples})"
            )
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict_times(
        self,
        nodes: np.ndarray | int,
        ppn: np.ndarray | int,
        msize: np.ndarray | int,
    ) -> np.ndarray:
        """Predicted runtime matrix of shape (n_instances, n_configs).

        Unmodelled and quarantined configurations are ``+inf`` so they
        never win the argmin. Non-finite *predictions* (a model gone
        numerically bad) are likewise sanitised to ``+inf`` — a NaN in
        the matrix would otherwise poison ``argmin`` row-wide — with a
        ``selector.predictions_sanitized`` counter so the degradation
        is visible rather than silent.
        """
        self._check_fitted()
        telemetry = get_telemetry()
        X = instance_features(nodes, ppn, msize)
        sanitized = 0
        with telemetry.span(
            "selector/predict", rows=len(X), models=len(self.models_),
            kernel="c" if _ckernel.available() else "numpy",
        ):
            times = np.full((len(X), len(self.configs_)), np.inf)
            for cid, model in self.models_.items():
                pred = np.asarray(model.predict(X), dtype=float)
                bad = ~np.isfinite(pred)
                if bad.any():
                    sanitized += int(bad.sum())
                    pred = np.where(bad, np.inf, pred)
                times[:, cid] = pred
        telemetry.add("selector.predict_calls")
        telemetry.add("selector.predict_rows", len(X))
        if sanitized:
            telemetry.add("selector.predictions_sanitized", sanitized)
        return times

    def select_ids(
        self,
        nodes: np.ndarray | int,
        ppn: np.ndarray | int,
        msize: np.ndarray | int,
    ) -> np.ndarray:
        """Configuration id with the smallest predicted runtime per instance.

        Instances for which *no* configuration has a finite prediction
        (everything quarantined/unmodelled) get the sentinel ``-1``
        instead of a silently arbitrary ``argmin`` over all-``inf``
        rows; scalar callers see :class:`NoModelError` via
        :meth:`select`.
        """
        times = self.predict_times(nodes, ppn, msize)
        ids = np.argmin(times, axis=1)
        covered = np.isfinite(times).any(axis=1)
        if not covered.all():
            ids = np.where(covered, ids, -1)
        return ids

    def select_many(
        self,
        nodes: np.ndarray | int,
        ppn: np.ndarray | int,
        msize: np.ndarray | int,
    ) -> list[AlgorithmConfig | None]:
        """Batched :meth:`select` over broadcastable instance vectors.

        One :meth:`predict_times` sweep answers every instance; rows no
        model covers come back as ``None`` instead of raising, so batch
        callers (the serving layer) can apply their fallback per row.
        Per-row results are identical to calling :meth:`select` on each
        instance alone — the serving layer's oracle-equivalence
        property tests depend on that.
        """
        ids = self.select_ids(nodes, ppn, msize)
        return [
            self.configs_[int(cid)] if cid >= 0 else None for cid in ids
        ]

    def select(self, nodes: int, ppn: int, msize: int) -> AlgorithmConfig:
        """The predicted-fastest configuration for one instance."""
        cid = int(self.select_ids(nodes, ppn, msize)[0])
        if cid < 0:
            raise NoModelError(
                f"no model covers instance (nodes={nodes}, ppn={ppn}, "
                f"msize={msize}); all candidates quarantined or unmodelled"
            )
        return self.configs_[cid]

    def ranked(
        self, nodes: int, ppn: int, msize: int
    ) -> list[tuple[AlgorithmConfig, float]]:
        """All modelled configurations sorted by predicted runtime."""
        times = self.predict_times(nodes, ppn, msize)[0]
        order = np.argsort(times)
        return [
            (self.configs_[int(cid)], float(times[cid]))
            for cid in order
            if np.isfinite(times[cid])
        ]

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("AlgorithmSelector is not fitted yet")

    @property
    def num_models(self) -> int:
        """How many configurations have a trained model."""
        return len(self.models_)
