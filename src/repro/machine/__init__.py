"""Parametric models of parallel machines (the paper's Table I testbeds)."""

from repro.machine.model import MachineModel, NoiseModel
from repro.machine.topology import Topology
from repro.machine.zoo import (
    MACHINES,
    get_machine,
    hydra,
    jupiter,
    supermuc_ng,
    tiny_testbed,
)

__all__ = [
    "MachineModel",
    "NoiseModel",
    "Topology",
    "MACHINES",
    "get_machine",
    "hydra",
    "jupiter",
    "supermuc_ng",
    "tiny_testbed",
]
