"""The machine zoo: calibrated stand-ins for the paper's Table I testbeds.

The three machines are calibrated from their published fabric
characteristics (CLUSTER'20 Table I) so that the *relative* behaviour of
collective algorithms — latency/bandwidth crossovers, NIC saturation at
high ppn, segmentation pay-off points — matches what the paper observed:

* **Hydra** — 36 nodes, 32 ppn, Intel OmniPath *dual-rail* (~2x12.5 GB/s
  injection), low fabric latency.
* **Jupiter** — 35 nodes, 16 ppn, Mellanox InfiniBand QDR single rail
  (~4 GB/s), noticeably higher latency and lower bandwidth; about half
  of Hydra's bandwidth, matching the paper's description.
* **SuperMUC-NG** — large Skylake system, 48 ppn, single-rail OmniPath
  (12.5 GB/s) shared by many more cores, hence the strongest NIC
  contention at full ppn.

``tiny_testbed`` is a fast 4-node toy machine used throughout the test
suite and the quickstart example.
"""

from __future__ import annotations

from repro.machine.model import MachineModel, NoiseModel

GB = 1e9

hydra = MachineModel(
    name="Hydra",
    max_nodes=36,
    max_ppn=32,
    alpha_inter=1.3e-6,
    beta_inter=1.0 / (12.5 * GB),
    nic_gap=1.0 / (22.0 * GB),  # dual rail: ~2x link injection
    alpha_intra=0.35e-6,
    beta_intra=1.0 / (7.0 * GB),
    gamma_reduce=1.0 / (4.5 * GB),
    cpu_overhead=0.35e-6,
    noise=NoiseModel(sigma=0.03, spike_prob=0.01, spike_scale=1.5),
    processor="Intel Xeon Gold 6130, 2.1 GHz (dual socket)",
    interconnect="Intel OmniPath, dual-rail dual-switch",
)

jupiter = MachineModel(
    name="Jupiter",
    max_nodes=35,
    max_ppn=16,
    alpha_inter=2.1e-6,
    beta_inter=1.0 / (4.0 * GB),
    nic_gap=1.0 / (4.0 * GB),  # single rail QDR
    alpha_intra=0.55e-6,
    beta_intra=1.0 / (4.0 * GB),
    gamma_reduce=1.0 / (2.8 * GB),
    cpu_overhead=0.55e-6,
    noise=NoiseModel(sigma=0.05, spike_prob=0.02, spike_scale=2.0),
    processor="AMD Opteron 6134",
    interconnect="Mellanox InfiniBand (QDR)",
)

supermuc_ng = MachineModel(
    name="SuperMUC-NG",
    max_nodes=6336,
    max_ppn=48,
    alpha_inter=1.1e-6,
    beta_inter=1.0 / (12.5 * GB),
    nic_gap=1.0 / (12.5 * GB),  # single rail shared by 48 cores
    alpha_intra=0.30e-6,
    beta_intra=1.0 / (8.0 * GB),
    gamma_reduce=1.0 / (5.5 * GB),
    cpu_overhead=0.30e-6,
    noise=NoiseModel(sigma=0.04, spike_prob=0.015, spike_scale=2.5),
    processor="Intel Skylake Platinum 8174",
    interconnect="Intel OmniPath",
)

tiny_testbed = MachineModel(
    name="TinyTestbed",
    max_nodes=8,
    max_ppn=4,
    alpha_inter=1.5e-6,
    beta_inter=1.0 / (10.0 * GB),
    nic_gap=1.0 / (10.0 * GB),
    alpha_intra=0.4e-6,
    beta_intra=1.0 / (6.0 * GB),
    gamma_reduce=1.0 / (4.0 * GB),
    noise=NoiseModel(sigma=0.02, spike_prob=0.0, spike_scale=0.0),
    processor="synthetic",
    interconnect="synthetic",
)

MACHINES: dict[str, MachineModel] = {
    m.name: m for m in (hydra, jupiter, supermuc_ng, tiny_testbed)
}


def get_machine(name: str) -> MachineModel:
    """Look up a zoo machine case-insensitively."""
    for key, machine in MACHINES.items():
        if key.lower() == name.lower():
            return machine
    raise KeyError(
        f"unknown machine {name!r}; available: {', '.join(sorted(MACHINES))}"
    )
