"""Process-to-node placement.

The paper (and SLURM's default) places ranks block-wise: ranks
``0..ppn-1`` on node 0, ``ppn..2*ppn-1`` on node 1, and so on, with the
same ``ppn`` on every node. ``Topology`` captures one such allocation
and answers the placement queries the simulators and the collective
schedule builders need.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class Topology:
    """A block-placed allocation of ``num_nodes * ppn`` ranks."""

    num_nodes: int
    ppn: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.ppn < 1:
            raise ValueError(f"ppn must be >= 1, got {self.ppn}")

    @property
    def size(self) -> int:
        """Total number of ranks ``p = n * ppn``."""
        return self.num_nodes * self.ppn

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.ppn

    def local_rank(self, rank: int) -> int:
        """Rank's index within its node (0..ppn-1)."""
        self._check_rank(rank)
        return rank % self.ppn

    def node_leader(self, node: int) -> int:
        """Lowest global rank on ``node`` (used by hierarchical algorithms)."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range 0..{self.num_nodes - 1}")
        return node * self.ppn

    def ranks_of_node(self, node: int) -> range:
        """All global ranks on ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range 0..{self.num_nodes - 1}")
        return range(node * self.ppn, (node + 1) * self.ppn)

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks share a node (intra-node communication)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    @cached_property
    def node_map(self) -> np.ndarray:
        """Vector of node indices, one per rank."""
        return np.repeat(np.arange(self.num_nodes), self.ppn)

    def leaders(self) -> np.ndarray:
        """Vector of node-leader ranks, one per node."""
        return np.arange(self.num_nodes) * self.ppn

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range 0..{self.size - 1}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.num_nodes}x{self.ppn:02d}"
