"""Hockney/LogGP-family machine model with node-level NIC contention.

The model is deliberately simple enough to calibrate from four published
numbers per machine (latency, link bandwidth, injection bandwidth, memory
bandwidth) yet rich enough to reproduce the phenomena that drive MPI
algorithm selection:

* a latency-dominated regime for small messages (favouring low-depth
  trees) and a bandwidth-dominated regime for large ones (favouring
  pipelined chains and scatter-allgather schemes),
* sensitivity to processes-per-node: all processes of a node share one
  NIC, so inter-node traffic serialises at rate ``nic_gap`` per byte,
* distinct intra-node (shared memory) and inter-node (fabric) paths.

Point-to-point time for an ``m``-byte message:

* intra-node: ``alpha_intra + m * beta_intra``
* inter-node: ``alpha_inter + m * beta_inter`` plus occupancy of the
  source and destination NICs for ``m * nic_gap`` each (enforced by the
  simulators, not by this class).

Local reduction of ``m`` bytes costs ``m * gamma_reduce``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative measurement noise for simulated timings.

    ``sigma`` is the scale of a lognormal factor applied to every
    measured duration; with probability ``spike_prob`` an additional
    uniform jitter spike of up to ``spike_scale`` times the base
    duration is added, modelling OS interference. ``floor`` is an
    additive absolute jitter floor (timer granularity).
    """

    sigma: float = 0.03
    spike_prob: float = 0.01
    spike_scale: float = 1.5
    floor: float = 20e-9

    def __post_init__(self) -> None:
        if self.sigma < 0 or not (0 <= self.spike_prob <= 1):
            raise ValueError(f"invalid noise model: {self}")

    def sample(self, base: np.ndarray | float, rng: SeedLike) -> np.ndarray:
        """Draw noisy observations around deterministic ``base`` durations.

        ``base`` broadcasts; the result always has ``base``'s shape.
        """
        gen = as_generator(rng)
        base_arr = np.asarray(base, dtype=float)
        factors = gen.lognormal(mean=0.0, sigma=self.sigma, size=base_arr.shape)
        spikes = gen.random(base_arr.shape) < self.spike_prob
        spike_mag = gen.random(base_arr.shape) * self.spike_scale
        noisy = base_arr * factors + np.where(spikes, base_arr * spike_mag, 0.0)
        return noisy + gen.random(base_arr.shape) * self.floor


@dataclass(frozen=True)
class MachineModel:
    """A parallel machine: nodes, cores, and a calibrated network model.

    All times are seconds and all rates are seconds per byte. See the
    module docstring for how the parameters enter point-to-point costs.
    """

    name: str
    max_nodes: int
    max_ppn: int
    #: fabric latency (one-way, small message), seconds
    alpha_inter: float
    #: fabric per-byte time at full link speed, s/B
    beta_inter: float
    #: per-byte serialisation at a node's NIC (injection *and* drain), s/B.
    #: A dual-rail machine has roughly half the gap of a single-rail one.
    nic_gap: float
    #: shared-memory latency, seconds
    alpha_intra: float
    #: shared-memory per-byte time, s/B
    beta_intra: float
    #: per-byte local reduction cost (e.g. for allreduce), s/B
    gamma_reduce: float
    #: per-message software/protocol overhead at sender and receiver, s.
    #: Charged once per message on the issuing rank's clock.
    cpu_overhead: float = 0.4e-6
    noise: NoiseModel = field(default_factory=NoiseModel)
    #: short description for reports (Table I columns)
    processor: str = ""
    interconnect: str = ""

    def __post_init__(self) -> None:
        if self.max_nodes < 1 or self.max_ppn < 1:
            raise ValueError(f"machine {self.name!r} must have >=1 node and ppn")
        for attr in (
            "alpha_inter",
            "beta_inter",
            "nic_gap",
            "alpha_intra",
            "beta_intra",
            "gamma_reduce",
            "cpu_overhead",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"machine parameter {attr} must be >= 0")

    # ------------------------------------------------------------------
    # Cost primitives (deterministic; simulators add contention + noise)
    # ------------------------------------------------------------------
    def ptp_time(self, nbytes: int | np.ndarray, intra: bool) -> np.ndarray | float:
        """Uncontended point-to-point transfer time for ``nbytes``."""
        if intra:
            return self.alpha_intra + np.asarray(nbytes) * self.beta_intra
        return self.alpha_inter + np.asarray(nbytes) * self.beta_inter

    def reduce_time(self, nbytes: int | np.ndarray) -> np.ndarray | float:
        """Local reduction cost of combining two ``nbytes`` buffers."""
        return np.asarray(nbytes) * self.gamma_reduce

    def link_bandwidth(self) -> float:
        """Fabric bandwidth in bytes/second (for reports)."""
        return 1.0 / self.beta_inter

    def injection_bandwidth(self) -> float:
        """Per-node NIC bandwidth in bytes/second (for reports)."""
        return 1.0 / self.nic_gap

    def with_noise(self, noise: NoiseModel) -> "MachineModel":
        """Return a copy with a different noise model (used in tests)."""
        return replace(self, noise=noise)

    def validate_shape(self, num_nodes: int, ppn: int) -> None:
        """Raise if a requested allocation does not fit this machine."""
        if not (1 <= num_nodes <= self.max_nodes):
            raise ValueError(
                f"{self.name}: requested {num_nodes} nodes, "
                f"machine has 1..{self.max_nodes}"
            )
        if not (1 <= ppn <= self.max_ppn):
            raise ValueError(
                f"{self.name}: requested ppn={ppn}, machine supports 1..{self.max_ppn}"
            )
