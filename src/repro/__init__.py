"""mpicollpred — ML-based algorithm selection for MPI collectives.

A faithful, self-contained reproduction of Hunold, Bhatele, Bosilca &
Knees, *Predicting MPI Collective Communication Performance Using
Machine Learning* (IEEE CLUSTER 2020), including every substrate the
paper depends on:

* simulated parallel machines and MPI libraries with their hard-coded
  default selection logic (:mod:`repro.machine`, :mod:`repro.mpilib`),
* the collective algorithms themselves, executable both on an exact
  discrete-event engine and through fast vectorised cost models
  (:mod:`repro.collectives`, :mod:`repro.simulator`),
* a ReproMPI-style time-budgeted benchmark harness (:mod:`repro.bench`),
* from-scratch regression learners — gradient boosting, KNN, GAM — and
  the selection framework built on them (:mod:`repro.ml`,
  :mod:`repro.core`),
* drivers regenerating every table and figure of the paper
  (:mod:`repro.experiments`).

Quick taste::

    from repro import AutoTuner, GridSpec, get_library, get_machine

    tuner = AutoTuner(get_machine("Hydra"), get_library("Open MPI"), "bcast")
    tuner.benchmark(GridSpec(nodes=(4, 8, 16), ppns=(1, 16), msizes=(1, 65536)))
    tuner.train()
    print(tuner.recommend(nodes=13, ppn=16, msize=65536).label)
"""

from repro.bench import BenchmarkSpec, DatasetRunner, GridSpec, ReproMPIBenchmark
from repro.collectives import AlgorithmConfig, CollectiveKind, make_algorithm
from repro.core import AlgorithmSelector, PerfDataset, evaluate_selector
from repro.core.tuner import AutoTuner
from repro.machine import MachineModel, Topology, get_machine
from repro.mpilib import get_library
from repro.serve import ModelRegistry, PredictionService

__version__ = "1.0.0"

__all__ = [
    "AutoTuner",
    "AlgorithmSelector",
    "AlgorithmConfig",
    "BenchmarkSpec",
    "CollectiveKind",
    "DatasetRunner",
    "GridSpec",
    "MachineModel",
    "ModelRegistry",
    "PerfDataset",
    "PredictionService",
    "ReproMPIBenchmark",
    "Topology",
    "evaluate_selector",
    "get_library",
    "get_machine",
    "make_algorithm",
    "__version__",
]
