"""Allreduce algorithms (Open MPI 4.0.2 numbering, plus id 7).

====  ====================  ================================================
id    name                  structure
====  ====================  ================================================
1     linear                linear reduce to root + linear broadcast
2     nonoverlapping        binomial-tree reduce + binomial-tree broadcast
3     recursive_doubling    log2(p) full-vector exchanges (+ rem folding)
4     ring                  ring reduce-scatter + ring allgather
5     segmented_ring        ring with segment-pipelined compute overlap
6     rabenseifner          recursive-halving reduce-scatter + doubling
                            allgather
7     allgather_reduce      recursive-doubling allgather of all inputs +
                            local reduction (latency-optimal, tiny messages)
====  ====================  ================================================

Verification payloads are frozensets of contributing ranks; the merge is
set union, which is associative and commutative like MPI reduction ops.
A correct allreduce leaves ``frozenset(range(p))`` (per block) on every
rank.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.collectives import trees
from repro.collectives.base import (
    AlgorithmConfig,
    CollectiveAlgorithm,
    CollectiveKind,
)
from repro.collectives.patterns import (
    allgather_doubling_rounds,
    block_bytes,
    exchange,
    phase_tag,
    recursive_doubling_rounds,
    reduce_scatter_halving_rounds,
    ring_rounds,
    tree_bcast_program,
    tree_reduce_program,
)
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.simulator.engine import (
    Irecv,
    Isend,
    Recv,
    Reduce,
    Send,
    SimResult,
    Wait,
)
from repro.simulator.fastsim import (
    linear_time,
    pipeline_tree_time,
    round_time,
    segment_sizes,
)


def _merge(a: frozenset, b: frozenset) -> frozenset:
    return a | b


class _AllreduceBase(CollectiveAlgorithm):
    """Shared verification: every rank holds the full contributor set.

    Every concrete ``programs`` accepts an optional ``initial`` callable
    mapping a rank to its starting contribution (default
    ``frozenset({rank})``). Hierarchical algorithms use it to feed the
    node-level partial reductions through the flat algorithms.
    """

    @staticmethod
    def _init_fn(initial):
        return initial if initial is not None else (lambda r: frozenset({r}))

    def verify_result(self, topo: Topology, nbytes: int, result: SimResult) -> None:
        expected = frozenset(range(topo.size))
        for rank, output in enumerate(result.outputs):
            if isinstance(output, dict):
                assert set(output) == set(range(len(output))), (
                    f"{self.config.label}: rank {rank} block keys wrong"
                )
                values = output.values()
            else:
                values = [output] if isinstance(output, frozenset) else list(output)
            for value in values:
                assert value == expected, (
                    f"{self.config.label}: rank {rank} reduced {value!r}, "
                    f"expected all of 0..{topo.size - 1}"
                )


class AllreduceLinear(_AllreduceBase):
    """Algorithm 1: linear reduce to rank 0, then linear broadcast."""

    def __init__(self) -> None:
        super().__init__(AlgorithmConfig.make(CollectiveKind.ALLREDUCE, 1, "linear"))

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        peers = list(range(1, topo.size))
        up = linear_time(
            machine, topo, 0, peers, nbytes, gather=True, reduce_at_root=True
        )
        down = linear_time(machine, topo, 0, peers, nbytes)
        return up + down

    def programs(
        self, topo: Topology, nbytes: int, initial=None
    ) -> Sequence[Callable[[int], Any]]:
        p = topo.size
        init = self._init_fn(initial)

        def factory(rank: int):
            def prog():
                if rank == 0:
                    acc = init(0)
                    for src in range(1, p):
                        value = yield Recv(src, tag=phase_tag(0))
                        yield Reduce(nbytes)
                        acc = _merge(acc, value)
                    for dst in range(1, p):
                        yield Send(dst, nbytes, acc, tag=phase_tag(1))
                    return acc
                yield Send(0, nbytes, init(rank), tag=phase_tag(0))
                final = yield Recv(0, tag=phase_tag(1))
                return final

            return prog()

        return [factory] * p


class AllreduceNonOverlapping(_AllreduceBase):
    """Algorithm 2: binomial-tree reduce followed by binomial-tree bcast."""

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.ALLREDUCE, 2, "nonoverlapping")
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        parent, children = trees.binomial_tree(topo.size, 0)
        up = pipeline_tree_time(
            machine, topo, parent, children, nbytes, None, reduce_up=True
        )
        down = pipeline_tree_time(machine, topo, parent, children, nbytes, None)
        return up + down

    def programs(
        self, topo: Topology, nbytes: int, initial=None
    ) -> Sequence[Callable[[int], Any]]:
        parent, children = trees.binomial_tree(topo.size, 0)
        sizes = segment_sizes(nbytes, None)
        init = self._init_fn(initial)

        def factory(rank: int):
            def prog():
                acc = yield from tree_reduce_program(
                    rank, parent, children, sizes,
                    [init(rank)], _merge, phase=0,
                )
                if rank == 0:
                    final = yield from tree_bcast_program(
                        rank, parent, children, sizes, acc, phase=1
                    )
                else:
                    final = yield from tree_bcast_program(
                        rank, parent, children, sizes, [None], phase=1
                    )
                return final[0]

            return prog()

        return [factory] * topo.size


class AllreduceRecursiveDoubling(_AllreduceBase):
    """Algorithm 3: full-vector butterfly exchanges at doubling distance."""

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.ALLREDUCE, 3, "recursive_doubling"
            )
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        return round_time(
            machine, topo, recursive_doubling_rounds(topo, nbytes, compute=True)
        )

    def programs(
        self, topo: Topology, nbytes: int, initial=None
    ) -> Sequence[Callable[[int], Any]]:
        p = topo.size
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2
        init = self._init_fn(initial)

        def factory(rank: int):
            def prog():
                acc = init(rank)
                # Fold phase: odd ranks of the first 2*rem retire.
                if rem and rank < 2 * rem:
                    if rank % 2 == 1:
                        yield Send(rank - 1, nbytes, acc, tag=phase_tag(0))
                        final = yield Recv(rank - 1, tag=phase_tag(2))
                        return final
                    value = yield Recv(rank + 1, tag=phase_tag(0))
                    yield Reduce(nbytes)
                    acc = _merge(acc, value)
                # Core butterfly on surviving ranks (virtual numbering).
                vrank = rank // 2 if rank < 2 * rem else rank - rem

                def real(v: int) -> int:
                    return v * 2 if v < rem else v + rem

                dist = 1
                while dist < pof2:
                    peer = real(vrank ^ dist)
                    value = yield from exchange(
                        peer, peer, nbytes_send=nbytes, payload=acc,
                        tag=phase_tag(1, dist),
                    )
                    yield Reduce(nbytes)
                    acc = _merge(acc, value)
                    dist <<= 1
                if rem and rank < 2 * rem:
                    yield Send(rank + 1, nbytes, acc, tag=phase_tag(2))
                return acc

            return prog()

        return [factory] * p


class AllreduceRing(_AllreduceBase):
    """Algorithm 4: ring reduce-scatter followed by ring allgather."""

    def __init__(self) -> None:
        super().__init__(AlgorithmConfig.make(CollectiveKind.ALLREDUCE, 4, "ring"))

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        p = topo.size
        block = block_bytes(nbytes, p)
        rounds = ring_rounds(topo, block, p - 1, compute=True)
        rounds += ring_rounds(topo, block, p - 1)
        return round_time(machine, topo, rounds)

    def programs(
        self, topo: Topology, nbytes: int, initial=None
    ) -> Sequence[Callable[[int], Any]]:
        return _ring_programs(
            topo, nbytes, seg_bytes=None, initial=self._init_fn(initial)
        )


class AllreduceSegmentedRing(_AllreduceBase):
    """Algorithm 5: ring allreduce with segment-pipelined reduction overlap."""

    def __init__(self, segsize: int) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.ALLREDUCE, 5, "segmented_ring", segsize=segsize
            )
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        p = topo.size
        seg = self.config.param_dict["segsize"]
        block = block_bytes(nbytes, p)
        nseg = len(segment_sizes(block, seg))
        # Reduction overlaps the next segment's transfer; each extra
        # segment costs its message overheads.
        extra = (nseg - 1) * 2 * machine.cpu_overhead
        rs = [
            r.__class__(
                srcs=r.srcs, dsts=r.dsts, nbytes=r.nbytes,
                compute_bytes=r.nbytes, overlap_compute=True,
                extra_seconds=extra,
            )
            for r in ring_rounds(topo, block, p - 1)
        ]
        ag = [
            r.__class__(
                srcs=r.srcs, dsts=r.dsts, nbytes=r.nbytes,
                compute_bytes=0, extra_seconds=extra,
            )
            for r in ring_rounds(topo, block, p - 1)
        ]
        return round_time(machine, topo, rs + ag)

    def programs(
        self, topo: Topology, nbytes: int, initial=None
    ) -> Sequence[Callable[[int], Any]]:
        return _ring_programs(
            topo, nbytes,
            seg_bytes=self.config.param_dict["segsize"],
            initial=self._init_fn(initial),
        )


def _ring_programs(
    topo: Topology, nbytes: int, seg_bytes: int | None, initial=None
) -> Sequence[Callable[[int], Any]]:
    """Ring allreduce engine programs (optionally segmented blocks).

    Block ``b``'s running reduction travels the ring; rank ``r`` owns
    block ``r`` after the reduce-scatter phase and the allgather phase
    circulates the finished blocks. Each block transfer is split into
    ``segment_sizes(block, seg_bytes)`` messages.
    """
    p = topo.size
    block = block_bytes(nbytes, p)
    sizes = segment_sizes(block, seg_bytes)
    init = initial if initial is not None else (lambda r: frozenset({r}))

    def factory(rank: int):
        def prog():
            blocks = {b: init(rank) for b in range(p)}
            nxt = (rank + 1) % p
            prev = (rank - 1) % p
            # Reduce-scatter: in step k, send block (rank - k) and fold
            # the incoming block (rank - k - 1). All segments of the
            # block are in flight concurrently (the real segmented ring
            # overlaps the folds with later segments' transfers).
            for k in range(p - 1):
                send_b = (rank - k) % p
                recv_b = (rank - k - 1) % p
                handles = []
                for s, _size in enumerate(sizes):
                    tag = phase_tag(0, k * len(sizes) + s)
                    handles.append((yield Irecv(prev, tag=tag)))
                for s, size in enumerate(sizes):
                    tag = phase_tag(0, k * len(sizes) + s)
                    yield Isend(nxt, int(size), blocks[send_b], tag=tag)
                merged = blocks[recv_b]
                for s, size in enumerate(sizes):
                    got = yield Wait(handles[s])
                    yield Reduce(int(size))
                    merged = _merge(merged, got)
                blocks[recv_b] = merged
            # Allgather: circulate the finished blocks the same way.
            for k in range(p - 1):
                send_b = (rank + 1 - k) % p
                recv_b = (rank - k) % p
                handles = []
                for s, _size in enumerate(sizes):
                    tag = phase_tag(1, k * len(sizes) + s)
                    handles.append((yield Irecv(prev, tag=tag)))
                for s, size in enumerate(sizes):
                    tag = phase_tag(1, k * len(sizes) + s)
                    yield Isend(nxt, int(size), blocks[send_b], tag=tag)
                got = None
                for s, _size in enumerate(sizes):
                    got = yield Wait(handles[s])
                blocks[recv_b] = got
            return blocks

        return prog()

    return [factory] * p


class AllreduceRabenseifner(_AllreduceBase):
    """Algorithm 6: recursive-halving reduce-scatter + doubling allgather."""

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.ALLREDUCE, 6, "rabenseifner")
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        rounds = reduce_scatter_halving_rounds(topo, nbytes)
        rounds += allgather_doubling_rounds(topo, nbytes)
        return round_time(machine, topo, rounds)

    def programs(
        self, topo: Topology, nbytes: int, initial=None
    ) -> Sequence[Callable[[int], Any]]:
        p = topo.size
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2
        # Work on pof2 virtual blocks; real block count folds in.
        block = block_bytes(nbytes, pof2)

        init = self._init_fn(initial)

        def factory(rank: int):
            def prog():
                acc = {b: init(rank) for b in range(pof2)}
                if rem and rank < 2 * rem:
                    if rank % 2 == 1:
                        yield Send(rank - 1, nbytes, acc, tag=phase_tag(0))
                        final = yield Recv(rank - 1, tag=phase_tag(3))
                        return final
                    other = yield Recv(rank + 1, tag=phase_tag(0))
                    yield Reduce(nbytes)
                    acc = {b: _merge(acc[b], other[b]) for b in acc}
                vrank = rank // 2 if rank < 2 * rem else rank - rem

                def real(v: int) -> int:
                    return v * 2 if v < rem else v + rem

                # Recursive halving: shrink owned block range each step.
                lo, hi = 0, pof2
                dist = pof2 // 2
                while dist >= 1:
                    peer_v = vrank ^ dist
                    peer = real(peer_v)
                    mid = (lo + hi) // 2
                    if vrank < peer_v:
                        send_rng, keep = (mid, hi), (lo, mid)
                    else:
                        send_rng, keep = (lo, mid), (mid, hi)
                    send_blocks = {
                        b: acc[b] for b in range(send_rng[0], send_rng[1])
                    }
                    got = yield from exchange(
                        peer, peer,
                        nbytes_send=len(send_blocks) * block,
                        payload=send_blocks,
                        tag=phase_tag(1, dist),
                    )
                    yield Reduce(len(got) * block)
                    for b, value in got.items():
                        acc[b] = _merge(acc[b], value)
                    lo, hi = keep
                    dist //= 2
                # Doubling allgather: regrow the owned range.
                owned = {b: acc[b] for b in range(lo, hi)}
                dist = 1
                while dist < pof2:
                    peer = real(vrank ^ dist)
                    got = yield from exchange(
                        peer, peer,
                        nbytes_send=len(owned) * block,
                        payload=dict(owned),
                        tag=phase_tag(2, dist),
                    )
                    owned.update(got)
                    dist <<= 1
                if rem and rank < 2 * rem:
                    yield Send(rank + 1, nbytes, dict(owned), tag=phase_tag(3))
                return owned

            return prog()

        return [factory] * p


class AllreduceKnomialReduceBcast(_AllreduceBase):
    """Algorithm 8: k-nomial-tree reduce followed by k-nomial broadcast.

    A higher radix trades tree depth (latency) for more serialised
    sends per parent (bandwidth) — Intel MPI's "Knomial" allreduce.
    """

    def __init__(self, radix: int) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.ALLREDUCE, 8, "knomial_reduce_bcast", radix=radix
            )
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        radix = self.config.param_dict["radix"]
        parent, children = trees.knomial_tree(topo.size, radix, 0)
        up = pipeline_tree_time(
            machine, topo, parent, children, nbytes, None, reduce_up=True
        )
        down = pipeline_tree_time(machine, topo, parent, children, nbytes, None)
        return up + down

    def programs(
        self, topo: Topology, nbytes: int, initial=None
    ) -> Sequence[Callable[[int], Any]]:
        radix = self.config.param_dict["radix"]
        parent, children = trees.knomial_tree(topo.size, radix, 0)
        sizes = segment_sizes(nbytes, None)
        init = self._init_fn(initial)

        def factory(rank: int):
            def prog():
                acc = yield from tree_reduce_program(
                    rank, parent, children, sizes, [init(rank)], _merge,
                    phase=0,
                )
                final = yield from tree_bcast_program(
                    rank, parent, children, sizes,
                    acc if rank == 0 else [None], phase=1,
                )
                return final[0]

            return prog()

        return [factory] * topo.size


class AllreduceAllgatherReduce(_AllreduceBase):
    """Algorithm 7: allgather all inputs, reduce locally.

    Latency-optimal for tiny messages (log2 p rounds, no serialised
    reductions on the critical path), hopeless for large ones (p*m
    traffic) — a genuinely different trade-off point for the selector
    to learn.
    """

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.ALLREDUCE, 7, "allgather_reduce")
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        p = topo.size
        rounds = allgather_doubling_rounds(topo, nbytes * p)
        comm = round_time(machine, topo, rounds)
        return comm + float((p - 1) * machine.reduce_time(nbytes))

    def programs(
        self, topo: Topology, nbytes: int, initial=None
    ) -> Sequence[Callable[[int], Any]]:
        p = topo.size
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2

        init = self._init_fn(initial)

        def factory(rank: int):
            def prog():
                gathered = {rank: init(rank)}
                # Fold extras into the core like the round builder does.
                if rem and rank < 2 * rem and rank % 2 == 1:
                    yield Send(rank - 1, nbytes, gathered, tag=phase_tag(0))
                    full = yield Recv(rank - 1, tag=phase_tag(2))
                    acc = frozenset()
                    for _, value in sorted(full.items()):
                        acc = _merge(acc, value)
                    yield Reduce((p - 1) * nbytes)
                    return acc
                if rem and rank < 2 * rem:
                    extra = yield Recv(rank + 1, tag=phase_tag(0))
                    gathered.update(extra)
                vrank = rank // 2 if rank < 2 * rem else rank - rem

                def real(v: int) -> int:
                    return v * 2 if v < rem else v + rem

                dist = 1
                while dist < pof2:
                    peer = real(vrank ^ dist)
                    got = yield from exchange(
                        peer, peer,
                        nbytes_send=len(gathered) * nbytes,
                        payload=dict(gathered),
                        tag=phase_tag(1, dist),
                    )
                    gathered.update(got)
                    dist <<= 1
                if rem and rank < 2 * rem:
                    yield Send(rank + 1, p * nbytes, dict(gathered), tag=phase_tag(2))
                acc = frozenset()
                for _, value in sorted(gathered.items()):
                    acc = _merge(acc, value)
                yield Reduce((p - 1) * nbytes)
                return acc

            return prog()

        return [factory] * p
