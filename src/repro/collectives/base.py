"""Common machinery for collective algorithms.

The central concept (paper §III-B) is the *unique configuration id*
``u_{j,l}``: an algorithm id ``j`` merged with one concrete allocation
``l`` of its parameters (segment size, number of chains, tree radix).
:class:`AlgorithmConfig` is that identifier; a library's tuning space is
a list of them, and the selection framework trains one regression model
per config.
"""

from __future__ import annotations

import abc
import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.simulator.engine import Engine, SimResult
from repro.utils.units import format_bytes


class CollectiveKind(str, enum.Enum):
    """Blocking collectives with a tuning space.

    BCAST/ALLREDUCE/ALLTOALL are the paper's Table II subjects;
    REDUCE and ALLGATHER are implemented as an extension (the paper
    argues its approach is generic — §II) and exposed through the
    Open MPI façade.
    """

    BCAST = "bcast"
    ALLREDUCE = "allreduce"
    ALLTOALL = "alltoall"
    REDUCE = "reduce"
    ALLGATHER = "allgather"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AlgorithmConfig:
    """A unique algorithm configuration ``u_{j,l}``.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so configs
    are hashable and have a canonical ordering within an algorithm.
    """

    collective: CollectiveKind
    algid: int
    name: str
    params: tuple[tuple[str, Any], ...] = ()

    @staticmethod
    def make(
        collective: CollectiveKind | str,
        algid: int,
        name: str,
        **params: Any,
    ) -> "AlgorithmConfig":
        return AlgorithmConfig(
            collective=CollectiveKind(collective),
            algid=algid,
            name=name,
            params=tuple(sorted(params.items())),
        )

    @property
    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def label(self) -> str:
        """Human-readable id, e.g. ``2:chain(chains=4,seg=16KiB)``."""
        if not self.params:
            return f"{self.algid}:{self.name}"
        rendered = ",".join(
            f"{k}={format_bytes(v) if k == 'segsize' and v else v}"
            for k, v in self.params
        )
        return f"{self.algid}:{self.name}({rendered})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


class CollectiveAlgorithm(abc.ABC):
    """One algorithm configuration, executable on both simulator tiers."""

    def __init__(self, config: AlgorithmConfig) -> None:
        self.config = config

    # -- fast tier ------------------------------------------------------
    @abc.abstractmethod
    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        """Deterministic running time on ``machine`` (no noise)."""

    # -- exact tier ------------------------------------------------------
    @abc.abstractmethod
    def programs(
        self, topo: Topology, nbytes: int
    ) -> Sequence[Callable[[int], Any]]:
        """Per-rank engine programs carrying verification payloads."""

    @abc.abstractmethod
    def verify_result(self, topo: Topology, nbytes: int, result: SimResult) -> None:
        """Raise ``AssertionError`` if the engine outputs are semantically wrong."""

    # -- applicability ----------------------------------------------------
    def supported(self, topo: Topology, nbytes: int) -> bool:
        """Whether this configuration can run the given instance at all."""
        return topo.size >= 1

    # -- convenience -------------------------------------------------------
    def run_exact(
        self,
        machine: MachineModel,
        topo: Topology,
        nbytes: int,
        rng: Any = None,
        verify: bool = True,
    ) -> SimResult:
        """Execute on the exact engine, optionally verifying semantics."""
        engine = Engine(machine, topo, rng=rng)
        result = engine.run(list(self.programs(topo, nbytes)))
        if verify:
            self.verify_result(topo, nbytes, result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.config.label}>"


@dataclass(frozen=True)
class ConfigSpace:
    """The full tuning space of one collective in one MPI library."""

    collective: CollectiveKind
    library: str
    configs: tuple[AlgorithmConfig, ...] = field(default=())

    def __len__(self) -> int:
        return len(self.configs)

    def index_of(self, config: AlgorithmConfig) -> int:
        """Stable integer id of a config within this space (the u id)."""
        try:
            return self.configs.index(config)
        except ValueError as exc:
            raise KeyError(
                f"{config.label} not in {self.library}/{self.collective}"
            ) from exc

    def algids(self) -> list[int]:
        return sorted({c.algid for c in self.configs})


def config_space_size(configs: Sequence[AlgorithmConfig]) -> dict[int, int]:
    """Number of parameter allocations per algorithm id (for reports)."""
    counts: dict[int, int] = {}
    for c in configs:
        counts[c.algid] = counts.get(c.algid, 0) + 1
    return counts
