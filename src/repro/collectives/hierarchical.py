"""Two-level (SMP/topology-aware) collective algorithms.

Intel MPI's tuning space is full of "topology-aware" and "SHM-based"
variants: an intra-node phase over shared memory plus an inter-node
phase among one leader rank per node. These wrappers reproduce that
family generically: any flat algorithm can serve as the leader-level
phase, executed on a virtual ``Topology(num_nodes, 1)`` and translated
back onto the leader ranks of the real topology for the exact engine.

* :class:`HierarchicalBcast` — leader-level broadcast (any tree-shaped
  flat bcast) followed by an intra-node binomial broadcast.
* :class:`HierarchicalAllreduce` — intra-node binomial reduce to the
  leader, leader-level allreduce (any flat allreduce), intra-node
  binomial broadcast.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Sequence
from typing import Any

import numpy as np

from repro.collectives import trees
from repro.collectives.base import (
    AlgorithmConfig,
    CollectiveAlgorithm,
    CollectiveKind,
)
from repro.collectives.bcast import _BcastBase, _seg_payloads
from repro.collectives.allreduce import _AllreduceBase, _merge
from repro.collectives.patterns import (
    phase_tag,
    tree_bcast_program,
    tree_reduce_program,
)
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.simulator.engine import Irecv, Isend, Recv, Send
from repro.simulator.fastsim import pipeline_tree_time, segment_sizes

#: tag namespace for the translated leader-level phase
_INNER_PHASE = 16


def translate_program(
    program: Generator, rank_map: Sequence[int]
) -> Generator:
    """Re-address a program written for a sub-communicator.

    ``rank_map[i]`` is the real rank of sub-communicator rank ``i``.
    Send/Recv targets are rewritten and tags are moved into a reserved
    namespace so leader-phase traffic never cross-matches intra-phase
    traffic. Results (request handles, payloads) pass through
    untouched.
    """
    result: Any = None
    offset = phase_tag(_INNER_PHASE)
    while True:
        try:
            op = program.send(result)
        except StopIteration as stop:
            return stop.value
        if isinstance(op, Send):
            op = Send(rank_map[op.dst], op.nbytes, op.payload, op.tag + offset)
        elif isinstance(op, Isend):
            op = Isend(rank_map[op.dst], op.nbytes, op.payload, op.tag + offset)
        elif isinstance(op, Recv):
            op = Recv(rank_map[op.src], op.tag + offset)
        elif isinstance(op, Irecv):
            op = Irecv(rank_map[op.src], op.tag + offset)
        result = yield op


def _intra_trees(topo: Topology) -> tuple[np.ndarray, list[list[int]]]:
    """Per-node binomial trees rooted at each node leader, in global ranks."""
    parent = np.full(topo.size, -1, dtype=np.int64)
    children: list[list[int]] = [[] for _ in range(topo.size)]
    lparent, lchildren = trees.binomial_tree(topo.ppn, 0)
    for node in range(topo.num_nodes):
        base = node * topo.ppn
        for lr in range(topo.ppn):
            parent[base + lr] = -1 if lparent[lr] < 0 else base + int(lparent[lr])
            children[base + lr] = [base + c for c in lchildren[lr]]
    return parent, children


class HierarchicalBcast(_BcastBase):
    """Leader-level broadcast + intra-node binomial broadcast.

    ``inter`` must be a flat broadcast whose engine programs return the
    received segment list (all tree-shaped bcasts qualify; the
    scatter-based ones do not).
    """

    def __init__(self, algid: int, inter: CollectiveAlgorithm) -> None:
        inter_params = inter.config.param_dict
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.BCAST,
                algid,
                f"hier_{inter.config.name}",
                **inter_params,
            )
        )
        self.inter = inter

    def supported(self, topo: Topology, nbytes: int) -> bool:
        return self.inter.supported(Topology(max(topo.num_nodes, 1), 1), nbytes)

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        leaders = Topology(topo.num_nodes, 1)
        t_inter = (
            self.inter.base_time(machine, leaders, nbytes)
            if topo.num_nodes > 1
            else 0.0
        )
        t_intra = 0.0
        if topo.ppn > 1:
            node = Topology(1, topo.ppn)
            parent, children = trees.binomial_tree(topo.ppn, 0)
            seg = self.config.param_dict.get("segsize")
            t_intra = pipeline_tree_time(
                machine, node, parent, children, nbytes, seg
            )
        return t_inter + t_intra

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        seg = self.config.param_dict.get("segsize")
        sizes = segment_sizes(nbytes, seg)
        payloads = _seg_payloads(sizes)
        iparent, ichildren = _intra_trees(topo)
        leaders = list(topo.leaders())
        leaders_topo = Topology(topo.num_nodes, 1)
        inter_factories = (
            list(self.inter.programs(leaders_topo, nbytes))
            if topo.num_nodes > 1
            else None
        )

        def factory(rank: int):
            def prog():
                if topo.local_rank(rank) == 0:
                    if inter_factories is None:
                        have = payloads
                    else:
                        node = topo.node_of(rank)
                        have = yield from translate_program(
                            inter_factories[node](node), leaders
                        )
                    out = yield from tree_bcast_program(
                        rank, iparent, ichildren, sizes, have, phase=2
                    )
                else:
                    out = yield from tree_bcast_program(
                        rank, iparent, ichildren, sizes, [], phase=2
                    )
                return out

            return prog()

        return [factory] * topo.size


class HierarchicalAllreduce(_AllreduceBase):
    """Intra reduce -> leader-level allreduce -> intra broadcast."""

    def __init__(self, algid: int, inter: CollectiveAlgorithm) -> None:
        inter_params = inter.config.param_dict
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.ALLREDUCE,
                algid,
                f"hier_{inter.config.name}",
                **inter_params,
            )
        )
        self.inter = inter

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        total = 0.0
        if topo.ppn > 1:
            node = Topology(1, topo.ppn)
            parent, children = trees.binomial_tree(topo.ppn, 0)
            total += pipeline_tree_time(
                machine, node, parent, children, nbytes, None, reduce_up=True
            )
            total += pipeline_tree_time(
                machine, node, parent, children, nbytes, None
            )
        if topo.num_nodes > 1:
            leaders = Topology(topo.num_nodes, 1)
            total += self.inter.base_time(machine, leaders, nbytes)
        return total

    def programs(
        self, topo: Topology, nbytes: int, initial=None
    ) -> Sequence[Callable[[int], Any]]:
        init = self._init_fn(initial)
        iparent, ichildren = _intra_trees(topo)
        sizes = segment_sizes(nbytes, None)
        leaders = list(topo.leaders())
        leaders_topo = Topology(topo.num_nodes, 1)

        def factory(rank: int):
            def prog():
                acc = yield from tree_reduce_program(
                    rank, iparent, ichildren, sizes, [init(rank)], _merge,
                    phase=0,
                )
                if topo.local_rank(rank) == 0 and topo.num_nodes > 1:
                    node = topo.node_of(rank)
                    node_value = acc[0]
                    inter_factories = self.inter.programs(
                        leaders_topo, nbytes,
                        initial=lambda _leader: node_value,
                    )
                    reduced = yield from translate_program(
                        inter_factories[node](node), leaders
                    )
                    if isinstance(reduced, dict):
                        # Block-based flat algorithms return block dicts;
                        # the full vector is their union.
                        value = frozenset()
                        for block_value in reduced.values():
                            value = _merge(value, block_value)
                    else:
                        value = reduced
                    acc = [value]
                if topo.local_rank(rank) == 0:
                    out = yield from tree_bcast_program(
                        rank, iparent, ichildren, sizes, acc, phase=3
                    )
                else:
                    out = yield from tree_bcast_program(
                        rank, iparent, ichildren, sizes, [], phase=3
                    )
                return out[0]

            return prog()

        return [factory] * topo.size
