"""Reduce algorithms (Open MPI ``coll_tuned`` numbering).

====  ===============  ================================================
id    name             structure
====  ===============  ================================================
1     linear           every rank sends to the root, which folds in
                       rank order
2     chain            segmented reduction up parallel chains
3     pipeline         segmented reduction up a single chain
4     binary           segmented reduction up a complete binary tree
5     binomial         segmented reduction up a binomial tree
6     in_order_binary  binary tree honouring rank order (for non-
                       commutative ops; same cost structure)
7     rabenseifner     recursive-halving reduce-scatter + binomial
                       gather of the blocks to the root
====  ===============  ================================================

Extension beyond the paper's Table II (see ``CollectiveKind``).
Verification payloads are frozensets of contributing ranks; a correct
reduce leaves ``frozenset(range(p))`` (per segment/block) on the root.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.collectives import trees
from repro.collectives.base import (
    AlgorithmConfig,
    CollectiveAlgorithm,
    CollectiveKind,
)
from repro.collectives.patterns import (
    block_bytes,
    exchange,
    phase_tag,
    reduce_scatter_halving_rounds,
    tree_reduce_program,
)
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.simulator.engine import Recv, Reduce, Send, SimResult
from repro.simulator.fastsim import (
    Round,
    linear_time,
    pipeline_tree_time,
    round_time,
    segment_sizes,
)


def _merge(a: frozenset, b: frozenset) -> frozenset:
    return a | b


class _ReduceBase(CollectiveAlgorithm):
    """Shared verification: the root holds the full contributor set."""

    def __init__(self, config: AlgorithmConfig, root: int = 0) -> None:
        super().__init__(config)
        self.root = root

    def verify_result(self, topo: Topology, nbytes: int, result: SimResult) -> None:
        expected = frozenset(range(topo.size))
        output = result.outputs[self.root]
        values = (
            list(output.values()) if isinstance(output, dict) else list(output)
        )
        assert values, f"{self.config.label}: root produced no result"
        for value in values:
            assert value == expected, (
                f"{self.config.label}: root reduced {value!r}, expected "
                f"all of 0..{topo.size - 1}"
            )


class ReduceLinear(_ReduceBase):
    """Algorithm 1: all ranks send to the root, which folds sequentially."""

    def __init__(self, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.REDUCE, 1, "linear"), root
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        peers = [r for r in range(topo.size) if r != self.root]
        return linear_time(
            machine, topo, self.root, peers, nbytes,
            gather=True, reduce_at_root=True,
        )

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        root = self.root
        p = topo.size

        def factory(rank: int):
            def prog():
                if rank == root:
                    acc = frozenset({root})
                    for src in range(p):
                        if src == root:
                            continue
                        value = yield Recv(src, tag=phase_tag(0))
                        yield Reduce(nbytes)
                        acc = _merge(acc, value)
                    return [acc]
                yield Send(root, nbytes, frozenset({rank}), tag=phase_tag(0))
                return None

            return prog()

        return [factory] * p


class _SegmentedTreeReduce(_ReduceBase):
    """Segmented reduction up a tree (covers algorithms 2-6)."""

    def __init__(
        self,
        config: AlgorithmConfig,
        tree_builder: Callable[[int, int], trees.Tree],
        root: int = 0,
    ) -> None:
        super().__init__(config, root)
        self._tree_builder = tree_builder

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        parent, children = self._tree_builder(topo.size, self.root)
        seg = self.config.param_dict.get("segsize")
        return pipeline_tree_time(
            machine, topo, parent, children, nbytes, seg, reduce_up=True
        )

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        parent, children = self._tree_builder(topo.size, self.root)
        seg = self.config.param_dict.get("segsize")
        sizes = segment_sizes(nbytes, seg)

        def factory(rank: int):
            def prog():
                acc = yield from tree_reduce_program(
                    rank, parent, children, sizes,
                    [frozenset({rank})] * len(sizes), _merge,
                )
                return acc if rank == self.root else None

            return prog()

        return [factory] * topo.size


class ReduceChain(_SegmentedTreeReduce):
    """Algorithm 2: parallel chains folding toward the root."""

    def __init__(self, segsize: int | None, fanout: int, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.REDUCE, 2, "chain", segsize=segsize, fanout=fanout
            ),
            lambda p, r: trees.chain_tree(p, fanout, r),
            root,
        )


class ReducePipeline(_SegmentedTreeReduce):
    """Algorithm 3: one pipelined chain folding toward the root."""

    def __init__(self, segsize: int | None, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.REDUCE, 3, "pipeline", segsize=segsize
            ),
            lambda p, r: trees.pipeline_tree(p, r),
            root,
        )


class ReduceBinary(_SegmentedTreeReduce):
    """Algorithm 4: complete binary tree reduction."""

    def __init__(self, segsize: int | None, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.REDUCE, 4, "binary", segsize=segsize
            ),
            lambda p, r: trees.binary_tree(p, r),
            root,
        )


class ReduceBinomial(_SegmentedTreeReduce):
    """Algorithm 5: binomial tree reduction."""

    def __init__(self, segsize: int | None, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.REDUCE, 5, "binomial", segsize=segsize
            ),
            lambda p, r: trees.binomial_tree(p, r),
            root,
        )


def _in_order_binary(p: int, root: int) -> trees.Tree:
    """Binary tree whose in-order traversal is rank order.

    Used for non-commutative reductions: every partial result combines
    a *contiguous* rank range, so operand order is preserved.
    """

    parent = np.full(p, -2, dtype=np.int64)
    children: list[list[int]] = [[] for _ in range(p)]

    def build(lo: int, hi: int, par: int) -> None:
        if lo > hi:
            return
        mid = (lo + hi) // 2
        parent[mid] = par
        if par >= 0:
            children[par].append(mid)
        build(lo, mid - 1, mid)
        build(mid + 1, hi, mid)

    build(0, p - 1, -1)
    # The structural root is the middle rank; rotate so the requested
    # root receives the result (Open MPI instead appends an extra send;
    # the cost is equivalent, the verification simpler).
    mid0 = int(np.flatnonzero(parent == -1)[0])
    if root != mid0:
        shift = (root - mid0) % p
        new_parent = np.full(p, -2, dtype=np.int64)
        new_children: list[list[int]] = [[] for _ in range(p)]
        for r in range(p):
            nr = (r + shift) % p
            new_parent[nr] = -1 if parent[r] == -1 else (parent[r] + shift) % p
            new_children[nr] = [(c + shift) % p for c in children[r]]
        return new_parent, new_children
    return parent, children


class ReduceInOrderBinary(_SegmentedTreeReduce):
    """Algorithm 6: in-order binary tree (non-commutative-safe)."""

    def __init__(self, segsize: int | None, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(
                CollectiveKind.REDUCE, 6, "in_order_binary", segsize=segsize
            ),
            _in_order_binary,
            root,
        )


class ReduceRabenseifner(_ReduceBase):
    """Algorithm 7: recursive-halving reduce-scatter + binomial gather."""

    def __init__(self, root: int = 0) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.REDUCE, 7, "rabenseifner"), root
        )

    def supported(self, topo: Topology, nbytes: int) -> bool:
        # The halving/gather pair needs at least two ranks; also the
        # implementation roots the gather at rank 0 + a final forward.
        return topo.size >= 1

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        rounds = reduce_scatter_halving_rounds(topo, nbytes)
        rounds += _binomial_gather_rounds(topo, nbytes)
        t = round_time(machine, topo, rounds)
        if self.root != 0:
            t += float(machine.ptp_time(nbytes, topo.same_node(0, self.root)))
        return t

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2
        block = block_bytes(nbytes, pof2)
        root = self.root

        def factory(rank: int):
            def prog():
                acc = {b: frozenset({rank}) for b in range(pof2)}
                if rem and rank < 2 * rem:
                    if rank % 2 == 1:
                        yield Send(rank - 1, nbytes, acc, tag=phase_tag(0))
                        if rank == root:
                            final = yield Recv(0, tag=phase_tag(4))
                            return final
                        return None
                    other = yield Recv(rank + 1, tag=phase_tag(0))
                    yield Reduce(nbytes)
                    acc = {b: _merge(acc[b], other[b]) for b in acc}
                vrank = rank // 2 if rank < 2 * rem else rank - rem

                def real(v: int) -> int:
                    return v * 2 if v < rem else v + rem

                lo, hi = 0, pof2
                dist = pof2 // 2
                while dist >= 1:
                    peer_v = vrank ^ dist
                    peer = real(peer_v)
                    mid = (lo + hi) // 2
                    if vrank < peer_v:
                        send_rng, keep = (mid, hi), (lo, mid)
                    else:
                        send_rng, keep = (lo, mid), (mid, hi)
                    send_blocks = {
                        b: acc[b] for b in range(send_rng[0], send_rng[1])
                    }
                    got = yield from exchange(
                        peer, peer,
                        nbytes_send=len(send_blocks) * block,
                        payload=send_blocks, tag=phase_tag(1, dist),
                    )
                    yield Reduce(len(got) * block)
                    for b, value in got.items():
                        acc[b] = _merge(acc[b], value)
                    lo, hi = keep
                    dist //= 2
                owned = {b: acc[b] for b in range(lo, hi)}
                # Binomial gather to virtual rank 0: a rank with bit
                # `dist` set ships its range to vrank ^ dist.
                dist = 1
                while dist < pof2:
                    if vrank & dist:
                        yield Send(
                            real(vrank ^ dist), len(owned) * block,
                            dict(owned), tag=phase_tag(2, dist),
                        )
                        break
                    got = yield Recv(real(vrank | dist), tag=phase_tag(2, dist))
                    owned.update(got)
                    dist <<= 1
                if vrank == 0:
                    if real(0) == root:
                        return owned
                    yield Send(root, nbytes, dict(owned), tag=phase_tag(4))
                    return None
                if rank == root:
                    final = yield Recv(real(0), tag=phase_tag(4))
                    return final
                return None

            return prog()

        return [factory] * p


def _binomial_gather_rounds(topo: Topology, nbytes: int) -> list[Round]:
    """Cost rounds of the binomial block gather to virtual rank 0."""
    p = topo.size
    if p == 1:
        return []
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    block = block_bytes(nbytes, pof2)

    def real(v: int) -> int:
        return v * 2 if v < rem else v + rem

    rounds: list[Round] = []
    dist = 1
    size = block
    while dist < pof2:
        srcs, dsts = [], []
        for v in range(dist, pof2, 2 * dist):
            srcs.append(real(v))
            dsts.append(real(v ^ dist))
        rounds.append(Round.make(srcs, dsts, size))
        size *= 2
        dist <<= 1
    return rounds
