"""MPI collective algorithm implementations (as simulator schedules).

Each algorithm is a :class:`~repro.collectives.base.CollectiveAlgorithm`:
it can build exact per-rank engine programs (moving real payloads, for
correctness tests) and evaluate its deterministic base running time via
the fast vectorised evaluators.

Algorithm ids follow Open MPI 4.0.2's ``coll_tuned`` numbering where one
exists (e.g. bcast 1=linear ... 9=scatter_ring_allgather).
"""

from repro.collectives.base import (
    AlgorithmConfig,
    CollectiveAlgorithm,
    CollectiveKind,
    config_space_size,
)
from repro.collectives import (
    allgather,
    allreduce,
    alltoall,
    bcast,
    hierarchical,
    reduce,
)
from repro.collectives.registry import (
    algorithm_from_config,
    make_algorithm,
    named_algorithms,
)

__all__ = [
    "AlgorithmConfig",
    "CollectiveAlgorithm",
    "CollectiveKind",
    "config_space_size",
    "algorithm_from_config",
    "make_algorithm",
    "named_algorithms",
    "bcast",
    "allreduce",
    "alltoall",
    "reduce",
    "allgather",
    "hierarchical",
]
