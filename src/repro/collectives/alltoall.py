"""Alltoall algorithms.

====  ============  =====================================================
id    name          structure
====  ============  =====================================================
1     linear        post all receives, issue all sends, wait (flood)
2     pairwise      p-1 rounds, exchange with rank+k / rank-k
3     bruck         ceil(log2 p) rounds of aggregated blocks
4     linear_sync   like pairwise but without duplex overlap (blocking
                    send then blocking receive per peer)
5     ring          store-and-forward around the ring (shift algorithm)
====  ============  =====================================================

Verification payloads are ``(src, dst)`` tuples; a correct alltoall
leaves ``{src: (src, rank) for all src}`` on every rank.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.collectives.base import (
    AlgorithmConfig,
    CollectiveAlgorithm,
    CollectiveKind,
)
from repro.collectives.patterns import (
    bruck_alltoall_rounds,
    exchange,
    pairwise_rounds,
    phase_tag,
)
from repro.machine.model import MachineModel
from repro.machine.topology import Topology
from repro.simulator.engine import Irecv, Recv, Send, SimResult, Wait
from repro.simulator.fastsim import Round, round_time


class _AlltoallBase(CollectiveAlgorithm):
    """Shared verification: rank r holds {src: (src, r)} for every src."""

    def verify_result(self, topo: Topology, nbytes: int, result: SimResult) -> None:
        for rank, output in enumerate(result.outputs):
            expected = {src: ("blk", src, rank) for src in range(topo.size)}
            assert output == expected, (
                f"{self.config.label}: rank {rank} received {output!r}"
            )


def _my_blocks(rank: int, p: int) -> dict[int, Any]:
    """The p outgoing blocks of ``rank`` (including its own)."""
    return {dst: ("blk", rank, dst) for dst in range(p)}


class AlltoallLinear(_AlltoallBase):
    """Algorithm 1: fully concurrent isend/irecv flood."""

    def __init__(self) -> None:
        super().__init__(AlgorithmConfig.make(CollectiveKind.ALLTOALL, 1, "linear"))

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        p = topo.size
        if p == 1:
            return 0.0
        ranks = np.arange(p)
        srcs = np.repeat(ranks, p - 1)
        dsts = np.concatenate([np.delete(ranks, r) for r in range(p)])
        # Every rank issues its p-1 sends back to back; the per-send
        # software overheads serialise even when the wires do not.
        flood = Round.make(srcs, dsts, nbytes)
        return round_time(machine, topo, [flood]) + (p - 2) * machine.cpu_overhead

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size

        def factory(rank: int):
            def prog():
                mine = _my_blocks(rank, p)
                handles = {}
                # Staggered peer order (rank +/- i) avoids the hotspot of
                # everyone flooding rank 0 first — what real linear
                # alltoalls do as well.
                for i in range(1, p):
                    src = (rank - i) % p
                    handles[src] = yield Irecv(src, tag=phase_tag(0))
                for i in range(1, p):
                    dst = (rank + i) % p
                    yield Send(dst, nbytes, mine[dst], tag=phase_tag(0))
                out = {rank: mine[rank]}
                for src, handle in handles.items():
                    out[src] = yield Wait(handle)
                return out

            return prog()

        return [factory] * p


class AlltoallPairwise(_AlltoallBase):
    """Algorithm 2: structured pairwise exchange, one peer per round."""

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.ALLTOALL, 2, "pairwise")
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        return round_time(machine, topo, pairwise_rounds(topo, nbytes))

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size

        def factory(rank: int):
            def prog():
                mine = _my_blocks(rank, p)
                out = {rank: mine[rank]}
                for k in range(1, p):
                    send_to = (rank + k) % p
                    recv_from = (rank - k) % p
                    got = yield from exchange(
                        send_to, recv_from, nbytes_send=nbytes,
                        payload=mine[send_to], tag=phase_tag(0, k),
                    )
                    out[recv_from] = got
                return out

            return prog()

        return [factory] * p


class AlltoallLinearSync(_AlltoallBase):
    """Algorithm 4: pairwise schedule with blocking send *then* receive.

    Under the eager-protocol engine this costs about the same as
    pairwise plus per-round request bookkeeping; it stays in the
    portfolio because real libraries keep it for its O(1) request
    memory (and because redundant near-ties are exactly what the
    selector must cope with).
    """

    def __init__(self) -> None:
        super().__init__(
            AlgorithmConfig.make(CollectiveKind.ALLTOALL, 4, "linear_sync")
        )

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        rounds = [
            Round(
                srcs=r.srcs, dsts=r.dsts, nbytes=r.nbytes,
                extra_seconds=2 * machine.cpu_overhead,
            )
            for r in pairwise_rounds(topo, nbytes)
        ]
        return round_time(machine, topo, rounds)

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size

        def factory(rank: int):
            def prog():
                mine = _my_blocks(rank, p)
                out = {rank: mine[rank]}
                for k in range(1, p):
                    send_to = (rank + k) % p
                    recv_from = (rank - k) % p
                    yield Send(send_to, nbytes, mine[send_to], tag=phase_tag(0, k))
                    out[recv_from] = yield Recv(recv_from, tag=phase_tag(0, k))
                return out

            return prog()

        return [factory] * p


class AlltoallBruck(_AlltoallBase):
    """Algorithm 3: Bruck's log-round alltoall with block aggregation."""

    def __init__(self) -> None:
        super().__init__(AlgorithmConfig.make(CollectiveKind.ALLTOALL, 3, "bruck"))

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        return round_time(machine, topo, bruck_alltoall_rounds(topo, nbytes))

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size

        def factory(rank: int):
            def prog():
                mine = _my_blocks(rank, p)
                # Local rotation: slot i holds the block destined for
                # rank (rank + i) mod p.
                slots: dict[int, Any] = {
                    i: mine[(rank + i) % p] for i in range(p)
                }
                k = 1
                while k < p:
                    send_slots = {i: slots[i] for i in range(p) if i & k}
                    got = yield from exchange(
                        (rank + k) % p, (rank - k) % p,
                        nbytes_send=len(send_slots) * nbytes,
                        payload=send_slots, tag=phase_tag(0, k),
                    )
                    slots.update(got)
                    k <<= 1
                # Inverse rotation: slot i now holds the block *for me*
                # from rank (rank - i) mod p.
                return {(rank - i) % p: slots[i] for i in range(p)}

            return prog()

        return [factory] * p


class AlltoallRing(_AlltoallBase):
    """Algorithm 5: store-and-forward shift around the ring.

    In round ``k`` every rank forwards its remaining ``p - k`` foreign
    blocks one hop; each hop peels off the block that has arrived home.
    Only neighbour links are ever used — friendly to torus-like
    fabrics, quadratic in traffic otherwise.
    """

    def __init__(self) -> None:
        super().__init__(AlgorithmConfig.make(CollectiveKind.ALLTOALL, 5, "ring"))

    def base_time(self, machine: MachineModel, topo: Topology, nbytes: int) -> float:
        p = topo.size
        ranks = np.arange(p)
        nxt = (ranks + 1) % p
        rounds = [
            Round.make(ranks, nxt, (p - k) * nbytes) for k in range(1, p)
        ]
        return round_time(machine, topo, rounds)

    def programs(self, topo: Topology, nbytes: int) -> Sequence[Callable[[int], Any]]:
        p = topo.size

        def factory(rank: int):
            def prog():
                mine = _my_blocks(rank, p)
                out = {rank: mine[rank]}
                # Outbox keyed by destination; travels against rank
                # order so that rank r's block for dst arrives after
                # (dst - r) mod p hops... we send forward (to rank+1).
                outbox = {dst: mine[dst] for dst in range(p) if dst != rank}
                nxt = (rank + 1) % p
                prev = (rank - 1) % p
                for k in range(1, p):
                    got = yield from exchange(
                        nxt, prev, nbytes_send=len(outbox) * nbytes,
                        payload=outbox, tag=phase_tag(0, k),
                    )
                    outbox = {}
                    for dst, payload in got.items():
                        if dst == rank:
                            src = payload[1]
                            out[src] = payload
                        else:
                            outbox[dst] = payload
                return out

            return prog()

        return [factory] * p
